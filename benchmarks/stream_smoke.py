"""CI streaming smoke: bounded peak RSS and a checkpoint/resume round-trip.

The streaming path's whole reason to exist is that a run's peak memory is a
function of the *chunk size*, never the *horizon*.  This script drives a
long streamed run (1M slots in CI) and fails if:

* peak RSS exceeds a horizon-independent bound (``--rss-limit-mb``, default
  512 — an interpreter plus a chunk's arrival plan is comfortably under
  100 MB, so a regression that materialises an O(slots) structure on the
  streaming path trips this immediately);
* a run checkpointed mid-way and resumed in a *fresh process state* does not
  reproduce the uninterrupted run's report bit for bit.

Run it directly (CI does) or via pytest::

    python benchmarks/stream_smoke.py --slots 1000000
"""

import argparse
import json
import os
import resource
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

DEFAULT_SLOTS = 1_000_000
DEFAULT_CHUNK = 65_536
DEFAULT_RSS_LIMIT_MB = 512
ENGINE = "array"


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover
        return usage / (1024 * 1024)
    return usage / 1024


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slots", type=int, default=DEFAULT_SLOTS)
    parser.add_argument("--chunk-slots", type=int, default=DEFAULT_CHUNK)
    parser.add_argument("--warmup", type=int, default=50_000)
    parser.add_argument("--rss-limit-mb", type=float,
                        default=DEFAULT_RSS_LIMIT_MB)
    args = parser.parse_args(argv)

    from repro.bench.suite import stream_scenario
    from repro.sim.streaming import StreamingSimulation, resume_stream

    scenario = stream_scenario(num_slots=args.slots)

    started = time.perf_counter()
    baseline = scenario.run_stream(engine=ENGINE,
                                   chunk_slots=args.chunk_slots,
                                   warmup_slots=args.warmup)
    elapsed = time.perf_counter() - started
    rss = peak_rss_mb()
    kslots = args.slots / elapsed / 1e3
    print(f"streamed {args.slots} slots ({ENGINE} engine, chunk "
          f"{args.chunk_slots}, warmup {args.warmup}) in {elapsed:.2f} s "
          f"({kslots:.0f} kslots/s), peak RSS {rss:.0f} MiB")
    if rss > args.rss_limit_mb:
        print(f"FAIL: peak RSS {rss:.0f} MiB exceeds the "
              f"{args.rss_limit_mb:.0f} MiB bound — something on the "
              "streaming path is O(slots)", file=sys.stderr)
        return 1

    # Checkpoint/resume round-trip: run 40% of the horizon, snapshot,
    # abandon the session, resume from the file, and compare reports.
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "smoke.ckpt.json")
        session = StreamingSimulation(
            scenario.build_simulation(), args.slots, engine=ENGINE,
            chunk_slots=args.chunk_slots, warmup_slots=args.warmup)
        arrivals = session.sim.arrivals
        stop_at = args.slots * 2 // 5
        while session.slot < stop_at:
            count = min(args.chunk_slots, stop_at - session.slot)
            window = arrivals.arrivals_slice(session.slot, count)
            session._execute(window if isinstance(window, list)
                             else list(window))
        session.save_checkpoint(path)
        size_kb = os.path.getsize(path) / 1024
        resumed = resume_stream(path)
    identical = (resumed.throughput == baseline.throughput
                 and resumed.latency == baseline.latency
                 and resumed.buffer_result == baseline.buffer_result)
    print(f"checkpoint at slot {stop_at} ({size_kb:.0f} KiB), resumed run "
          f"{'matches' if identical else 'DIVERGES FROM'} the uninterrupted "
          "run")
    if not identical:
        print("FAIL: resumed report is not bit-identical", file=sys.stderr)
        print(json.dumps({"baseline": baseline.summary(),
                          "resumed": resumed.summary()}, indent=2,
                         default=str), file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
