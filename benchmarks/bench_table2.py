"""Benchmark: Table 2 — Requests Register sizes and scheduling times.

The ten RR sizes and the per-request scheduling times printed in the paper
must be reproduced exactly; the feasibility verdicts (trivial for OC-768 and
for OC-3072 down to b=4, aggressive at b=2, infeasible at b=1) must match the
paper's discussion of the Alpha 21264 analogy.
"""

import pytest

from repro.analysis.report import format_table
from repro.analysis.table2 import (
    PAPER_TABLE2_RR_SIZES,
    PAPER_TABLE2_SCHED_TIMES_NS,
    table2,
)


def _check_against_paper(oc_name, rows):
    by_b = {row.granularity: row for row in rows}
    for b, expected in PAPER_TABLE2_RR_SIZES[oc_name].items():
        if expected is not None:
            assert by_b[b].rr_size_hardware == expected
    for b, expected in PAPER_TABLE2_SCHED_TIMES_NS[oc_name].items():
        if expected is not None:
            assert by_b[b].scheduling_time_ns == pytest.approx(expected)


def _render(oc_name, rows):
    return format_table(
        ["b", "RR size", "paper RR", "sched time ns", "paper ns", "feasibility"],
        [[r.granularity, r.rr_size_hardware,
          PAPER_TABLE2_RR_SIZES[oc_name].get(r.granularity),
          r.scheduling_time_ns,
          PAPER_TABLE2_SCHED_TIMES_NS[oc_name].get(r.granularity),
          r.feasibility]
         for r in rows if r.valid],
        title=f"Table 2 — {oc_name}")


def test_table2_oc768(benchmark, echo):
    rows = benchmark(table2, "OC-768")
    _check_against_paper("OC-768", rows)
    assert all(r.feasibility == "trivial" for r in rows
               if r.valid and r.scheduling_time_ns is not None)
    echo(_render("OC-768", rows))


def test_table2_oc3072(benchmark, echo):
    rows = benchmark(table2, "OC-3072")
    _check_against_paper("OC-3072", rows)
    verdicts = {r.granularity: r.feasibility for r in rows}
    assert verdicts[1] == "infeasible"
    assert verdicts[2] in ("aggressive", "trivial")
    assert verdicts[4] == "trivial"
    echo(_render("OC-3072", rows))
