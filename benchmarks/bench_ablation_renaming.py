"""Ablation: queue renaming on versus off (Section 6, DRAM fragmentation).

With the static queue-to-group assignment a hot VOQ can only use its own
group's share of the DRAM; once that group fills, cells are dropped while the
rest of the DRAM is empty.  Renaming lets the hot queue's blocks spill into
other groups, so the same offered load sees far fewer losses and much higher
DRAM utilisation.
"""


from repro.analysis.report import format_table
from repro.core.buffer import CFDSPacketBuffer
from repro.core.config import CFDSConfig
from repro.sim.engine import ClosedLoopSimulation
from repro.traffic.arbiters import RandomArbiter
from repro.traffic.arrivals import HotspotArrivals

GROUP_CAPACITY = 192
SLOTS = 20_000


def _run(use_renaming: bool):
    config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2,
                        num_banks=32, strict=False)
    buffer = CFDSPacketBuffer(config, use_renaming=use_renaming,
                              oversubscription=2,
                              group_capacity_cells=GROUP_CAPACITY)
    report = ClosedLoopSimulation(
        buffer,
        arrivals=HotspotArrivals(16, hot_queues=[0, 1], hot_fraction=0.9,
                                 load=0.95, seed=17),
        arbiter=RandomArbiter(16, load=0.30, seed=18),
    ).run(SLOTS)
    return buffer, report


def test_renaming_recovers_fragmented_dram(benchmark, echo):
    def run_both():
        return _run(False), _run(True)

    (static_buffer, static_report), (renamed_buffer, renamed_report) = benchmark(run_both)

    assert static_buffer.dropped_cells > 0
    assert renamed_buffer.dropped_cells < static_buffer.dropped_cells
    assert renamed_buffer.dram_utilisation() > 2 * static_buffer.dram_utilisation()

    echo(format_table(
        ["scheme", "offered cells", "dropped cells", "DRAM utilisation",
         "empty groups"],
        [["static assignment", static_report.throughput.arrivals,
          static_buffer.dropped_cells, f"{static_buffer.dram_utilisation():.0%}",
          sum(1 for o in static_buffer.dram_group_occupancy() if o == 0)],
         ["with renaming", renamed_report.throughput.arrivals,
          renamed_buffer.dropped_cells, f"{renamed_buffer.dram_utilisation():.0%}",
          sum(1 for o in renamed_buffer.dram_group_occupancy() if o == 0)]],
        title="Ablation — DRAM fragmentation under hot-spot traffic"))
