"""Benchmark: the three simulation engines against each other.

The batched fast path pre-generates the arrival array and maintains the
arbiter's backlog view incrementally, so its advantage over the reference
loop grows with the queue count (the rebuild is O(Q) per slot).  The array
engine replaces the per-slot object machinery altogether — cells become bare
integers in ring-buffered per-queue arrays — which is worth another large
factor on top.  The benchmark times all three engines on a registered
scenario and on a wide 128-queue configuration, and asserts that they stay
bit-identical — every engine is an optimisation, never a different
simulator — and that the array engine clears the 5x bar over the batched
path on the wide stressor.
"""

import time

import pytest

from repro.analysis.report import format_table
from repro.bench import wide_scenario
from repro.workloads import get_scenario

SCENARIO = "uniform-bernoulli"
WIDE_SLOTS = 6000

#: Required advantage of the array engine over the batched fast path on the
#: wide stressor (the PR-3 acceptance bar).
ARRAY_SPEEDUP_FLOOR = 5.0

ENGINES = ("reference", "batched", "array")


@pytest.mark.parametrize("engine", ENGINES)
def test_registered_scenario_loop(benchmark, engine):
    scenario = get_scenario(SCENARIO)
    report = benchmark(scenario.run, engine=engine)
    assert report.zero_miss


@pytest.mark.parametrize("engine", ENGINES)
def test_wide_queue_loop(benchmark, engine):
    scenario = wide_scenario(num_slots=WIDE_SLOTS)
    report = benchmark(scenario.run, engine=engine)
    assert report.zero_miss


def _best_of(scenario, engine, rounds=3):
    best = None
    report = None
    for _ in range(rounds):
        started = time.perf_counter()
        report = scenario.run(engine=engine)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return report, best


def test_engines_identical_and_array_faster(echo):
    """Identity check plus a human-readable speedup table (not timed by
    pytest-benchmark: the equality assertions are the point)."""
    rows = []
    wide_speedup = None
    for scenario in (get_scenario(SCENARIO), wide_scenario(num_slots=WIDE_SLOTS)):
        timings = {}
        reports = {}
        for engine in ENGINES:
            reports[engine], timings[engine] = _best_of(scenario, engine)
        baseline = reports["reference"]
        for engine in ("batched", "array"):
            assert reports[engine].throughput == baseline.throughput, engine
            assert reports[engine].latency == baseline.latency, engine
            assert reports[engine].buffer_result == baseline.buffer_result, engine
        speedup = timings["batched"] / timings["array"]
        if scenario.name == "wide-bernoulli":
            wide_speedup = speedup
        rows.append([scenario.name, scenario.num_slots,
                     scenario.num_slots / timings["reference"] / 1e3,
                     scenario.num_slots / timings["batched"] / 1e3,
                     scenario.num_slots / timings["array"] / 1e3,
                     speedup])
    echo(format_table(
        ["scenario", "slots", "reference kslots/s", "batched kslots/s",
         "array kslots/s", "array/batched"],
        rows, title="Workload loop — array engine vs batched vs reference"))
    assert wide_speedup is not None
    assert wide_speedup >= ARRAY_SPEEDUP_FLOOR, (
        f"array engine is only {wide_speedup:.2f}x the batched path on the "
        f"wide stressor (floor: {ARRAY_SPEEDUP_FLOOR}x)")
