"""Benchmark: batched fast-path simulation loop vs the legacy per-slot loop.

The fast path pre-generates the arrival array and maintains the arbiter's
backlog view incrementally instead of rebuilding it from the buffer every
slot, so its advantage grows with the queue count (the rebuild is O(Q) per
slot).  The benchmark times both paths on a registered scenario and on a
wide 128-queue configuration, and asserts the two paths stay bit-identical —
the fast path is an optimisation, never a different simulator.
"""

import pytest

from repro.analysis.report import format_table
from repro.workloads import Scenario, get_scenario

SCENARIO = "uniform-bernoulli"
WIDE_QUEUES = 128
WIDE_SLOTS = 6000


def _wide_scenario() -> Scenario:
    return Scenario(
        name="wide-bernoulli",
        description="128-queue Bernoulli stressor for the loop overhead",
        scheme="rads",
        buffer={"num_queues": WIDE_QUEUES, "granularity": 4},
        arrivals={"type": "bernoulli",
                  "params": {"num_queues": WIDE_QUEUES, "load": 0.85}},
        arbiter={"type": "random",
                 "params": {"num_queues": WIDE_QUEUES, "load": 0.9}},
        num_slots=WIDE_SLOTS, seed=1)


@pytest.mark.parametrize("fast_path", [False, True],
                         ids=["legacy-loop", "fast-path"])
def test_registered_scenario_loop(benchmark, fast_path):
    scenario = get_scenario(SCENARIO)
    report = benchmark(scenario.run, fast_path=fast_path)
    assert report.zero_miss


@pytest.mark.parametrize("fast_path", [False, True],
                         ids=["legacy-loop", "fast-path"])
def test_wide_queue_loop(benchmark, fast_path):
    scenario = _wide_scenario()
    report = benchmark(scenario.run, fast_path=fast_path)
    assert report.zero_miss


def test_fast_path_is_identical_and_faster(echo):
    """Identity check plus a human-readable speedup table (not timed by
    pytest-benchmark: the equality assertion is the point)."""
    import time

    rows = []
    for scenario in (get_scenario(SCENARIO), _wide_scenario()):
        timings = {}
        reports = {}
        for label, fast in (("legacy", False), ("fast", True)):
            started = time.perf_counter()
            reports[label] = scenario.run(fast_path=fast)
            timings[label] = time.perf_counter() - started
        fast_report, legacy_report = reports["fast"], reports["legacy"]
        assert fast_report.throughput == legacy_report.throughput
        assert fast_report.latency == legacy_report.latency
        assert fast_report.buffer_result == legacy_report.buffer_result
        rows.append([scenario.name, scenario.num_slots,
                     scenario.num_slots / timings["legacy"] / 1e3,
                     scenario.num_slots / timings["fast"] / 1e3,
                     timings["legacy"] / timings["fast"]])
    echo(format_table(
        ["scenario", "slots", "legacy kslots/s", "fast kslots/s", "speedup"],
        rows, title="Workload loop — batched fast path vs legacy per-slot loop"))
