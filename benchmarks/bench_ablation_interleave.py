"""Ablation: block-cyclic interleaving versus naive single-bank placement.

CFDS places consecutive blocks of a queue on consecutive banks of its group
(Figure 6), which is what lets back-to-back accesses to one queue proceed at
the full rate.  This ablation replaces the placement with "every block of a
queue lives on one bank": a single backlogged queue then saturates its bank
and the scheduler backlog grows roughly linearly with time.
"""


from repro.analysis.report import format_table
from repro.core.config import CFDSConfig
from repro.core.mapping import CFDSBankMapping
from repro.core.scheduler import DRAMSchedulerSubsystem
from repro.types import BankAddress, ReplenishRequest, TransferDirection


class SingleBankMapping(CFDSBankMapping):
    """Naive placement: every block of a queue maps to bank 0 of its group."""

    def bank_of(self, queue: int, block_index: int) -> BankAddress:
        base = super().bank_of(queue, 0)
        return base


def _drive(mapping_class):
    config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2,
                        num_banks=32, strict=False)
    mapping = mapping_class(num_queues=16, num_banks=32,
                            dram_access_slots=8, granularity=2)
    dss = DRAMSchedulerSubsystem(config, mapping=mapping)
    slot = 0
    # One hot queue requests a block every period (full read rate).
    for block in range(500):
        dss.submit(ReplenishRequest(queue=3, direction=TransferDirection.READ,
                                    cells=2, issue_slot=slot, block_index=block))
        for _ in range(config.granularity):
            dss.tick(slot)
            slot += 1
    return dss


def test_block_cyclic_interleaving_sustains_hot_queue(benchmark, echo):
    def run_both():
        return _drive(CFDSBankMapping), _drive(SingleBankMapping)

    cyclic, naive = benchmark(run_both)
    assert cyclic.bank_conflicts == 0 and naive.bank_conflicts == 0
    # The paper's interleaving keeps up with the hot queue...
    assert cyclic.pending_count <= 2
    assert cyclic.stall_fraction == 0.0
    # ...while the naive placement falls behind by hundreds of requests.
    assert naive.pending_count > 100
    assert naive.stall_fraction > 0.4

    echo(format_table(
        ["placement", "pending at end", "peak RR", "stall fraction", "max delay (slots)"],
        [["block-cyclic (paper)", cyclic.pending_count, cyclic.peak_rr_occupancy,
          round(cyclic.stall_fraction, 3), cyclic.max_total_delay_slots],
         ["single-bank (ablation)", naive.pending_count, naive.peak_rr_occupancy,
          round(naive.stall_fraction, 3), naive.max_total_delay_slots]],
        title="Ablation — bank placement under one hot queue at full read rate"))
