"""Benchmark: the multi-port switch pipeline.

The switch executes in two stages: a serial crossbar fabric stage (the
pipeline's Amdahl ceiling — tracked on its own here and in ``repro bench``)
and a port stage sharded over the experiment runner's workers.  The
benchmark times the fabric alone, the registered suite's scenarios
end-to-end, and the sharded vs serial port stage, and asserts the merged
report stays identical whichever worker count ran the ports — sharding is
an execution detail, never a different simulation.
"""

import time

import pytest

from repro.analysis.report import format_table
from repro.bench import switch_bench_scenario
from repro.switch import SwitchModel, get_switch_scenario, run_fabric

SLOTS = 4000
FABRIC_SLOTS = 20_000


@pytest.mark.parametrize("name", ["uniform", "hotspot-egress", "incast",
                                  "mixed-scheme"])
def test_registered_switch_scenario(benchmark, name):
    scenario = get_switch_scenario(name).with_overrides(num_slots=SLOTS)
    report = benchmark(SwitchModel(scenario).run, jobs=1)
    assert report.zero_miss


def test_fabric_stage_alone(benchmark):
    scenario = switch_bench_scenario(num_slots=FABRIC_SLOTS)
    traces, stats = benchmark(run_fabric, scenario)
    assert stats.offered_cells == stats.transferred_cells


@pytest.mark.parametrize("jobs", [1, 4])
def test_port_stage_sharding(benchmark, jobs):
    scenario = switch_bench_scenario(num_slots=SLOTS)
    report = benchmark(SwitchModel(scenario).run, jobs=jobs)
    assert report.zero_miss


def test_sharded_report_identical_and_timed(echo):
    """Identity check plus a human-readable table (the equality assertions
    are the point; wall-clock scaling depends on the machine's cores and is
    tracked by ``repro bench``'s switch-scaling ratio)."""
    scenario = switch_bench_scenario(num_slots=SLOTS)
    rows = []
    reports = {}
    for jobs in (1, 4):
        best = None
        for _ in range(3):
            started = time.perf_counter()
            reports[jobs] = SwitchModel(scenario).run(jobs=jobs)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None or elapsed < best else best
        rows.append([jobs, f"{best * 1e3:.1f}",
                     scenario.num_ports * SLOTS / best / 1e3])
    assert reports[1] == reports[4]
    echo(format_table(
        ["jobs", "best (ms)", "port-kslots/s"], rows,
        title="Switch port stage — serial vs sharded (8-port CFDS switch)"))
