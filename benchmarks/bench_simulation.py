"""Benchmark: slot-accurate worst-case simulations of RADS and CFDS.

These back the paper's Section 5 correctness claims (no table/figure): under
the round-robin adversary, both the RADS baseline and the CFDS design deliver
every requested cell with zero head-SRAM misses, CFDS additionally with zero
bank conflicts and with its reordering structures inside the analytical
bounds — while using a granularity (and hence an SRAM) several times smaller.

Since the runner refactor the two adversary runs live in
:mod:`repro.sim.worstcase` as job functions, so the combined benchmark times
the parallel path (both schemes simulating at once in worker processes) and
checks it is result-identical to running them serially.  The benchmark
timings also document the simulator's own throughput.
"""


from repro.analysis.report import format_table
from repro.runner.jobs import Job
from repro.runner.sweep import SweepRunner
from repro.sim.worstcase import run_cfds_worst_case, run_rads_worst_case

SLOTS = 20_000

RADS_KWARGS = {"num_queues": 32, "granularity": 8, "slots": SLOTS}
CFDS_KWARGS = {"num_queues": 32, "dram_access_slots": 8, "granularity": 2,
               "num_banks": 64, "slots": SLOTS}

JOBS = [
    Job(func="repro.sim.worstcase:run_rads_worst_case", kwargs=RADS_KWARGS,
        tag="RADS"),
    Job(func="repro.sim.worstcase:run_cfds_worst_case", kwargs=CFDS_KWARGS,
        tag="CFDS"),
]


def test_rads_worst_case_simulation(benchmark, echo):
    summary = benchmark(run_rads_worst_case, **RADS_KWARGS)
    assert summary.zero_miss
    assert summary.cells_out == SLOTS
    assert summary.max_head_sram_occupancy <= summary.head_sram_bound
    echo(format_table(
        ["scheme", "slots", "misses", "peak SRAM cells", "SRAM bound"],
        [["RADS", SLOTS, summary.miss_count, summary.max_head_sram_occupancy,
          summary.head_sram_bound]],
        title="Worst-case adversary — RADS head subsystem"))


def test_cfds_worst_case_simulation(benchmark, echo):
    summary = benchmark(run_cfds_worst_case, **CFDS_KWARGS)
    assert summary.zero_miss
    assert summary.bank_conflicts == 0
    assert summary.cells_out == SLOTS
    assert (summary.max_request_register_occupancy
            <= summary.request_register_bound)
    echo(format_table(
        ["scheme", "slots", "misses", "conflicts", "peak RR", "RR bound",
         "peak SRAM cells", "SRAM bound"],
        [["CFDS", SLOTS, summary.miss_count, summary.bank_conflicts,
          summary.max_request_register_occupancy,
          summary.request_register_bound,
          summary.max_head_sram_occupancy, summary.head_sram_bound]],
        title="Worst-case adversary — CFDS head subsystem"))


def test_cfds_uses_far_less_sram_than_rads_for_same_guarantee(benchmark, echo):
    def both_parallel():
        return SweepRunner(jobs=2).run(JOBS)

    rads, cfds = benchmark(both_parallel)
    # Worker-process results must match an in-process serial run exactly.
    assert [rads, cfds] == SweepRunner(jobs=1).run(JOBS)

    assert rads.zero_miss and cfds.zero_miss
    ratio = rads.head_sram_bound / cfds.head_sram_bound
    assert ratio > 2.0
    echo(format_table(
        ["scheme", "granularity", "SRAM bound (cells)", "peak SRAM (cells)",
         "extra delay (slots)"],
        [["RADS", rads.granularity, rads.head_sram_bound,
          rads.max_head_sram_occupancy, 0],
         ["CFDS", cfds.granularity, cfds.head_sram_bound,
          cfds.max_head_sram_occupancy, cfds.extra_latency_slots]],
        title=f"Same zero-miss guarantee, {ratio:.1f}x less SRAM for CFDS"))
