"""Benchmark: slot-accurate worst-case simulations of RADS and CFDS.

These back the paper's Section 5 correctness claims (no table/figure): under
the round-robin adversary, both the RADS baseline and the CFDS design deliver
every requested cell with zero head-SRAM misses, CFDS additionally with zero
bank conflicts and with its reordering structures inside the analytical
bounds — while using a granularity (and hence an SRAM) several times smaller.
The benchmark timings also document the simulator's own throughput.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.config import CFDSConfig
from repro.core.head_buffer import CFDSHeadBuffer
from repro.rads.config import RADSConfig
from repro.rads.head_buffer import RADSHeadBuffer
from repro.traffic.arbiters import RoundRobinAdversary

SLOTS = 20_000


def _run_rads():
    config = RADSConfig(num_queues=32, granularity=8)
    buffer = RADSHeadBuffer(config)
    adversary = RoundRobinAdversary(config.num_queues)
    unbounded = [10 ** 9] * config.num_queues
    result = buffer.run(adversary.next_request(s, unbounded) for s in range(SLOTS))
    return config, result


def _run_cfds():
    config = CFDSConfig(num_queues=32, dram_access_slots=8, granularity=2, num_banks=64)
    buffer = CFDSHeadBuffer(config)
    adversary = RoundRobinAdversary(config.num_queues)
    unbounded = [10 ** 9] * config.num_queues
    result = buffer.run(adversary.next_request(s, unbounded) for s in range(SLOTS))
    return config, result


def test_rads_worst_case_simulation(benchmark, echo):
    config, result = benchmark(_run_rads)
    assert result.zero_miss
    assert result.cells_out == SLOTS
    assert result.max_head_sram_occupancy <= config.effective_head_sram_cells
    echo(format_table(
        ["scheme", "slots", "misses", "peak SRAM cells", "SRAM bound"],
        [["RADS", SLOTS, result.miss_count, result.max_head_sram_occupancy,
          config.effective_head_sram_cells]],
        title="Worst-case adversary — RADS head subsystem"))


def test_cfds_worst_case_simulation(benchmark, echo):
    config, result = benchmark(_run_cfds)
    assert result.zero_miss
    assert result.bank_conflicts == 0
    assert result.cells_out == SLOTS
    assert result.max_request_register_occupancy <= config.effective_rr_capacity
    echo(format_table(
        ["scheme", "slots", "misses", "conflicts", "peak RR", "RR bound",
         "peak SRAM cells", "SRAM bound"],
        [["CFDS", SLOTS, result.miss_count, result.bank_conflicts,
          result.max_request_register_occupancy, config.effective_rr_capacity,
          result.max_head_sram_occupancy, config.effective_head_sram_cells]],
        title="Worst-case adversary — CFDS head subsystem"))


def test_cfds_uses_far_less_sram_than_rads_for_same_guarantee(benchmark, echo):
    def both():
        return _run_rads(), _run_cfds()

    (rads_config, rads_result), (cfds_config, cfds_result) = benchmark(both)
    assert rads_result.zero_miss and cfds_result.zero_miss
    ratio = rads_config.effective_head_sram_cells / cfds_config.effective_head_sram_cells
    assert ratio > 2.0
    echo(format_table(
        ["scheme", "granularity", "SRAM bound (cells)", "peak SRAM (cells)",
         "extra delay (slots)"],
        [["RADS", rads_config.granularity, rads_config.effective_head_sram_cells,
          rads_result.max_head_sram_occupancy, 0],
         ["CFDS", cfds_config.granularity, cfds_config.effective_head_sram_cells,
          cfds_result.max_head_sram_occupancy, cfds_config.effective_latency]],
        title=f"Same zero-miss guarantee, {ratio:.1f}x less SRAM for CFDS"))
