"""Benchmark: Figure 8 — RADS h-SRAM access time and area versus lookahead.

Paper shape to reproduce: at OC-768 both SRAM organisations meet the 12.8 ns
slot comfortably (RADS is fine); at OC-3072 neither the global CAM nor the
time-multiplexed linked list reaches the 3.2 ns slot, and the SRAM runs from
~6.2 MB down to ~1.0 MB over the lookahead sweep.
"""


from repro.analysis.figure8 import figure8, figure8_summary
from repro.analysis.report import format_table


def _render(points):
    return format_table(
        ["lookahead", "SRAM kB", "CAM ns", "linked-list ns", "CAM cm^2", "LL cm^2"],
        [[p.lookahead_slots, round(p.sram_kbytes, 1), round(p.cam_access_ns, 2),
          round(p.linked_list_access_ns, 2), round(p.cam_area_cm2, 3),
          round(p.linked_list_area_cm2, 3)] for p in points])


def test_figure8_oc768(benchmark, echo):
    points = benchmark(figure8, "OC-768", points=16)
    assert all(p.cam_meets_budget and p.linked_list_meets_budget for p in points)
    summary = figure8_summary("OC-768")
    assert 250 < summary["sram_kbytes_min_lookahead"] < 350
    assert 50 < summary["sram_kbytes_max_lookahead"] < 70
    echo("Figure 8 (OC-768, Q=128, B=8, budget 12.8 ns)\n" + _render(points))


def test_figure8_oc3072(benchmark, echo):
    points = benchmark(figure8, "OC-3072", points=16)
    assert not any(p.cam_meets_budget or p.linked_list_meets_budget for p in points)
    summary = figure8_summary("OC-3072")
    assert 5.5 * 1024 < summary["sram_kbytes_min_lookahead"] < 7.0 * 1024
    assert 0.9 * 1024 < summary["sram_kbytes_max_lookahead"] < 1.1 * 1024
    assert 5.0 < summary["best_access_ns_max_lookahead"] < 8.5
    echo("Figure 8 (OC-3072, Q=512, B=32, budget 3.2 ns)\n" + _render(points))
