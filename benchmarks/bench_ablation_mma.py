"""Ablation: ECQF versus MDQF as the head MMA policy.

The paper adopts ECQF because, given the maximal lookahead, it minimises the
head SRAM.  MDQF (most-deficit-queue-first) is the natural alternative — it
replenishes whichever queue is furthest behind its demand, regardless of who
runs dry first.  With the same lookahead both policies keep the zero-miss
guarantee, but ECQF's occupancy stays at (or below) the Q(B-1) analytical
bound while MDQF overstocks queues it did not need to touch yet.
"""


from repro.analysis.report import format_table
from repro.mma.ecqf import ECQF
from repro.mma.mdqf import MDQF
from repro.rads.config import RADSConfig
from repro.rads.head_buffer import RADSHeadBuffer
from repro.rads.sizing import ecqf_max_lookahead
from repro.traffic.arbiters import RoundRobinAdversary

SLOTS = 12_000
NUM_QUEUES = 16
GRANULARITY = 4


def _run(mma):
    config = RADSConfig(num_queues=NUM_QUEUES, granularity=GRANULARITY, strict=False)
    buffer = RADSHeadBuffer(config, mma=mma)
    adversary = RoundRobinAdversary(NUM_QUEUES)
    unbounded = [10 ** 9] * NUM_QUEUES
    return buffer.run(adversary.next_request(s, unbounded) for s in range(SLOTS))


def test_ecqf_occupancy_no_worse_than_mdqf(benchmark, echo):
    def run_both():
        return _run(ECQF()), _run(MDQF())

    ecqf_result, mdqf_result = benchmark(run_both)
    assert ecqf_result.zero_miss
    assert mdqf_result.zero_miss
    assert (ecqf_result.max_head_sram_occupancy
            <= mdqf_result.max_head_sram_occupancy)
    # ECQF stays within its analytical bound plus the in-flight block and the
    # decision-phase margin.
    assert (ecqf_result.max_head_sram_occupancy
            <= NUM_QUEUES * (GRANULARITY - 1) + 2 * GRANULARITY - 1)

    lookahead = ecqf_max_lookahead(NUM_QUEUES, GRANULARITY)
    echo(format_table(
        ["policy", "lookahead (slots)", "peak SRAM (cells)", "misses"],
        [["ECQF (paper)", lookahead, ecqf_result.max_head_sram_occupancy,
          ecqf_result.miss_count],
         ["MDQF", lookahead, mdqf_result.max_head_sram_occupancy,
          mdqf_result.miss_count]],
        title="Ablation — head MMA policy under the round-robin adversary"))
