#!/usr/bin/env python3
"""ASan/UBSan regression harness for the compiled span kernel.

Builds ``_spankernel.c`` with ``-fsanitize=address,undefined
-fno-sanitize-recover=all`` (``REPRO_SPAN_KERNEL_SANITIZE=1``), loads it
into a child interpreter with the sanitizer runtimes preloaded and real
``malloc`` in use, and drives it through:

1. the PR 9 backlog-migration overflow stressor (heavily skewed Bernoulli
   weights push one queue's backlog through repeated grow/migrate cycles —
   the workload that exposed the unchecked writeback overflow), and
2. a numpy-vs-array differential sweep across RADS configs, asserting
   bit-identical reports so the instrumented build is proven to be the
   same kernel, not just a crash-free one.

Any out-of-bounds access or UB in the C source aborts the child with a
sanitizer report, which this parent surfaces verbatim.

Usage::

    python benchmarks/kernel_sanitize_check.py            # skip if no toolchain
    python benchmarks/kernel_sanitize_check.py --require  # CI: missing toolchain fails

Exit codes: 0 clean (or skipped without ``--require``), 1 sanitizer
finding or differential mismatch, 2 missing toolchain with ``--require``.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: The child workload.  Runs under ASan+UBSan with the sanitized kernel
#: loaded; any memory error aborts before the prints.
_CHILD = r"""
import sys

from repro.rads.buffer import RADSPacketBuffer
from repro.rads.config import RADSConfig
from repro.sim.engine import ClosedLoopSimulation
from repro.sim.kernel import load_kernel
from repro.traffic.arbiters import RandomArbiter
from repro.traffic.arrivals import BernoulliArrivals

if load_kernel() is None:
    print("SANITIZED KERNEL FAILED TO LOAD", file=sys.stderr)
    sys.exit(3)

def make_sim(weights=None, num_queues=8, granularity=64, seed=31):
    return ClosedLoopSimulation(
        RADSPacketBuffer(RADSConfig(num_queues=num_queues,
                                    granularity=granularity)),
        BernoulliArrivals(num_queues, load=1.0, seed=seed, weights=weights),
        RandomArbiter(num_queues, seed=seed + 1, load=0.05))

# 1. PR 9 backlog-migration overflow stressor: one queue absorbs almost the
# whole load, forcing repeated backlog grow/migrate cycles through the
# kernel writeback path that used to overflow.
skew = [500, 1, 1, 1, 1, 1, 1, 1]
stream = make_sim(weights=skew).run_stream(4000, engine="numpy",
                                           chunk_slots=200)
reference = make_sim(weights=skew).run_stream(4000, engine="array",
                                              chunk_slots=200)
if stream != reference:
    print("DIFFERENTIAL MISMATCH: backlog-migration stressor", file=sys.stderr)
    sys.exit(4)
print("stressor ok")

# 2. Differential sweep: uniform and mildly skewed loads across shapes.
for num_queues, granularity, seed, weights in (
        (4, 32, 7, None),
        (8, 64, 11, None),
        (16, 128, 13, None),
        (8, 64, 17, [8, 4, 2, 1, 1, 2, 4, 8]),
):
    got = make_sim(weights, num_queues, granularity, seed).run(
        3000, engine="numpy")
    want = make_sim(weights, num_queues, granularity, seed).run(
        3000, engine="array")
    if got != want:
        print(f"DIFFERENTIAL MISMATCH: q={num_queues} g={granularity} "
              f"seed={seed}", file=sys.stderr)
        sys.exit(4)
print("differential ok")
print("SANITIZE CHECK PASSED")
"""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) instead of skipping when the "
                             "sanitizer toolchain or numpy is unavailable")
    args = parser.parse_args()

    sys.path.insert(0, str(SRC))
    from repro.sim.kernel import _compiler, sanitizer_preload

    def skip(reason: str) -> int:
        if args.require:
            print(f"error: {reason}", file=sys.stderr)
            return 2
        print(f"skip: {reason}")
        return 0

    try:
        import numpy  # noqa: F401
    except ImportError:
        return skip("numpy unavailable (the kernel rides the numpy engine)")
    if _compiler() is None:
        return skip("no C compiler on PATH")
    preload = sanitizer_preload()
    if preload is None:
        return skip("sanitizer runtime libraries not found "
                    "(cc -print-file-name=libasan.so)")

    env = dict(os.environ)
    with tempfile.TemporaryDirectory(prefix="repro-sanitize-") as cache:
        env.update({
            "REPRO_SPAN_KERNEL_SANITIZE": "1",
            # Fresh cache: always exercise the sanitized compile itself.
            "XDG_CACHE_HOME": cache,
            "LD_PRELOAD": preload,
            # pymalloc arenas carry no ASan redzones; route Python object
            # allocation through intercepted malloc so overflows on
            # Python-owned buffers are caught too.
            "PYTHONMALLOC": "malloc",
            # CPython leaks-by-design at interpreter exit; leak checking
            # would drown real findings.
            "ASAN_OPTIONS": "detect_leaks=0:abort_on_error=1",
            "UBSAN_OPTIONS": "print_stacktrace=1",
            "PYTHONPATH": str(SRC) + (
                os.pathsep + env["PYTHONPATH"]
                if env.get("PYTHONPATH") else ""),
        })
        proc = subprocess.run([sys.executable, "-c", _CHILD], env=env)
    if proc.returncode == 0:
        print("kernel sanitize check passed")
        return 0
    if proc.returncode == 3 and not args.require:
        # The sanitized .so compiled but would not load in this
        # environment (e.g. static-only sanitizer runtimes).
        print("skip: sanitized kernel did not load")
        return 0
    print(f"error: sanitize child exited {proc.returncode}",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
