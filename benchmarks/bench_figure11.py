"""Benchmark: Figure 11 — maximum number of queues at OC-3072.

Paper shape to reproduce: RADS tops out at a small queue count, CFDS at an
intermediate granularity reaches several hundred queues (the paper quotes up
to ~850, about six times RADS; our calibrated technology model lands in the
3x-8x band), and the curve over granularities rises and then falls.
"""


from repro.analysis.figure11 import figure11, figure11_summary
from repro.analysis.report import format_table


def test_figure11_max_queue_counts(benchmark, echo):
    points = benchmark(figure11)

    counts = {p.granularity: p.max_queues for p in points}
    rads_queues = counts[32]
    cfds_best = max(p.max_queues for p in points if p.scheme == "CFDS")
    assert rads_queues < 300
    assert 500 <= cfds_best <= 1100
    assert 3.0 <= cfds_best / rads_queues <= 8.0

    ordered = [counts[b] for b in (32, 16, 8, 4, 2, 1)]
    peak = ordered.index(max(ordered))
    assert 0 < peak < len(ordered) - 1

    summary = figure11_summary()
    echo(format_table(
        ["scheme", "b", "max queues"],
        [[p.scheme, p.granularity, p.max_queues] for p in points],
        title=(f"Figure 11 — max queues at OC-3072 "
               f"(CFDS/RADS = {summary['improvement_ratio']:.1f}x)")))
