"""Benchmark: Figure 10 — SRAM area and access time versus delay, RADS vs CFDS.

Paper shape to reproduce: some CFDS granularity meets the 3.2 ns OC-3072
budget at a delay of roughly ten microseconds and a fraction of the RADS
area, while RADS never gets below several nanoseconds even past 50 us of
delay; and there is an optimum granularity (neither the largest nor the
smallest b gives the smallest SRAM).
"""


from repro.analysis.figure10 import figure10, figure10_summary
from repro.analysis.report import format_table


def test_figure10_rads_vs_cfds(benchmark, echo):
    points = benchmark(figure10, points=10)

    rads = [p for p in points if p.scheme == "RADS"]
    cfds = [p for p in points if p.scheme == "CFDS"]
    assert rads and cfds
    assert not any(p.meets_budget for p in rads)
    assert any(p.meets_budget for p in cfds)

    summary = figure10_summary()
    assert summary["best_cfds_delay_us"] < 20.0
    assert 5.0 < summary["best_rads_access_ns"] < 9.0
    assert summary["best_cfds_area_cm2"] < 0.5 * summary["best_rads_area_cm2"]

    # Optimal granularity is interior.
    smallest_sram_by_b = {}
    for p in cfds:
        current = smallest_sram_by_b.get(p.granularity)
        if current is None or p.head_sram_cells < current:
            smallest_sram_by_b[p.granularity] = p.head_sram_cells
    ordered = sorted(smallest_sram_by_b)
    best_b = min(smallest_sram_by_b, key=smallest_sram_by_b.get)
    assert best_b not in (ordered[0], ordered[-1])

    compliant = [p for p in cfds if p.meets_budget]
    sample = sorted(compliant, key=lambda p: (p.granularity, p.delay_us))[:8]
    echo(format_table(
        ["scheme", "b", "delay us", "h-SRAM kB", "access ns", "area cm^2"],
        [[p.scheme, p.granularity, round(p.delay_us, 1), round(p.head_sram_kbytes, 1),
          round(p.access_time_ns, 2), round(p.area_cm2, 3)]
         for p in sample + rads[-2:]],
        title="Figure 10 — compliant CFDS points vs RADS (OC-3072, Q=512, M=256)"))
