"""Extension benchmark: DRAM technology scaling versus the CFDS approach.

Quantifies the paper's motivating remark that commodity DRAM random access
times improve only ~10% every 18 months, so waiting for faster DRAM is not a
substitute for the architectural fix: even after a decade of scaling, plain
RADS still cannot meet the OC-3072 SRAM budget with 512 queues, while CFDS
meets it today.

Since the runner refactor the roadmap sweep is a job list executed by
:class:`~repro.runner.sweep.SweepRunner`; this benchmark times the parallel
path (4 workers) and checks it is result-identical to the serial one.
"""


from repro.analysis.report import format_table
from repro.analysis.scaling import (
    granularity_roadmap_jobs,
    years_until_rads_suffices,
)
from repro.runner.sweep import SweepRunner

YEARS = [0.0, 3.0, 6.0, 9.0, 12.0, 15.0]


def _roadmap(jobs: int):
    runner = SweepRunner(jobs=jobs)
    return runner.run(granularity_roadmap_jobs("OC-3072", 512, YEARS))


def test_dram_scaling_alone_does_not_rescue_rads(benchmark, echo):
    points = benchmark(_roadmap, 4)

    # The parallel sweep must be result-identical to the serial one.
    assert points == _roadmap(1)

    assert not points[0].meets_budget
    # Granularity and SRAM shrink over time, but a decade of scaling is still
    # not enough at 512 queues.
    assert points[-1].granularity < points[0].granularity
    assert not any(p.meets_budget for p in points if p.years_from_now <= 9)

    years = years_until_rads_suffices("OC-3072", 512)
    assert years is None or years > 10

    echo(format_table(
        ["years from 2003", "DRAM T_RC (ns)", "B", "head SRAM (kB)",
         "best access (ns)", "meets 3.2 ns"],
        [[p.years_from_now, round(p.dram_access_ns, 1), p.granularity,
          round(p.head_sram_kbytes, 1), round(p.best_access_time_ns, 2),
          p.meets_budget] for p in points],
        title=("Extension — RADS under the paper's DRAM scaling trend "
               f"(OC-3072, Q=512; RADS sufficient after: "
               f"{years if years is not None else '>30'} years)")))
