"""Ablation: the issue-queue DSA versus a plain FIFO DRAM scheduler.

The paper's Requests Register exists so the scheduler can issue the oldest
request whose bank is free *even if an older request is blocked*.  This
ablation removes that ability (strict FIFO issue) and shows the consequence:
when one queue sends two back-to-back blocks to the same bank, the FIFO
scheduler stalls the whole pipeline behind the blocked request, while the
wake-up/select DSA lets younger requests (to other banks) overtake and never
stalls.
"""


from repro.analysis.report import format_table
from repro.core.config import CFDSConfig
from repro.core.scheduler import DRAMSchedulerSubsystem
from repro.types import ReplenishRequest, TransferDirection


def _drive(dsa_policy: str):
    """Queue A fires two requests at the same bank back to back at the start
    of every 8-period cycle (exactly that bank's long-term capacity); queue B,
    in another group, fills most of the remaining issue slots with well-spread
    requests.  Total demand matches the issue rate, so the only question is
    whether the scheduler can work around A's blocked second request."""
    config = CFDSConfig(num_queues=16, dram_access_slots=16, granularity=2,
                        num_banks=32, strict=False)
    dss = DRAMSchedulerSubsystem(config, dsa_policy=dsa_policy)
    queue_a, queue_b = 0, 1      # groups 0 and 1: disjoint banks
    b_block = 0
    slot = 0
    for period in range(800):
        phase = period % 8
        if phase in (0, 1):
            # Two consecutive requests to the same bank of queue A's group.
            dss.submit(ReplenishRequest(queue=queue_a, direction=TransferDirection.READ,
                                        cells=2, issue_slot=slot, block_index=0))
        if phase not in (1, 7):
            # Queue B's requests cycle over its own group's banks.
            dss.submit(ReplenishRequest(queue=queue_b, direction=TransferDirection.READ,
                                        cells=2, issue_slot=slot, block_index=b_block))
            b_block += 1
        for _ in range(config.granularity):
            dss.tick(slot)
            slot += 1
    for _ in range(200):
        dss.tick(slot)
        slot += 1
    return dss


def test_dsa_reordering_beats_fifo(benchmark, echo):
    def run_both():
        return _drive("oldest-ready"), _drive("fifo")

    dsa, fifo = benchmark(run_both)
    assert dsa.bank_conflicts == 0 and fifo.bank_conflicts == 0
    # The paper's DSA never stalls on this workload; the FIFO baseline does,
    # and its worst-case delay and backlog are strictly worse.
    assert dsa.stall_fraction == 0.0
    assert fifo.stall_fraction > 0.0
    assert fifo.max_total_delay_slots > dsa.max_total_delay_slots
    assert fifo.peak_rr_occupancy >= dsa.peak_rr_occupancy

    echo(format_table(
        ["DSA policy", "peak RR", "stall fraction", "max delay (slots)", "pending at end"],
        [["oldest-ready (paper)", dsa.peak_rr_occupancy,
          round(dsa.stall_fraction, 3), dsa.max_total_delay_slots, dsa.pending_count],
         ["fifo (ablation)", fifo.peak_rr_occupancy,
          round(fifo.stall_fraction, 3), fifo.max_total_delay_slots, fifo.pending_count]],
        title="Ablation — wake-up/select DSA vs FIFO issue"))
