"""Benchmark: the introduction's DRAM-only bandwidth analysis.

Paper numbers: a single 16 Mb SDRAM chip peaks at 1.6 Gb/s but guarantees
only ~1.2 Gb/s; an 8-chip configuration guarantees ~5.12 Gb/s — nowhere near
the 80/320 Gb/s an OC-768/OC-3072 line card needs.
"""

import pytest

from repro.analysis.intro_dram import intro_dram_analysis
from repro.analysis.report import format_table


def test_intro_dram_guaranteed_bandwidth(benchmark, echo):
    rows = benchmark(intro_dram_analysis)

    by_chips = {r.num_chips: r for r in rows}
    assert by_chips[1].peak_gbps == pytest.approx(1.6)
    assert by_chips[1].guaranteed_gbps == pytest.approx(1.2, rel=0.15)
    assert by_chips[8].guaranteed_gbps == pytest.approx(5.12, rel=0.05)
    assert not any(r.supports_oc3072 for r in rows)

    echo(format_table(
        ["chips", "bus bits", "peak Gb/s", "guaranteed Gb/s", "efficiency"],
        [[r.num_chips, r.bus_bits, round(r.peak_gbps, 2),
          round(r.guaranteed_gbps, 2), f"{r.efficiency:.0%}"] for r in rows],
        title="Intro analysis — DRAM-only buffer guaranteed bandwidth"))
