"""Shared helpers for the benchmark suite.

Every benchmark regenerates one exhibit of the paper (a table or a figure) or
one ablation of a design choice called out in DESIGN.md.  The ``benchmark``
fixture times the computation; the assertions check that the regenerated data
still shows the paper's qualitative result (who wins, by roughly what factor,
where the crossovers fall).  Numeric rows are echoed so a
``pytest benchmarks/ --benchmark-only -s`` run doubles as a report generator.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def echo(capsys):
    """Print a block of text without it being swallowed by pytest capture."""

    def _echo(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _echo
