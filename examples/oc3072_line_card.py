#!/usr/bin/env python3
"""The paper's headline scenario: an OC-3072 (160 Gb/s) line card buffer.

Two things happen here:

1. **Analytical dimensioning at full scale** — the actual OC-3072 / 512-queue
   parameters the paper evaluates (Sections 7-8): RADS versus CFDS SRAM
   sizes, access times and total delays, for several granularities.
2. **Worst-case simulation at reduced scale** — a slot-accurate run of the
   head subsystem under the round-robin adversary (the ECQF worst case), with
   the geometry scaled down so it finishes in seconds, verifying that the
   dimensioning formulas actually deliver zero misses and zero bank conflicts.

Run with::

    python examples/oc3072_line_card.py
"""

from repro import CFDSConfig, CFDSHeadBuffer, RADSConfig, RADSHeadBuffer
from repro.analysis.report import format_table
from repro.core import sizing as cfds_sizing
from repro.rads import sizing as rads_sizing
from repro.tech.line_rates import LineRate
from repro.tech.sram_designs import GlobalCAMDesign, UnifiedLinkedListDesign
from repro.traffic import RoundRobinAdversary


def analytical_dimensioning() -> None:
    """Print the full-scale OC-3072 design space (Q=512, M=256 banks)."""
    line_rate = LineRate.from_name("OC-3072")
    num_queues, big_b, num_banks = 512, 32, 256
    cam = GlobalCAMDesign(num_queues)
    linked_list = UnifiedLinkedListDesign(num_queues)

    rows = []
    for b in (32, 16, 8, 4, 2, 1):
        lookahead = rads_sizing.ecqf_max_lookahead(num_queues, b)
        if b == big_b:
            scheme = "RADS"
            head_cells = rads_sizing.rads_sram_size(lookahead, num_queues, b)
            delay_slots = lookahead
        else:
            scheme = "CFDS"
            head_cells = cfds_sizing.cfds_sram_size(lookahead, num_queues,
                                                    num_banks, big_b, b)
            delay_slots = cfds_sizing.cfds_total_delay_slots(lookahead, num_queues,
                                                             num_banks, big_b, b)
        access_ns = min(cam.access_time_ns(head_cells),
                        linked_list.access_time_ns(head_cells))
        rows.append([scheme, b, head_cells, round(head_cells * 64 / 1024, 1),
                     round(access_ns, 2), access_ns <= line_rate.sram_access_budget_ns,
                     round(delay_slots * line_rate.slot_ns / 1e3, 1)])

    print(format_table(
        ["scheme", "b", "head SRAM (cells)", "head SRAM (kB)",
         "access (ns)", "meets 3.2 ns", "delay (us)"],
        rows,
        title="OC-3072, Q=512, M=256: RADS vs CFDS dimensioning "
              "(maximum lookahead)"))
    print()


def worst_case_simulation() -> None:
    """Run the round-robin adversary against scaled-down RADS and CFDS head
    buffers dimensioned by the same formulas."""
    print("Worst-case (round-robin adversary) simulation, scaled geometry:")
    slots = 30_000

    rads_config = RADSConfig(num_queues=32, granularity=8)
    rads = RADSHeadBuffer(rads_config)
    adversary = RoundRobinAdversary(rads_config.num_queues)
    unbounded = [10 ** 9] * rads_config.num_queues
    rads_result = rads.run(adversary.next_request(s, unbounded) for s in range(slots))

    cfds_config = CFDSConfig(num_queues=32, dram_access_slots=8, granularity=2,
                             num_banks=64)
    cfds = CFDSHeadBuffer(cfds_config)
    adversary = RoundRobinAdversary(cfds_config.num_queues)
    cfds_result = cfds.run(adversary.next_request(s, unbounded) for s in range(slots))

    rows = [
        ["RADS", rads_config.granularity, rads_result.miss_count, "-",
         rads_result.max_head_sram_occupancy, rads_config.effective_head_sram_cells,
         rads_config.effective_lookahead],
        ["CFDS", cfds_config.granularity, cfds_result.miss_count,
         cfds_result.bank_conflicts, cfds_result.max_head_sram_occupancy,
         cfds_config.effective_head_sram_cells,
         cfds_config.effective_lookahead + cfds_config.effective_latency],
    ]
    print(format_table(
        ["scheme", "b", "misses", "bank conflicts", "peak SRAM (cells)",
         "SRAM bound (cells)", "delay (slots)"],
        rows))
    print()
    print("Both schemes deliver every cell with zero misses; CFDS does it with a")
    print(f"{rads_config.effective_head_sram_cells / cfds_config.effective_head_sram_cells:.1f}x "
          "smaller head SRAM, paid for with the extra pipeline delay shown above.")


def main() -> None:
    analytical_dimensioning()
    worst_case_simulation()


if __name__ == "__main__":
    main()
