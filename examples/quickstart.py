#!/usr/bin/env python3
"""Quickstart: build a small CFDS packet buffer and push traffic through it.

This is the five-minute tour of the library:

1. configure a Conflict-Free DRAM System (CFDS) buffer,
2. let cells arrive and have an arbiter request them,
3. check the two guarantees the paper is about — no head-SRAM miss and no
   DRAM bank conflict — and look at the derived dimensioning.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CFDSConfig,
    CFDSPacketBuffer,
    ClosedLoopSimulation,
)
from repro.traffic import BernoulliArrivals, RandomArbiter


def main() -> None:
    # A deliberately small configuration so the run takes a fraction of a
    # second: 16 VOQs, DRAM random access window B = 8 slots, CFDS granularity
    # b = 2 cells, 32 DRAM banks (so B/b = 4 banks per group, 8 groups).
    config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2,
                        num_banks=32)

    print("=== CFDS configuration ===")
    print(f"queues (Q)                : {config.num_queues}")
    print(f"DRAM access window (B)    : {config.dram_access_slots} slots")
    print(f"granularity (b)           : {config.granularity} cells")
    print(f"banks (M) / groups (G)    : {config.num_banks} / {config.num_groups}")
    print(f"lookahead                 : {config.effective_lookahead} slots")
    print(f"latency register          : {config.effective_latency} slots")
    print(f"Requests Register         : {config.effective_rr_capacity} entries")
    print(f"head SRAM                 : {config.effective_head_sram_cells} cells")
    print(f"tail SRAM                 : {config.effective_tail_sram_cells} cells")
    print()

    buffer = CFDSPacketBuffer(config)
    simulation = ClosedLoopSimulation(
        buffer,
        arrivals=BernoulliArrivals(config.num_queues, load=0.9, seed=1),
        arbiter=RandomArbiter(config.num_queues, load=0.9, seed=2),
    )
    report = simulation.run(20_000)

    result = report.buffer_result
    print("=== 20k-slot closed-loop run ===")
    print(f"cells in / out            : {report.throughput.arrivals} / "
          f"{report.throughput.departures}")
    print(f"head-SRAM misses          : {result.miss_count}   (guarantee: 0)")
    print(f"DRAM bank conflicts       : {result.bank_conflicts}   (guarantee: 0)")
    print(f"peak Requests Register    : {result.max_request_register_occupancy} entries "
          f"(bound {config.effective_rr_capacity})")
    print(f"peak head SRAM            : {result.max_head_sram_occupancy} cells")
    print(f"mean / max cell delay     : {report.latency.mean:.1f} / "
          f"{report.latency.maximum} slots")
    print()
    print("zero-miss guarantee held" if report.zero_miss else "ZERO-MISS VIOLATED")


if __name__ == "__main__":
    main()
