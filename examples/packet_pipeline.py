#!/usr/bin/env python3
"""Full packet path: segmentation -> VOQ buffer -> scheduling -> reassembly.

The buffers operate on fixed 64-byte cells (Section 2 of the paper); real
traffic is variable-size IP packets.  This example shows the complete path a
line card implements around the packet buffer:

1. packets are segmented into cells, which arrive one per slot;
2. the CFDS buffer stores them with worst-case guarantees;
3. a longest-queue arbiter drains the VOQs;
4. departing cells are reassembled into packets, and we verify that every
   packet comes out intact and in order.

Run with::

    python examples/packet_pipeline.py
"""

import random
from collections import deque

from repro import CFDSConfig, CFDSPacketBuffer
from repro.traffic import LongestQueueArbiter, Packet, Reassembler, Segmenter


def generate_packets(num_packets: int, num_queues: int, seed: int = 42):
    """An IMIX-flavoured packet mix (small ACKs, mid-size, MTU-size)."""
    rng = random.Random(seed)
    sizes = [40] * 7 + [576] * 4 + [1500] * 1   # rough IMIX proportions
    return [Packet(packet_id=i,
                   queue=rng.randrange(num_queues),
                   size_bytes=rng.choice(sizes))
            for i in range(num_packets)]


def main() -> None:
    num_queues = 8
    config = CFDSConfig(num_queues=num_queues, dram_access_slots=8, granularity=2,
                        num_banks=32)
    buffer = CFDSPacketBuffer(config)
    segmenter = Segmenter(num_queues)
    reassembler = Reassembler()
    arbiter = LongestQueueArbiter(num_queues)

    packets = generate_packets(400, num_queues)
    cell_queue = deque()
    original_cells = {}
    for packet in packets:
        for cell in segmenter.segment(packet):
            cell_queue.append(cell)
            original_cells[(cell.queue, cell.seqno)] = cell

    total_cells = len(cell_queue)
    served = 0
    slot = 0
    completed_packets = 0

    while served < total_cells:
        arrival = cell_queue.popleft().queue if cell_queue else None
        backlog = [buffer.backlog(q) for q in range(num_queues)]
        request = arbiter.next_request(slot, backlog)
        cell = buffer.step(arrival, request)
        if cell is not None:
            served += 1
            packet = reassembler.push(original_cells[(cell.queue, cell.seqno)])
            if packet is not None:
                completed_packets += 1
        slot += 1

    result = buffer.combined_result()
    print(f"packets offered          : {len(packets)}")
    print(f"cells through the buffer : {total_cells}")
    print(f"packets reassembled      : {completed_packets}")
    print(f"reordering anomalies     : {reassembler.out_of_order_events}")
    print(f"head-SRAM misses         : {result.miss_count}")
    print(f"DRAM bank conflicts      : {result.bank_conflicts}")
    print(f"slots simulated          : {slot}")
    assert completed_packets == len(packets)
    assert reassembler.out_of_order_events == 0
    print("\nEvery packet crossed the buffer intact and in order.")


if __name__ == "__main__":
    main()
