#!/usr/bin/env python3
"""Regenerate the paper's technology evaluation as text tables.

This example drives the same analysis code the benchmarks use and prints:

* the introduction's DRAM-only bandwidth argument,
* Figure 8 (RADS SRAM access time / area versus lookahead),
* Table 2 (Requests Register sizes and scheduling times),
* Figure 10 (RADS versus CFDS area / access time versus delay),
* Figure 11 (maximum number of queues at OC-3072).

Run with::

    python examples/sram_technology_study.py
"""

from repro.analysis import (
    figure8,
    figure10,
    figure11,
    format_table,
    intro_dram_analysis,
    table2,
)
from repro.analysis.figure10 import figure10_summary
from repro.analysis.figure11 import figure11_summary


def print_intro() -> None:
    rows = [[r.num_chips, r.bus_bits, round(r.peak_gbps, 2), round(r.guaranteed_gbps, 2),
             f"{r.efficiency:.0%}", r.supports_oc768, r.supports_oc3072]
            for r in intro_dram_analysis()]
    print(format_table(
        ["chips", "bus bits", "peak Gb/s", "guaranteed Gb/s", "efficiency",
         "meets OC-768", "meets OC-3072"],
        rows, title="DRAM-only packet buffer (16 Mb SDRAM, 16-bit, 100 MHz)"))
    print()


def print_figure8(oc_name: str) -> None:
    points = figure8(oc_name, points=8)
    rows = [[p.lookahead_slots, round(p.delay_us, 2), round(p.sram_kbytes, 1),
             round(p.cam_access_ns, 2), round(p.linked_list_access_ns, 2),
             round(p.cam_area_cm2, 3), round(p.linked_list_area_cm2, 3)]
            for p in points]
    budget = points[0].budget_ns
    print(format_table(
        ["lookahead", "delay (us)", "SRAM (kB)", "CAM (ns)", "linked list (ns)",
         "CAM (cm^2)", "linked list (cm^2)"],
        rows, title=f"Figure 8 — {oc_name} RADS h-SRAM (budget {budget} ns)"))
    print()


def print_table2(oc_name: str) -> None:
    rows = [[r.granularity, r.rr_size_analytical, r.rr_size_hardware,
             r.scheduling_time_ns, r.scheduling_latency_ns and round(r.scheduling_latency_ns, 2),
             r.feasibility]
            for r in table2(oc_name) if r.valid]
    print(format_table(
        ["b", "RR (analytical)", "RR (hardware)", "time available (ns)",
         "wake-up+select (ns)", "feasibility"],
        rows, title=f"Table 2 — {oc_name} Requests Register"))
    print()


def print_figure10() -> None:
    summary = figure10_summary()
    points = figure10(points=6)
    rows = []
    for p in points:
        rows.append([p.scheme, p.granularity, p.lookahead_slots, p.latency_slots,
                     round(p.delay_us, 1), round(p.head_sram_kbytes, 1),
                     round(p.access_time_ns, 2), p.meets_budget,
                     round(p.area_cm2, 3)])
    print(format_table(
        ["scheme", "b", "lookahead", "latency", "delay (us)", "h-SRAM (kB)",
         "access (ns)", "meets 3.2 ns", "area h+t (cm^2)"],
        rows, title="Figure 10 — OC-3072 RADS vs CFDS"))
    print(f"\nBest compliant CFDS: b={summary['best_cfds_granularity']}, "
          f"delay {summary['best_cfds_delay_us']:.1f} us, "
          f"area {summary['best_cfds_area_cm2']:.2f} cm^2; "
          f"best RADS access time {summary['best_rads_access_ns']:.1f} ns at "
          f"{summary['best_rads_delay_us']:.1f} us delay.")
    print()


def print_figure11() -> None:
    points = figure11()
    rows = [[p.scheme, p.granularity, p.max_queues, round(p.access_time_ns, 2)]
            for p in points]
    summary = figure11_summary()
    print(format_table(
        ["scheme", "b", "max queues", "access at max (ns)"],
        rows, title="Figure 11 — maximum number of queues at OC-3072"))
    print(f"\nCFDS sustains {summary['cfds_max_queues']} queues "
          f"(vs {summary['rads_max_queues']} for RADS): "
          f"{summary['improvement_ratio']:.1f}x more.")
    print()


def main() -> None:
    print_intro()
    print_figure8("OC-768")
    print_figure8("OC-3072")
    print_table2("OC-768")
    print_table2("OC-3072")
    print_figure10()
    print_figure11()


if __name__ == "__main__":
    main()
