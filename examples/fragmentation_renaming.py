#!/usr/bin/env python3
"""DRAM fragmentation and the queue-renaming cure (Section 6).

CFDS statically binds each physical queue to one bank group, so without
renaming a single hot VOQ can only ever use 1/G of the DRAM: once its group is
full, cells are lost even though the rest of the DRAM sits empty.  The
renaming registers let a logical queue spill across groups and reclaim the
whole DRAM.

This example drives both variants with the same hot-spot traffic and compares
DRAM utilisation and losses.

Run with::

    python examples/fragmentation_renaming.py
"""

from repro import CFDSConfig, CFDSPacketBuffer, ClosedLoopSimulation
from repro.analysis.report import format_table
from repro.traffic import HotspotArrivals, RandomArbiter


def run_variant(use_renaming: bool, group_capacity_cells: int = 256):
    config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2,
                        num_banks=32, strict=False)
    buffer = CFDSPacketBuffer(config,
                              use_renaming=use_renaming,
                              oversubscription=2,
                              group_capacity_cells=group_capacity_cells)
    # 90% of the traffic targets two hot queues; the arbiter drains slowly so
    # the DRAM actually fills up.
    simulation = ClosedLoopSimulation(
        buffer,
        arrivals=HotspotArrivals(16, hot_queues=[0, 1], hot_fraction=0.9,
                                 load=0.95, seed=7),
        arbiter=RandomArbiter(16, load=0.35, seed=8),
    )
    report = simulation.run(30_000)
    return buffer, report


def main() -> None:
    rows = []
    for use_renaming in (False, True):
        buffer, report = run_variant(use_renaming)
        occupancy = buffer.dram_group_occupancy()
        rows.append([
            "renaming" if use_renaming else "static",
            report.throughput.arrivals,
            buffer.dropped_cells,
            f"{buffer.dram_utilisation():.0%}",
            max(occupancy),
            sum(1 for o in occupancy if o == 0),
        ])
    print(format_table(
        ["scheme", "cells offered", "cells dropped", "DRAM utilisation",
         "fullest group (cells)", "empty groups"],
        rows,
        title="Hot-spot traffic, 32-bank DRAM split into 8 groups of 256 cells"))
    print()
    print("Without renaming the hot queues are pinned to their home groups and")
    print("lose cells once those groups fill; with renaming the same traffic")
    print("spreads over every group and the whole DRAM is usable.")


if __name__ == "__main__":
    main()
