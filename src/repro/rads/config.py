"""Configuration object for RADS buffers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import (
    DEFAULT_DRAM_RANDOM_ACCESS_NS,
    OC_LINE_RATES_BPS,
    PAPER_GRANULARITY,
    PAPER_QUEUES,
    rads_granularity,
)
from repro.errors import ConfigurationError
from repro.rads.sizing import (
    ecqf_safe_lookahead,
    rads_sram_size,
    tail_sram_cells,
)


@dataclass(frozen=True)
class RADSConfig:
    """Static parameters of a RADS packet buffer.

    Attributes:
        num_queues: number of VOQ logical queues ``Q``.
        granularity: cells per DRAM access ``B`` (also the DRAM random access
            time in slots).
        lookahead: length of the head-MMA lookahead register in slots; by
            default the ECQF maximum ``Q(B-1)+1``.
        head_sram_cells: capacity of the head SRAM; by default the analytical
            requirement for the chosen lookahead plus one in-flight block.
        tail_sram_cells: capacity of the tail SRAM; by default ``Q(B-1)+B``.
        dram_cells: optional DRAM capacity (None = unbounded).
        strict: raise on misses/overflows (True) or record them (False).
    """

    num_queues: int
    granularity: int
    lookahead: Optional[int] = None
    head_sram_cells: Optional[int] = None
    tail_sram_cells: Optional[int] = None
    dram_cells: Optional[int] = None
    strict: bool = True

    def __post_init__(self) -> None:
        if self.num_queues <= 0:
            raise ConfigurationError("num_queues must be positive")
        if self.granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        if self.lookahead is not None and self.lookahead < 1:
            raise ConfigurationError("lookahead must be at least 1 slot")
        if self.head_sram_cells is not None and self.head_sram_cells <= 0:
            raise ConfigurationError("head_sram_cells must be positive")
        if self.tail_sram_cells is not None and self.tail_sram_cells <= 0:
            raise ConfigurationError("tail_sram_cells must be positive")

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #
    @property
    def effective_lookahead(self) -> int:
        """Lookahead actually used: the ECQF maximum plus the decision-phase
        margin (``Q(B-1)+B``), unless overridden."""
        if self.lookahead is not None:
            return self.lookahead
        return ecqf_safe_lookahead(self.num_queues, self.granularity)

    @property
    def effective_head_sram_cells(self) -> int:
        """Default head SRAM capacity enforced by the simulator.

        The *analytical* requirement (what Figures 8/10 are computed from) is
        ``rads_sram_size(L, Q, B)``; it is exactly tight for the paper's
        decision-aligned worst case.  The dynamic ECQF prefetcher of the
        simulator can additionally hold cells it fetched within the last
        lookahead window for requests that have not reached the head yet, so
        the enforced default adds that window (plus one in-flight block) as an
        engineering margin.  Pass ``head_sram_cells`` to override.
        """
        if self.head_sram_cells is not None:
            return self.head_sram_cells
        analytical = rads_sram_size(self.effective_lookahead, self.num_queues,
                                    self.granularity)
        return analytical + self.effective_lookahead + self.granularity

    @property
    def effective_tail_sram_cells(self) -> int:
        if self.tail_sram_cells is not None:
            return self.tail_sram_cells
        return tail_sram_cells(self.num_queues, self.granularity)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def for_line_rate(cls,
                      oc_name: str,
                      num_queues: Optional[int] = None,
                      dram_random_access_ns: float = DEFAULT_DRAM_RANDOM_ACCESS_NS,
                      **kwargs) -> "RADSConfig":
        """Build the configuration the paper uses for a given OC designation.

        ``OC-768`` maps to Q=128, B=8 and ``OC-3072`` to Q=512, B=32 (with the
        default 48 ns DRAM); other line rates derive B from the slot time.
        """
        if oc_name not in OC_LINE_RATES_BPS:
            raise ConfigurationError(
                f"unknown line rate designation {oc_name!r}; "
                f"expected one of {sorted(OC_LINE_RATES_BPS)}")
        rate = OC_LINE_RATES_BPS[oc_name]
        queues = num_queues if num_queues is not None else PAPER_QUEUES.get(oc_name, 128)
        if oc_name in PAPER_GRANULARITY and dram_random_access_ns == DEFAULT_DRAM_RANDOM_ACCESS_NS:
            granularity = PAPER_GRANULARITY[oc_name]
        else:
            granularity = rads_granularity(rate, dram_random_access_ns)
        return cls(num_queues=queues, granularity=granularity, **kwargs)
