"""RADS — the Random Access DRAM System baseline (Section 3 of the paper).

RADS is the hybrid SRAM/DRAM packet buffer of Iyer et al. [13]: head and tail
SRAM caches in front of a DRAM, with ECQF as the head MMA.  Transfers between
SRAM and DRAM are blocks of ``B`` cells issued once per DRAM random access
time, so the DRAM is treated as a single resource (banking is not exploited —
that is exactly the limitation CFDS removes).

The package provides the analytical sizing of the SRAMs and lookahead
(:mod:`repro.rads.sizing`), a slot-accurate head-side simulator
(:mod:`repro.rads.head_buffer`), the tail-side simulator
(:mod:`repro.rads.tail_buffer`) and the assembled VOQ packet buffer
(:mod:`repro.rads.buffer`).
"""

from repro.rads.config import RADSConfig
from repro.rads.sizing import (
    ecqf_max_lookahead,
    ecqf_min_sram_cells,
    ecqf_safe_lookahead,
    rads_sram_size,
    rads_sram_bytes,
    tail_sram_cells,
)
from repro.rads.head_buffer import RADSHeadBuffer
from repro.rads.tail_buffer import RADSTailBuffer
from repro.rads.buffer import RADSPacketBuffer

__all__ = [
    "RADSConfig",
    "ecqf_max_lookahead",
    "ecqf_min_sram_cells",
    "ecqf_safe_lookahead",
    "rads_sram_size",
    "rads_sram_bytes",
    "tail_sram_cells",
    "RADSHeadBuffer",
    "RADSTailBuffer",
    "RADSPacketBuffer",
]
