"""Analytical sizing of the RADS SRAMs and lookahead.

The paper cites reference [13] (Iyer, Kompella, McKeown, "Designing Buffers
for Router Line Cards") for the function ``rads_sram_size(L, Q, B)`` — the
head-SRAM size needed to guarantee zero misses given a lookahead of ``L``
slots, ``Q`` queues and granularity ``B``.  The two anchor points of that
trade-off are stated explicitly:

* ECQF with the maximal lookahead ``L = Q(B-1)+1`` needs exactly ``Q(B-1)``
  cells of head SRAM;
* with a minimal lookahead the requirement grows to roughly
  ``Q·B·ln Q`` cells (the MDQF bound of [13]).

Since the paper does not reprint the closed form, we use the interpolation

    ``rads_sram_size(L, Q, B) = max(Q(B-1), Q·B·ln(Q·B / L))``

which reproduces both anchor points the paper reports for both evaluated
configurations (OC-768: 300 kB -> 64 kB, OC-3072: 6.2 MB -> 1.0 MB) and decays
logarithmically in the lookahead, matching the shape of Figure 8.  The
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import math

from repro.constants import CELL_SIZE_BYTES


def ecqf_max_lookahead(num_queues: int, granularity: int) -> int:
    """Lookahead (in slots) at which ECQF needs the minimum SRAM: Q(B-1)+1."""
    _validate(num_queues, granularity)
    return num_queues * (granularity - 1) + 1


def ecqf_safe_lookahead(num_queues: int, granularity: int) -> int:
    """ECQF lookahead including the decision-phase margin: Q(B-1)+B.

    The classical ``Q(B-1)+1`` bound assumes the adversary's burst is aligned
    with the MMA's decision grid (one decision every ``B`` slots).  A burst of
    ``Q`` fresh criticalities that starts just *after* a decision slot wastes
    up to ``B-1`` slots of that grid, so the slot-accurate simulators default
    to this value — the analytical sizing is unchanged because the head SRAM
    requirement is already flat beyond ``Q(B-1)+1``.
    """
    _validate(num_queues, granularity)
    return num_queues * (granularity - 1) + granularity


def ecqf_min_sram_cells(num_queues: int, granularity: int) -> int:
    """Head SRAM size (cells) with the maximal ECQF lookahead: Q(B-1)."""
    _validate(num_queues, granularity)
    return num_queues * (granularity - 1)


def mdqf_sram_cells(num_queues: int, granularity: int) -> int:
    """Head SRAM size (cells) with no lookahead (MDQF bound ~ Q·B·ln Q)."""
    _validate(num_queues, granularity)
    if num_queues == 1:
        return granularity
    return int(math.ceil(num_queues * granularity * math.log(num_queues)))


def rads_sram_size(lookahead: int, num_queues: int, granularity: int) -> int:
    """Head SRAM size (cells) required for zero misses at a given lookahead.

    ``lookahead`` is clamped to the valid range ``[1, Q(B-1)+1]``; larger
    lookaheads do not reduce the SRAM below ``Q(B-1)``.
    """
    _validate(num_queues, granularity)
    if lookahead < 1:
        raise ValueError("lookahead must be at least 1 slot")
    floor_cells = ecqf_min_sram_cells(num_queues, granularity)
    if granularity == 1:
        # With B = 1 every request can be fetched individually; one cell per
        # queue of slack suffices and the formula degenerates.
        return max(floor_cells, num_queues)
    max_lookahead = ecqf_max_lookahead(num_queues, granularity)
    effective = min(lookahead, max_lookahead)
    log_term = num_queues * granularity * math.log(
        (num_queues * granularity) / effective)
    return int(max(floor_cells, math.ceil(log_term)))


def rads_sram_bytes(lookahead: int, num_queues: int, granularity: int) -> int:
    """Head SRAM size in bytes (cells x 64 B)."""
    return rads_sram_size(lookahead, num_queues, granularity) * CELL_SIZE_BYTES


def tail_sram_cells(num_queues: int, granularity: int) -> int:
    """Tail SRAM size (cells): Q(B-1) unevictable cells plus one block."""
    _validate(num_queues, granularity)
    return num_queues * (granularity - 1) + granularity


def lookahead_sweep(num_queues: int, granularity: int, points: int = 32) -> list:
    """Evenly spaced lookahead values from the granularity up to the ECQF
    maximum, used by the Figure 8/10 sweeps."""
    _validate(num_queues, granularity)
    if points < 2:
        raise ValueError("points must be at least 2")
    low = max(1, granularity)
    high = ecqf_max_lookahead(num_queues, granularity)
    if high <= low:
        return [high]
    step = (high - low) / (points - 1)
    values = sorted({int(round(low + i * step)) for i in range(points)})
    values[-1] = high
    return values


def _validate(num_queues: int, granularity: int) -> None:
    if num_queues <= 0:
        raise ValueError("num_queues must be positive")
    if granularity <= 0:
        raise ValueError("granularity must be positive")
