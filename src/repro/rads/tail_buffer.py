"""Slot-accurate simulator of the RADS tail subsystem (t-SRAM + t-MMA).

Arriving cells are written into the tail SRAM (one per slot at most); every
``B`` slots the tail MMA may evict one block of ``B`` cells of a single queue
to DRAM.  The guarantee to maintain is that the tail SRAM never overflows as
long as the DRAM has room — which the threshold policy achieves with a tail
SRAM of ``Q(B-1)+B`` cells.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.errors import BufferOverflowError
from repro.mma.tail_mma import ThresholdTailMMA
from repro.rads.config import RADSConfig
from repro.types import Cell, SimulationResult


class RADSTailBuffer:
    """Tail-side RADS simulator.

    The tail SRAM is modelled as per-queue FIFOs (cells cannot leave out of
    order on the tail side), with a shared capacity limit.  Evicted blocks are
    handed to a sink callable — the full buffer wires this to the DRAM store,
    the standalone tests wire it to a list.
    """

    def __init__(self,
                 config: RADSConfig,
                 evict_sink=None,
                 mma: Optional[ThresholdTailMMA] = None) -> None:
        self.config = config
        self.mma = mma if mma is not None else ThresholdTailMMA(config.granularity)
        self.evict_sink = evict_sink if evict_sink is not None else (lambda queue, cells: None)
        self._queues: Dict[int, Deque[Cell]] = {
            q: deque() for q in range(config.num_queues)}
        self._occupancy = 0
        self._slot = 0
        self.result = SimulationResult()

    # ------------------------------------------------------------------ #
    @property
    def slot(self) -> int:
        return self._slot

    def occupancy(self, queue: Optional[int] = None) -> int:
        if queue is None:
            return self._occupancy
        return len(self._queues[queue])

    def step(self, arrival: Optional[Cell] = None) -> Optional[List[Cell]]:
        """Advance one slot: accept at most one arriving cell, and on
        granularity boundaries let the tail MMA evict one block to DRAM.

        Returns the evicted block (list of cells) if an eviction happened.
        """
        slot = self._slot
        evicted: Optional[List[Cell]] = None

        if arrival is not None:
            self._accept(arrival)

        if slot % self.config.granularity == 0:
            evicted = self._run_mma()

        self._slot += 1
        self.result.slots_simulated = self._slot
        self.result.max_tail_sram_occupancy = max(
            self.result.max_tail_sram_occupancy, self._occupancy)
        return evicted

    def pop_direct(self, queue: int, count: int) -> List[Cell]:
        """Remove up to ``count`` head cells of ``queue`` directly (the
        cut-through path used by the full buffer when a queue is so short its
        cells never reached DRAM)."""
        fifo = self._queues[queue]
        out: List[Cell] = []
        while fifo and len(out) < count:
            out.append(fifo.popleft())
            self._occupancy -= 1
        return out

    def peek_direct(self, queue: int) -> Optional[Cell]:
        """Oldest cell of ``queue`` still resident in the tail SRAM."""
        fifo = self._queues[queue]
        return fifo[0] if fifo else None

    # ------------------------------------------------------------------ #
    def _accept(self, cell: Cell) -> None:
        capacity = self.config.effective_tail_sram_cells
        if self._occupancy + 1 > capacity:
            self.result.misses.append(None)
            if self.config.strict:
                raise BufferOverflowError("tail SRAM", capacity, self._occupancy + 1)
            return
        self._queues[cell.queue].append(cell)
        self._occupancy += 1
        self.result.cells_in += 1

    def _run_mma(self) -> Optional[List[Cell]]:
        occupancy = [len(self._queues[q]) for q in range(self.config.num_queues)]
        selection = self.mma.select(occupancy)
        if selection is None:
            return None
        block: List[Cell] = []
        fifo = self._queues[selection]
        for _ in range(self.config.granularity):
            if not fifo:
                break
            block.append(fifo.popleft())
            self._occupancy -= 1
        if block:
            self.evict_sink(selection, block)
            self.result.dram_writes += 1
        return block
