"""The assembled RADS VOQ packet buffer: tail SRAM + DRAM + head SRAM.

The full buffer wires the three stages together in FIFO order per queue
(arrivals -> tail SRAM -> DRAM -> head SRAM -> arbiter) and adds the
*cut-through* path every practical hybrid buffer needs: when the head MMA
replenishes a queue whose backlog is so short that part of it never reached
DRAM, the remaining cells are taken directly from the tail SRAM (they are
younger than anything in DRAM, so FIFO order is preserved).

The head-side worst-case dimensioning in the paper is done against an
always-backlogged DRAM (see :class:`repro.rads.head_buffer.RADSHeadBuffer`);
this class is the closed-loop system a user of the library would actually
instantiate to buffer traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.store import DRAMQueueStore
from repro.mma.base import HeadMMA
from repro.rads.config import RADSConfig
from repro.rads.head_buffer import RADSHeadBuffer
from repro.rads.tail_buffer import RADSTailBuffer
from repro.types import Cell, SimulationResult


class _CutThroughStore(DRAMQueueStore):
    """DRAM store that falls back to the tail SRAM when a queue's DRAM
    content is shorter than the requested block."""

    def __init__(self, num_queues: int, tail: RADSTailBuffer,
                 capacity_cells: Optional[int] = None) -> None:
        super().__init__(num_queues, capacity_cells)
        self._tail = tail

    def pop_block(self, queue: int, count: int) -> List[Cell]:
        cells = super().pop_block(queue, count)
        if len(cells) < count:
            cells.extend(self._tail.pop_direct(queue, count - len(cells)))
        return cells

    def has_cells(self, queue: int) -> bool:
        return super().has_cells(queue) or self._tail.occupancy(queue) > 0


class RADSPacketBuffer:
    """Complete RADS packet buffer.

    Typical use::

        config = RADSConfig(num_queues=8, granularity=4)
        buffer = RADSPacketBuffer(config)
        for slot in range(n_slots):
            buffer.step(arrival_queue_or_none, request_queue_or_none)

    One cell may arrive and one cell may be requested per slot (the 2x line
    rate assumption of Section 2).  Requests are only legal for cells that are
    already in the buffer and not yet promised to the arbiter; the
    :meth:`can_request` helper exposes that condition so traffic generators
    can stay admissible.
    """

    def __init__(self, config: RADSConfig, head_mma: Optional[HeadMMA] = None) -> None:
        self.config = config
        self.tail = RADSTailBuffer(config, evict_sink=self._evict_to_dram)
        self.dram = _CutThroughStore(config.num_queues, self.tail,
                                     capacity_cells=config.dram_cells)
        # The closed-loop buffer's head cache additionally reserves one block
        # per queue for the arrival cut-through path, on top of the worst-case
        # requirement of the head-side analysis.
        head_capacity = (config.effective_head_sram_cells
                         + config.num_queues * config.granularity)
        self.head = RADSHeadBuffer(config, mma=head_mma, dram=self.dram,
                                   bypass_source=self._tail_bypass,
                                   sram_capacity=head_capacity)
        self._arrival_seqno: Dict[int, int] = {q: 0 for q in range(config.num_queues)}
        self._outstanding_requests: Dict[int, int] = {q: 0 for q in range(config.num_queues)}
        self._dropped_cells = 0
        self._slot = 0

    # ------------------------------------------------------------------ #
    # Admissibility helpers
    # ------------------------------------------------------------------ #
    def backlog(self, queue: int) -> int:
        """Cells of ``queue`` in the buffer that are not yet promised to the
        arbiter (arrivals minus requests issued)."""
        return self._arrival_seqno[queue] - self._outstanding_requests[queue]

    def can_request(self, queue: int) -> bool:
        """True if the arbiter may legally request a cell of ``queue`` now."""
        return self.backlog(queue) > 0

    @property
    def dropped_cells(self) -> int:
        """Cells lost because an eviction found no DRAM room (only possible
        with a finite ``dram_cells`` capacity and ``strict=False``)."""
        return self._dropped_cells

    # ------------------------------------------------------------------ #
    # Per-slot operation
    # ------------------------------------------------------------------ #
    @property
    def slot(self) -> int:
        return self._slot

    def step(self,
             arrival: Optional[int] = None,
             request: Optional[int] = None) -> Optional[Cell]:
        """Advance one slot with at most one arrival and one request.

        Args:
            arrival: queue index of the cell arriving this slot, or ``None``.
            request: queue index the arbiter requests this slot, or ``None``.

        Returns:
            The cell granted to the arbiter this slot, if any.
        """
        if request is not None and not self.can_request(request):
            raise ValueError(
                f"inadmissible request: queue {request} has no unpromised cells")

        arrival_cell: Optional[Cell] = None
        if arrival is not None:
            seqno = self._arrival_seqno[arrival]
            arrival_cell = Cell(queue=arrival, seqno=seqno, arrival_slot=self._slot)
            self._arrival_seqno[arrival] = seqno + 1

        if request is not None:
            self._outstanding_requests[request] += 1

        if arrival_cell is not None and self._route_direct_to_head(arrival_cell.queue):
            self.head.accept_direct(arrival_cell)
            arrival_cell = None
        self.tail.step(arrival_cell)
        served = self.head.step(request)
        self._slot += 1
        return served

    def _route_direct_to_head(self, queue: int) -> bool:
        """Arrival cut-through: a cell goes straight to the head cache when
        its queue holds nothing in the tail SRAM or DRAM and its head-cache
        share (one block) is not yet full."""
        return (self.dram.occupancy(queue) == 0
                and self.tail.occupancy(queue) == 0
                and self.head.sram.occupancy(queue) < self.config.granularity)

    def drain(self) -> List[Cell]:
        """Run idle slots until every request in flight has been served."""
        served: List[Cell] = []
        for _ in range(self.config.effective_lookahead + self.config.granularity):
            cell = self.step(None, None)
            if cell is not None:
                served.append(cell)
        return served

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def combined_result(self) -> SimulationResult:
        """Merge head- and tail-side statistics into one result object."""
        head, tail = self.head.result, self.tail.result
        merged = SimulationResult(
            slots_simulated=self._slot,
            cells_in=tail.cells_in,
            cells_out=head.cells_out,
            dram_reads=head.dram_reads,
            dram_writes=tail.dram_writes,
            misses=list(head.misses) + list(tail.misses),
            max_head_sram_occupancy=head.max_head_sram_occupancy,
            max_tail_sram_occupancy=tail.max_tail_sram_occupancy,
        )
        return merged

    # ------------------------------------------------------------------ #
    def _evict_to_dram(self, queue: int, cells: List[Cell]) -> None:
        capacity = self.dram.capacity_cells
        if capacity is not None and not self.config.strict:
            room = capacity - self.dram.occupancy()
            if room < len(cells):
                self._dropped_cells += len(cells) - max(room, 0)
                cells = cells[:max(room, 0)]
        self.dram.push_many(cells)

    def _tail_bypass(self, queue: int, expected_seqno: int) -> Optional[Cell]:
        """Serve a due request straight from the tail SRAM when the in-order
        cell never left it (short-queue cut-through)."""
        cell = self.tail.peek_direct(queue)
        if cell is None or cell.seqno != expected_seqno:
            return None
        popped = self.tail.pop_direct(queue, 1)
        return popped[0] if popped else None
