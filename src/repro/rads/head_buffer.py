"""Slot-accurate simulator of the RADS head subsystem (h-SRAM + h-MMA).

This is the part of the buffer the paper's dimensioning focuses on: the
arbiter issues one cell request per slot, requests are delayed through a
lookahead register of ``L`` slots, and every ``B`` slots the MMA orders one
block transfer of ``B`` cells from DRAM to the head SRAM.  A *miss* occurs if
a request leaves the lookahead and its cell is not resident in the SRAM.

Timing model (one slot, in order):

1. The arbiter's request for this slot (or a bubble) enters the lookahead and
   the oldest element leaves it (it will be served at the end of the slot).
2. DRAM transfers initiated ``B`` slots ago complete; their cells become
   resident in the SRAM ("perfectly synchronized hardware" assumption of
   Section 3: the batch enters as the last cell drains).
3. If this is a granularity boundary, the MMA inspects the occupancy counters
   and the lookahead — which at this point includes the request that arrived
   this very slot — and may order one block transfer (counters are credited
   immediately; the data arrives ``B`` slots later).
4. The element that left the lookahead is served from the SRAM.

The phasing in steps 1 and 3 matters: the ECQF dimensioning (lookahead
``Q(B-1)+1``, SRAM ``Q(B-1)`` plus the in-flight block) is exactly tight under
the round-robin adversary, and it only works out if a decision made at slot
``t`` can already see the request issued at slot ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dram.store import DRAMQueueStore
from repro.errors import CacheMissError
from repro.mma.base import HeadMMA
from repro.mma.ecqf import ECQF
from repro.mma.occupancy import OccupancyCounters
from repro.mma.shift_register import ShiftRegister
from repro.rads.config import RADSConfig
from repro.sram.cell_store import SharedSRAM
from repro.types import Cell, MissRecord, SimulationResult


@dataclass
class _PendingTransfer:
    """A DRAM->SRAM block transfer in flight."""

    queue: int
    cells: List[Cell]
    finish_slot: int


class RADSHeadBuffer:
    """Head-side RADS simulator.

    Args:
        config: static RADS parameters.
        mma: head MMA policy (ECQF by default).
        dram: the per-queue DRAM content to replenish from.  When omitted, an
            unbounded store with every queue backlogged is created — the
            configuration used for worst-case dimensioning, where the DRAM
            always has cells for whichever queue the arbiter requests.
        bypass_source: optional callable ``(queue, expected_seqno) -> Cell or
            None`` consulted when a due request finds no in-order cell in the
            SRAM.  The closed-loop packet buffer wires this to the tail SRAM:
            queues so short that their cells never left the tail cache are
            served directly from it (the standard cut-through of hybrid
            designs) instead of being counted as a miss of the head cache.
    """

    def __init__(self,
                 config: RADSConfig,
                 mma: Optional[HeadMMA] = None,
                 dram: Optional[DRAMQueueStore] = None,
                 bypass_source=None,
                 sram_capacity: Optional[int] = None) -> None:
        self.config = config
        self.mma = mma if mma is not None else ECQF()
        if dram is None:
            dram = DRAMQueueStore(config.num_queues)
            dram.mark_backlogged(range(config.num_queues))
        self.dram = dram
        self.bypass_source = bypass_source
        self.bypass_serves = 0
        if sram_capacity is None:
            sram_capacity = config.effective_head_sram_cells
        self.sram = SharedSRAM(config.num_queues,
                               capacity_cells=sram_capacity if config.strict else None)
        self.counters = OccupancyCounters(config.num_queues)
        self.lookahead: ShiftRegister[int] = ShiftRegister(config.effective_lookahead)
        self._pending: List[_PendingTransfer] = []
        self._delivered: Dict[int, int] = {q: 0 for q in range(config.num_queues)}
        self._slot = 0
        self.result = SimulationResult()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def slot(self) -> int:
        """Current slot number (number of :meth:`step` calls so far)."""
        return self._slot

    def step(self, request: Optional[int] = None) -> Optional[Cell]:
        """Advance one slot.

        Args:
            request: queue index the arbiter requests this slot, or ``None``
                for an idle slot.

        Returns:
            The cell granted to the arbiter this slot (the request issued
            ``lookahead`` slots ago), or ``None`` if that position was a
            bubble or (in non-strict mode) a miss occurred.
        """
        if request is not None and not 0 <= request < self.config.num_queues:
            raise ValueError(f"request for unknown queue {request}")

        slot = self._slot
        leaving = self.lookahead.shift(request)
        if leaving is not None:
            self.counters.consume(leaving)
        self._deliver_completed(slot)
        if slot % self.config.granularity == 0:
            self._run_mma(slot)
        served = self._serve(leaving, slot)

        self._slot += 1
        self.result.slots_simulated = self._slot
        self.result.max_head_sram_occupancy = max(
            self.result.max_head_sram_occupancy, self.sram.occupancy())
        return served

    def accept_direct(self, cell: Cell) -> None:
        """Insert a cell straight into the head SRAM (arrival cut-through).

        The closed-loop buffer routes a newly arriving cell here when its
        queue has nothing in the tail SRAM or the DRAM, so short queues are
        served entirely from the head cache — the standard companion
        mechanism of hybrid SRAM/DRAM buffers.  The occupancy counter is
        credited so the MMA does not try to fetch the cell again.
        """
        self.sram.insert(cell)
        self.counters.add(cell.queue, 1)

    def run(self, requests, max_slots: Optional[int] = None) -> SimulationResult:
        """Feed an iterable of requests (queue index or ``None`` per slot),
        then drain the lookahead with idle slots so every request is served."""
        count = 0
        for request in requests:
            self.step(request)
            count += 1
            if max_slots is not None and count >= max_slots:
                break
        for _ in range(self.config.effective_lookahead):
            self.step(None)
        return self.result

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _deliver_completed(self, slot: int) -> None:
        arrived = [t for t in self._pending if t.finish_slot <= slot]
        if not arrived:
            return
        self._pending = [t for t in self._pending if t.finish_slot > slot]
        for transfer in arrived:
            self.sram.insert_block(transfer.cells)

    def _run_mma(self, slot: int) -> None:
        selection = self.mma.select(self.counters.snapshot(), self.lookahead.contents())
        if selection is None:
            return
        cells = self.dram.pop_block(selection, self.config.granularity)
        if not cells:
            # Nothing left in DRAM for this queue; the credit would be bogus.
            return
        self.counters.add(selection, len(cells))
        self._pending.append(_PendingTransfer(
            queue=selection, cells=cells,
            finish_slot=slot + self.config.granularity))
        self.result.dram_reads += 1

    def _serve(self, leaving: Optional[int], slot: int) -> Optional[Cell]:
        if leaving is None:
            return None
        expected = self._delivered[leaving]
        cell = self.sram.peek_next(leaving)
        if cell is not None and cell.seqno == expected:
            self.sram.pop_next(leaving)
        else:
            cell = self._bypass(leaving, expected)
            if cell is None:
                self.result.misses.append(MissRecord(queue=leaving, slot=slot))
                if self.config.strict:
                    raise CacheMissError(leaving, slot)
                return None
        self._delivered[leaving] = expected + 1
        self.result.cells_out += 1
        return cell

    def _bypass(self, queue: int, expected_seqno: int) -> Optional[Cell]:
        if self.bypass_source is None:
            return None
        cell = self.bypass_source(queue, expected_seqno)
        if cell is None:
            return None
        if cell.seqno != expected_seqno:
            raise ValueError(
                f"bypass source returned out-of-order cell for queue {queue}: "
                f"expected seqno {expected_seqno}, got {cell.seqno}")
        self.bypass_serves += 1
        return cell
