"""Table 2: Requests Register sizes and the time available to schedule one
request, for OC-768 and OC-3072 across CFDS granularities.

The reproduction also attaches the issue-logic feasibility verdict that the
paper derives from the Alpha 21264 analogy (trivial / aggressive / infeasible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.constants import PAPER_NUM_BANKS
from repro.core.sizing import (
    request_register_hardware_size,
    request_register_size,
    scheduling_time_ns,
)
from repro.rads.config import RADSConfig
from repro.runner.jobs import Job
from repro.runner.sweep import get_runner
from repro.tech.issue_logic import IssueLogicModel
from repro.tech.line_rates import LineRate


@dataclass(frozen=True)
class Table2Row:
    """One (line rate, granularity) cell group of Table 2."""

    oc_name: str
    num_queues: int
    dram_access_slots: int
    granularity: int
    valid: bool
    rr_size_analytical: Optional[int]
    rr_size_hardware: Optional[int]
    scheduling_time_ns: Optional[float]
    scheduling_latency_ns: Optional[float]
    feasibility: str


def table2_row(oc_name: str,
               granularity: int,
               num_queues: Optional[int] = None,
               num_banks: int = PAPER_NUM_BANKS,
               issue_logic: Optional[IssueLogicModel] = None) -> Table2Row:
    """Compute one (line rate, granularity) row of Table 2 (job-friendly)."""
    config = RADSConfig.for_line_rate(oc_name, num_queues=num_queues)
    line_rate = LineRate.from_name(oc_name)
    logic = issue_logic if issue_logic is not None else IssueLogicModel()
    b = granularity
    if b > config.granularity or config.granularity % b != 0:
        return Table2Row(
            oc_name=oc_name, num_queues=config.num_queues,
            dram_access_slots=config.granularity, granularity=b,
            valid=False, rr_size_analytical=None, rr_size_hardware=None,
            scheduling_time_ns=None, scheduling_latency_ns=None,
            feasibility="invalid")
    analytical = request_register_size(config.num_queues, num_banks,
                                       config.granularity, b)
    hardware = request_register_hardware_size(config.num_queues, num_banks,
                                              config.granularity, b)
    if b == config.granularity:
        # Degenerate case: b == B is RADS, no scheduling needed.
        return Table2Row(
            oc_name=oc_name, num_queues=config.num_queues,
            dram_access_slots=config.granularity, granularity=b,
            valid=True, rr_size_analytical=analytical, rr_size_hardware=hardware,
            scheduling_time_ns=None, scheduling_latency_ns=None,
            feasibility="not needed")
    available = scheduling_time_ns(b, line_rate.bits_per_second)
    latency = logic.scheduling_latency_ns(hardware)
    return Table2Row(
        oc_name=oc_name, num_queues=config.num_queues,
        dram_access_slots=config.granularity, granularity=b,
        valid=True, rr_size_analytical=analytical, rr_size_hardware=hardware,
        scheduling_time_ns=available, scheduling_latency_ns=latency,
        feasibility=logic.feasibility_label(hardware, available))


def table2_jobs(oc_name: str,
                num_queues: Optional[int] = None,
                num_banks: int = PAPER_NUM_BANKS,
                granularities: Sequence[int] = (32, 16, 8, 4, 2, 1)) -> List[Job]:
    """The table's sweep as runner jobs, one per granularity row."""
    jobs: List[Job] = []
    for b in granularities:
        kwargs = {"oc_name": oc_name, "granularity": b, "num_banks": num_banks}
        if num_queues is not None:
            kwargs["num_queues"] = num_queues
        jobs.append(Job(func="repro.analysis.table2:table2_row",
                        kwargs=kwargs, tag=oc_name))
    return jobs


def table2(oc_name: str,
           num_queues: Optional[int] = None,
           num_banks: int = PAPER_NUM_BANKS,
           granularities: Sequence[int] = (32, 16, 8, 4, 2, 1),
           issue_logic: Optional[IssueLogicModel] = None) -> List[Table2Row]:
    """Compute the Table 2 rows for one line rate."""
    if issue_logic is not None:
        # A custom issue-logic model is a live object and cannot ride in a
        # job's JSON kwargs; compute those rows inline.
        return [table2_row(oc_name, b, num_queues=num_queues,
                           num_banks=num_banks, issue_logic=issue_logic)
                for b in granularities]
    return get_runner().run(table2_jobs(oc_name, num_queues=num_queues,
                                        num_banks=num_banks,
                                        granularities=granularities))


#: The RR sizes printed in the paper's Table 2, used by the regression tests
#: and reported next to the reproduced values in EXPERIMENTS.md.
PAPER_TABLE2_RR_SIZES = {
    "OC-768": {32: None, 16: None, 8: 0, 4: 2, 2: 16, 1: 64},
    "OC-3072": {32: 0, 16: 8, 8: 64, 4: 256, 2: 1024, 1: 4096},
}

#: The scheduling times printed in the paper's Table 2 (ns).
PAPER_TABLE2_SCHED_TIMES_NS = {
    "OC-768": {32: None, 16: None, 8: None, 4: 51.2, 2: 25.6, 1: 12.8},
    "OC-3072": {32: None, 16: 51.2, 8: 25.6, 4: 12.8, 2: 6.4, 1: 3.2},
}
