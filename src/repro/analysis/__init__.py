"""Experiment harness: one module per table/figure of the paper's evaluation.

Each module computes the rows/series of the corresponding exhibit and returns
plain dataclasses, so the same code backs the runnable examples, the pytest
benchmarks (``benchmarks/``) and EXPERIMENTS.md.

* :mod:`repro.analysis.intro_dram` — the introduction's DRAM-only guaranteed
  bandwidth analysis (1.6/1.2 Gb/s single chip, 5.12 Gb/s for 8 chips);
* :mod:`repro.analysis.figure8` — RADS h-SRAM access time and area versus
  lookahead, OC-768 and OC-3072;
* :mod:`repro.analysis.table2` — Requests Register sizes and scheduling times;
* :mod:`repro.analysis.figure10` — RADS-versus-CFDS SRAM area and access time
  versus total delay at OC-3072;
* :mod:`repro.analysis.figure11` — maximum number of queues meeting the
  OC-3072 access-time budget;
* :mod:`repro.analysis.scaling` — extension study: DRAM technology scaling
  versus the architectural (CFDS) fix;
* :mod:`repro.analysis.report` — plain-text table formatting shared by the
  examples and benchmarks.
"""

from repro.analysis.intro_dram import (
    IntroDRAMRow,
    intro_dram_analysis,
    intro_dram_jobs,
)
from repro.analysis.figure8 import Figure8Point, figure8, figure8_jobs
from repro.analysis.table2 import Table2Row, table2, table2_jobs
from repro.analysis.figure10 import Figure10Point, figure10, figure10_jobs
from repro.analysis.figure11 import Figure11Point, figure11, figure11_jobs
from repro.analysis.scaling import (
    RoadmapPoint,
    granularity_roadmap,
    granularity_roadmap_jobs,
    projected_dram_access_ns,
    years_until_rads_suffices,
)
from repro.analysis.report import format_table

__all__ = [
    "IntroDRAMRow",
    "intro_dram_analysis",
    "intro_dram_jobs",
    "Figure8Point",
    "figure8",
    "figure8_jobs",
    "Table2Row",
    "table2",
    "table2_jobs",
    "Figure10Point",
    "figure10",
    "figure10_jobs",
    "Figure11Point",
    "figure11",
    "figure11_jobs",
    "RoadmapPoint",
    "granularity_roadmap",
    "granularity_roadmap_jobs",
    "projected_dram_access_ns",
    "years_until_rads_suffices",
    "format_table",
]
