"""Figure 8: RADS h-SRAM access time and area versus lookahead.

For OC-768 (Q=128, B=8) and OC-3072 (Q=512, B=32) the paper sweeps the
lookahead from its minimum to the ECQF maximum ``Q(B-1)+1``, derives the
required h-SRAM size from the formulas of [13], and evaluates the two shared
SRAM organisations of Section 7.1 (global CAM and time-multiplexed unified
linked list) with CACTI.  The conclusion to reproduce: both organisations meet
the 12.8 ns OC-768 budget comfortably, neither meets the 3.2 ns OC-3072
budget.

The sweep is expressed as one :class:`~repro.runner.jobs.Job` per lookahead
point (:func:`figure8_point`), so the CLI can run a panel through the cached,
parallel :class:`~repro.runner.sweep.SweepRunner`; :func:`figure8` remains the
serial-compatible entry point and produces identical numbers either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.constants import CELL_SIZE_BYTES
from repro.rads.config import RADSConfig
from repro.rads.sizing import lookahead_sweep, rads_sram_size
from repro.runner.jobs import Job
from repro.runner.sweep import get_runner
from repro.tech.line_rates import LineRate
from repro.tech.process import TechnologyProcess
from repro.tech.sram_designs import GlobalCAMDesign, UnifiedLinkedListDesign


@dataclass(frozen=True)
class Figure8Point:
    """One x-position of one Figure 8 panel."""

    oc_name: str
    num_queues: int
    granularity: int
    lookahead_slots: int
    delay_us: float
    sram_cells: int
    sram_kbytes: float
    cam_access_ns: float
    cam_area_cm2: float
    linked_list_access_ns: float
    linked_list_area_cm2: float
    budget_ns: float

    @property
    def cam_meets_budget(self) -> bool:
        return self.cam_access_ns <= self.budget_ns

    @property
    def linked_list_meets_budget(self) -> bool:
        return self.linked_list_access_ns <= self.budget_ns


def figure8_point(oc_name: str,
                  lookahead: int,
                  num_queues: Optional[int] = None,
                  process: Optional[TechnologyProcess] = None) -> Figure8Point:
    """Compute one Figure 8 point.  Job-friendly: module-level, and every
    argument except ``process`` is a plain JSON value."""
    config = RADSConfig.for_line_rate(oc_name, num_queues=num_queues)
    line_rate = LineRate.from_name(oc_name)
    cam = GlobalCAMDesign(config.num_queues, process)
    linked_list = UnifiedLinkedListDesign(config.num_queues, process)
    cells = rads_sram_size(lookahead, config.num_queues, config.granularity)
    return Figure8Point(
        oc_name=oc_name,
        num_queues=config.num_queues,
        granularity=config.granularity,
        lookahead_slots=lookahead,
        delay_us=lookahead * line_rate.slot_ns / 1e3,
        sram_cells=cells,
        sram_kbytes=cells * CELL_SIZE_BYTES / 1024.0,
        cam_access_ns=cam.access_time_ns(cells),
        cam_area_cm2=cam.area_cm2(cells),
        linked_list_access_ns=linked_list.access_time_ns(cells),
        linked_list_area_cm2=linked_list.area_cm2(cells),
        budget_ns=line_rate.sram_access_budget_ns,
    )


def figure8_jobs(oc_name: str,
                 num_queues: Optional[int] = None,
                 points: int = 24) -> List[Job]:
    """The panel's sweep as runner jobs, one per lookahead point."""
    config = RADSConfig.for_line_rate(oc_name, num_queues=num_queues)
    jobs: List[Job] = []
    for lookahead in lookahead_sweep(config.num_queues, config.granularity, points):
        kwargs = {"oc_name": oc_name, "lookahead": lookahead}
        if num_queues is not None:
            kwargs["num_queues"] = num_queues
        jobs.append(Job(func="repro.analysis.figure8:figure8_point",
                        kwargs=kwargs, tag=oc_name))
    return jobs


def figure8(oc_name: str,
            num_queues: Optional[int] = None,
            points: int = 24,
            process: Optional[TechnologyProcess] = None) -> List[Figure8Point]:
    """Compute one panel (access time + area curves) of Figure 8."""
    if process is not None:
        # Technology overrides are live objects and cannot ride in a job's
        # JSON kwargs; compute those sweeps inline.
        config = RADSConfig.for_line_rate(oc_name, num_queues=num_queues)
        return [figure8_point(oc_name, lookahead, num_queues=num_queues,
                              process=process)
                for lookahead in lookahead_sweep(config.num_queues,
                                                 config.granularity, points)]
    return get_runner().run(figure8_jobs(oc_name, num_queues=num_queues,
                                         points=points))


def figure8_summary_from_points(points: List[Figure8Point]) -> dict:
    """Summary of an already-computed panel (used by the CLI report)."""
    first, last = points[0], points[-1]
    return {
        "oc_name": first.oc_name,
        "sram_kbytes_min_lookahead": first.sram_kbytes,
        "sram_kbytes_max_lookahead": last.sram_kbytes,
        "best_access_ns_max_lookahead": min(last.cam_access_ns, last.linked_list_access_ns),
        "any_design_meets_budget": any(
            p.cam_meets_budget or p.linked_list_meets_budget for p in points),
        "budget_ns": first.budget_ns,
    }


def figure8_summary(oc_name: str,
                    num_queues: Optional[int] = None,
                    process: Optional[TechnologyProcess] = None) -> dict:
    """Headline numbers the paper quotes in the Figure 8 discussion: SRAM size
    at minimum and maximum lookahead, and whether any design meets the budget."""
    points = figure8(oc_name, num_queues=num_queues, points=24, process=process)
    return figure8_summary_from_points(points)
