"""Figure 11: maximum number of queues sustainable at OC-3072.

For each granularity the paper asks: using the maximal lookahead, what is the
largest number of queues for which the required SRAMs still meet the 3.2 ns
access-time budget?  The RADS answer (b=B=32) is a small number of queues;
CFDS with intermediate granularities reaches several hundred (the paper
reports up to ~850, about six times the RADS value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.constants import PAPER_NUM_BANKS
from repro.core.sizing import cfds_sram_size
from repro.rads.sizing import ecqf_max_lookahead, rads_sram_size, tail_sram_cells
from repro.runner.jobs import Job
from repro.runner.sweep import get_runner
from repro.tech.line_rates import LineRate
from repro.tech.process import TechnologyProcess
from repro.tech.sram_designs import GlobalCAMDesign, UnifiedLinkedListDesign


@dataclass(frozen=True)
class Figure11Point:
    """Maximum sustainable queue count for one granularity."""

    oc_name: str
    scheme: str
    granularity: int
    max_queues: int
    head_sram_cells: int
    access_time_ns: float
    budget_ns: float


def max_queues_for_granularity(granularity: int,
                               dram_access_slots: int,
                               oc_name: str = "OC-3072",
                               num_banks: int = PAPER_NUM_BANKS,
                               queue_limit: int = 4096,
                               process: Optional[TechnologyProcess] = None) -> Figure11Point:
    """Binary-search the largest queue count whose SRAMs meet the budget."""
    line_rate = LineRate.from_name(oc_name)
    budget = line_rate.sram_access_budget_ns
    scheme = "RADS" if granularity == dram_access_slots else "CFDS"

    def access_time(num_queues: int) -> (float, int):
        lookahead = ecqf_max_lookahead(num_queues, granularity)
        if scheme == "RADS":
            head_cells = rads_sram_size(lookahead, num_queues, granularity)
        else:
            head_cells = cfds_sram_size(lookahead, num_queues, num_banks,
                                        dram_access_slots, granularity)
        tail_cells = tail_sram_cells(num_queues, granularity)
        critical = max(head_cells, tail_cells)
        cam = GlobalCAMDesign(num_queues, process)
        linked_list = UnifiedLinkedListDesign(num_queues, process)
        fastest = min(cam.access_time_ns(critical), linked_list.access_time_ns(critical))
        return fastest, head_cells

    low, high = 1, queue_limit
    best = 0
    best_cells = 0
    best_time = float("inf")
    if access_time(1)[0] > budget:
        return Figure11Point(oc_name=oc_name, scheme=scheme, granularity=granularity,
                             max_queues=0, head_sram_cells=0,
                             access_time_ns=access_time(1)[0], budget_ns=budget)
    while low <= high:
        mid = (low + high) // 2
        time_ns, cells = access_time(mid)
        if time_ns <= budget:
            best, best_cells, best_time = mid, cells, time_ns
            low = mid + 1
        else:
            high = mid - 1
    return Figure11Point(oc_name=oc_name, scheme=scheme, granularity=granularity,
                         max_queues=best, head_sram_cells=best_cells,
                         access_time_ns=best_time, budget_ns=budget)


def figure11_jobs(oc_name: str = "OC-3072",
                  dram_access_slots: int = 32,
                  num_banks: int = PAPER_NUM_BANKS,
                  granularities: Sequence[int] = (32, 16, 8, 4, 2, 1),
                  queue_limit: int = 4096) -> List[Job]:
    """The figure's sweep as runner jobs, one binary search per bar.

    The per-bar binary search is the expensive part of this figure (dozens of
    CACTI evaluations each), which makes the bar the right parallel grain.
    """
    jobs: List[Job] = []
    for b in granularities:
        if b > dram_access_slots or dram_access_slots % b != 0:
            continue
        jobs.append(Job(
            func="repro.analysis.figure11:max_queues_for_granularity",
            kwargs={"granularity": b, "dram_access_slots": dram_access_slots,
                    "oc_name": oc_name, "num_banks": num_banks,
                    "queue_limit": queue_limit},
            tag=f"b={b}"))
    return jobs


def figure11(oc_name: str = "OC-3072",
             dram_access_slots: int = 32,
             num_banks: int = PAPER_NUM_BANKS,
             granularities: Sequence[int] = (32, 16, 8, 4, 2, 1),
             queue_limit: int = 4096,
             process: Optional[TechnologyProcess] = None) -> List[Figure11Point]:
    """Compute every bar of Figure 11."""
    if process is not None:
        return [max_queues_for_granularity(
                    b, dram_access_slots, oc_name=oc_name, num_banks=num_banks,
                    queue_limit=queue_limit, process=process)
                for b in granularities
                if b <= dram_access_slots and dram_access_slots % b == 0]
    return get_runner().run(figure11_jobs(
        oc_name, dram_access_slots, num_banks=num_banks,
        granularities=granularities, queue_limit=queue_limit))


def figure11_summary_from_points(points: List[Figure11Point]) -> dict:
    """Summary of already-computed bars (used by the CLI report)."""
    rads = next(p for p in points if p.scheme == "RADS")
    cfds_best = max((p for p in points if p.scheme == "CFDS"),
                    key=lambda p: p.max_queues)
    return {
        "rads_max_queues": rads.max_queues,
        "cfds_max_queues": cfds_best.max_queues,
        "cfds_best_granularity": cfds_best.granularity,
        "improvement_ratio": (cfds_best.max_queues / rads.max_queues
                              if rads.max_queues else float("inf")),
    }


def figure11_summary(oc_name: str = "OC-3072",
                     dram_access_slots: int = 32,
                     num_banks: int = PAPER_NUM_BANKS,
                     process: Optional[TechnologyProcess] = None) -> dict:
    """The headline ratio the paper quotes: best CFDS queue count over RADS."""
    points = figure11(oc_name, dram_access_slots, num_banks, process=process)
    return figure11_summary_from_points(points)
