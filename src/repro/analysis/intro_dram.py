"""Introduction analysis: guaranteed bandwidth of DRAM-only packet buffers.

Reproduces the numbers the paper's introduction uses to motivate the hybrid
approach: a single 16 Mb SDRAM chip (16-bit interface, 100 MHz) peaks at
1.6 Gb/s but guarantees only ~1.2 Gb/s, and an 8-chip configuration only
~5.12 Gb/s — far short of the 80-320 Gb/s a 40/160 Gb/s line card needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.runner.jobs import Job
from repro.runner.sweep import get_runner
from repro.tech.dram_chips import COMMODITY_DRAM_CHIPS
from repro.tech.line_rates import LineRate


@dataclass(frozen=True)
class IntroDRAMRow:
    """One configuration of the DRAM-only analysis."""

    chip: str
    num_chips: int
    bus_bits: int
    peak_gbps: float
    guaranteed_gbps: float
    efficiency: float
    supports_oc768: bool
    supports_oc3072: bool


def intro_dram_row(chip_name: str, num_chips: int) -> IntroDRAMRow:
    """One configuration of the DRAM-only analysis (job-friendly)."""
    if chip_name not in COMMODITY_DRAM_CHIPS:
        raise ValueError(f"unknown DRAM chip {chip_name!r}")
    chip = COMMODITY_DRAM_CHIPS[chip_name]
    oc768 = LineRate.from_name("OC-768")
    oc3072 = LineRate.from_name("OC-3072")
    peak = chip.peak_bandwidth_gbps * num_chips
    guaranteed = chip.guaranteed_bandwidth_gbps(num_chips)
    return IntroDRAMRow(
        chip=chip.name,
        num_chips=num_chips,
        bus_bits=chip.io_bits * num_chips,
        peak_gbps=peak,
        guaranteed_gbps=guaranteed,
        efficiency=guaranteed / peak if peak else 0.0,
        supports_oc768=guaranteed >= oc768.buffer_bandwidth_gbps,
        supports_oc3072=guaranteed >= oc3072.buffer_bandwidth_gbps,
    )


def intro_dram_jobs(chip_name: str = "sdram-16mb",
                    chip_counts: Sequence[int] = (1, 2, 4, 8, 16, 32)) -> List[Job]:
    """The widening-data-path sweep as runner jobs, one per chip count."""
    if chip_name not in COMMODITY_DRAM_CHIPS:
        raise ValueError(f"unknown DRAM chip {chip_name!r}")
    return [Job(func="repro.analysis.intro_dram:intro_dram_row",
                kwargs={"chip_name": chip_name, "num_chips": count},
                tag=chip_name)
            for count in chip_counts]


def intro_dram_analysis(chip_name: str = "sdram-16mb",
                        chip_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
                        ) -> List[IntroDRAMRow]:
    """Return the guaranteed-bandwidth rows for a widening DRAM data path."""
    return get_runner().run(intro_dram_jobs(chip_name, chip_counts))


def dram_family_jobs(num_chips: int = 8) -> List[Job]:
    """The cross-family comparison as runner jobs, one per DRAM part."""
    return [Job(func="repro.analysis.intro_dram:intro_dram_row",
                kwargs={"chip_name": name, "num_chips": num_chips},
                tag="family")
            for name in sorted(COMMODITY_DRAM_CHIPS)]


def dram_family_comparison(num_chips: int = 8) -> List[IntroDRAMRow]:
    """Extension: the same analysis across the DRAM families the paper cites
    (DDR, DRDRAM, FCRAM, RLDRAM), showing that even faster parts fall short of
    OC-3072 without the hybrid architecture."""
    return get_runner().run(dram_family_jobs(num_chips))
