"""Figure 10: SRAM area and access time versus delay, RADS versus CFDS.

For OC-3072 (Q=512, M=256 banks) the paper sweeps the MMA lookahead for the
RADS baseline (granularity b=B=32) and for CFDS configurations with
b in {16, 8, 4, 2, 1}.  The x-axis is the total delay a cell request incurs
(lookahead for RADS, lookahead plus the latency register for CFDS); the
y-axes are the access time of the most restrictive SRAM and the combined
(h-SRAM + t-SRAM) area.

Conclusions to reproduce: CFDS configurations with intermediate granularities
meet the 3.2 ns budget at delays around ten microseconds with a fraction of
the RADS area, RADS never gets below several nanoseconds even at >50 us
delay, and there is an optimal granularity (the two SRAM-size terms pull in
opposite directions).

The sweep is expressed as one :class:`~repro.runner.jobs.Job` per granularity
curve (:func:`figure10_curve`), the natural parallel grain: curves are
independent, points within a curve share the per-granularity setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.constants import CELL_SIZE_BYTES, PAPER_NUM_BANKS
from repro.core.sizing import cfds_sram_size, latency_slots
from repro.rads.config import RADSConfig
from repro.rads.sizing import lookahead_sweep, rads_sram_size, tail_sram_cells
from repro.runner.jobs import Job
from repro.runner.sweep import get_runner
from repro.tech.line_rates import LineRate
from repro.tech.process import TechnologyProcess
from repro.tech.sram_designs import GlobalCAMDesign, UnifiedLinkedListDesign


@dataclass(frozen=True)
class Figure10Point:
    """One x-position of one Figure 10 curve."""

    oc_name: str
    scheme: str
    granularity: int
    lookahead_slots: int
    latency_slots: int
    delay_us: float
    head_sram_cells: int
    tail_sram_cells: int
    head_sram_kbytes: float
    access_time_ns: float
    fastest_design: str
    area_cm2: float
    budget_ns: float

    @property
    def meets_budget(self) -> bool:
        return self.access_time_ns <= self.budget_ns


def figure10_curve(oc_name: str = "OC-3072",
                   granularity: int = 32,
                   num_queues: Optional[int] = None,
                   num_banks: int = PAPER_NUM_BANKS,
                   points: int = 16,
                   process: Optional[TechnologyProcess] = None) -> List[Figure10Point]:
    """Compute one granularity curve of Figure 10 (job-friendly).

    Returns an empty list when ``granularity`` does not divide the line
    rate's DRAM access granularity ``B``.
    """
    config = RADSConfig.for_line_rate(oc_name, num_queues=num_queues)
    line_rate = LineRate.from_name(oc_name)
    big_b = config.granularity
    b = granularity
    if b > big_b or big_b % b != 0:
        return []
    scheme = "RADS" if b == big_b else "CFDS"
    extra = 0 if b == big_b else latency_slots(
        config.num_queues, num_banks, big_b, b)
    tail_cells = tail_sram_cells(config.num_queues, b)
    results: List[Figure10Point] = []
    for lookahead in lookahead_sweep(config.num_queues, b, points):
        if b == big_b:
            head_cells = rads_sram_size(lookahead, config.num_queues, b)
        else:
            head_cells = cfds_sram_size(lookahead, config.num_queues,
                                        num_banks, big_b, b)
        results.append(_evaluate_point(oc_name, scheme, b, lookahead, extra,
                                       head_cells, tail_cells,
                                       config.num_queues, line_rate, process))
    return results


def figure10_jobs(oc_name: str = "OC-3072",
                  num_queues: Optional[int] = None,
                  num_banks: int = PAPER_NUM_BANKS,
                  granularities: Sequence[int] = (32, 16, 8, 4, 2, 1),
                  points: int = 16) -> List[Job]:
    """The figure's sweep as runner jobs, one per granularity curve."""
    jobs: List[Job] = []
    for b in granularities:
        kwargs = {"oc_name": oc_name, "granularity": b,
                  "num_banks": num_banks, "points": points}
        if num_queues is not None:
            kwargs["num_queues"] = num_queues
        jobs.append(Job(func="repro.analysis.figure10:figure10_curve",
                        kwargs=kwargs, tag=f"b={b}"))
    return jobs


def figure10(oc_name: str = "OC-3072",
             num_queues: Optional[int] = None,
             num_banks: int = PAPER_NUM_BANKS,
             granularities: Sequence[int] = (32, 16, 8, 4, 2, 1),
             points: int = 16,
             process: Optional[TechnologyProcess] = None) -> List[Figure10Point]:
    """Compute every curve of Figure 10 (one list entry per curve point)."""
    if process is not None:
        curves = [figure10_curve(oc_name, b, num_queues=num_queues,
                                 num_banks=num_banks, points=points,
                                 process=process)
                  for b in granularities]
    else:
        curves = get_runner().run(figure10_jobs(
            oc_name, num_queues=num_queues, num_banks=num_banks,
            granularities=granularities, points=points))
    return [point for curve in curves for point in curve]


def _evaluate_point(oc_name: str, scheme: str, granularity: int,
                    lookahead: int, extra_latency: int,
                    head_cells: int, tail_cells: int, num_queues: int,
                    line_rate: LineRate,
                    process: Optional[TechnologyProcess]) -> Figure10Point:
    cam = GlobalCAMDesign(num_queues, process)
    linked_list = UnifiedLinkedListDesign(num_queues, process)
    # Most restrictive access time: both SRAMs must keep up, so take the
    # larger capacity and the fastest design available for it.
    critical_cells = max(head_cells, tail_cells)
    candidates = {
        cam.name: cam.access_time_ns(critical_cells),
        linked_list.name: linked_list.access_time_ns(critical_cells),
    }
    fastest_name = min(candidates, key=candidates.get)
    fastest_time = candidates[fastest_name]
    fastest_design = cam if fastest_name == cam.name else linked_list
    area = fastest_design.area_cm2(head_cells) + fastest_design.area_cm2(tail_cells)
    delay_slots = lookahead + extra_latency
    return Figure10Point(
        oc_name=oc_name, scheme=scheme, granularity=granularity,
        lookahead_slots=lookahead, latency_slots=extra_latency,
        delay_us=delay_slots * line_rate.slot_ns / 1e3,
        head_sram_cells=head_cells, tail_sram_cells=tail_cells,
        head_sram_kbytes=head_cells * CELL_SIZE_BYTES / 1024.0,
        access_time_ns=fastest_time, fastest_design=fastest_name,
        area_cm2=area, budget_ns=line_rate.sram_access_budget_ns)


def figure10_summary_from_points(points: List[Figure10Point]) -> dict:
    """Summary of already-computed curves (used by the CLI report)."""
    rads_points = [p for p in points if p.scheme == "RADS"]
    cfds_points = [p for p in points if p.scheme == "CFDS"]
    compliant = [p for p in cfds_points if p.meets_budget]
    best_cfds = min(compliant, key=lambda p: (p.delay_us, p.area_cm2)) if compliant else None
    best_rads = min(rads_points, key=lambda p: p.access_time_ns)
    return {
        "cfds_compliant_exists": best_cfds is not None,
        "best_cfds_granularity": best_cfds.granularity if best_cfds else None,
        "best_cfds_delay_us": best_cfds.delay_us if best_cfds else None,
        "best_cfds_area_cm2": best_cfds.area_cm2 if best_cfds else None,
        "best_rads_access_ns": best_rads.access_time_ns,
        "best_rads_delay_us": best_rads.delay_us,
        "best_rads_area_cm2": best_rads.area_cm2,
        "budget_ns": best_rads.budget_ns,
    }


def figure10_summary(oc_name: str = "OC-3072",
                     num_queues: Optional[int] = None,
                     num_banks: int = PAPER_NUM_BANKS,
                     process: Optional[TechnologyProcess] = None) -> dict:
    """Headline comparison the paper quotes: the best compliant CFDS
    configuration versus the best RADS operating point."""
    points = figure10(oc_name, num_queues=num_queues, num_banks=num_banks,
                      process=process)
    return figure10_summary_from_points(points)
