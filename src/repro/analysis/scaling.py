"""Extension study: how far can technology scaling alone carry RADS?

Section 3 of the paper observes that commodity DRAM random access times
improve only slowly ("around 10% every 18 months"), which is why shrinking
the granularity architecturally (CFDS) — rather than waiting for faster
DRAM — is necessary.  This module quantifies that remark:

* :func:`granularity_roadmap` — the RADS granularity ``B`` (and hence the
  head-SRAM size) implied by the projected DRAM random access time over a
  number of years, for a given line rate;
* :func:`years_until_rads_suffices` — how many years of DRAM scaling would be
  needed before plain RADS meets a line rate's SRAM access-time budget with a
  given number of queues, versus CFDS meeting it today.

These are not exhibits of the paper; they are the quantitative version of its
motivating argument, and they back the ``bench_scaling`` extension benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.constants import DEFAULT_DRAM_RANDOM_ACCESS_NS, rads_granularity
from repro.rads.sizing import ecqf_max_lookahead, rads_sram_size
from repro.runner.jobs import Job
from repro.runner.sweep import get_runner
from repro.tech.line_rates import LineRate
from repro.tech.process import TechnologyProcess
from repro.tech.sram_designs import GlobalCAMDesign, UnifiedLinkedListDesign

#: The paper's DRAM scaling assumption: ~10% faster every 18 months.
DRAM_IMPROVEMENT_PER_18_MONTHS: float = 0.10


def projected_dram_access_ns(years: float,
                             initial_ns: float = DEFAULT_DRAM_RANDOM_ACCESS_NS,
                             improvement_per_18_months: float = DRAM_IMPROVEMENT_PER_18_MONTHS,
                             ) -> float:
    """DRAM random access time after ``years`` of the paper's scaling trend."""
    if years < 0:
        raise ValueError("years must be non-negative")
    if not 0.0 <= improvement_per_18_months < 1.0:
        raise ValueError("improvement_per_18_months must be in [0, 1)")
    periods = years / 1.5
    return initial_ns * (1.0 - improvement_per_18_months) ** periods


@dataclass(frozen=True)
class RoadmapPoint:
    """RADS requirements at one point of the DRAM scaling roadmap."""

    years_from_now: float
    dram_access_ns: float
    granularity: int
    head_sram_cells: int
    head_sram_kbytes: float
    best_access_time_ns: float
    meets_budget: bool


def roadmap_point(oc_name: str,
                  num_queues: int,
                  year: float,
                  process: Optional[TechnologyProcess] = None) -> RoadmapPoint:
    """RADS requirements at one point of the DRAM scaling roadmap
    (job-friendly)."""
    line_rate = LineRate.from_name(oc_name)
    cam = GlobalCAMDesign(num_queues, process)
    linked_list = UnifiedLinkedListDesign(num_queues, process)
    access_ns = projected_dram_access_ns(year)
    granularity = rads_granularity(line_rate.bits_per_second, access_ns)
    lookahead = ecqf_max_lookahead(num_queues, granularity)
    cells = rads_sram_size(lookahead, num_queues, granularity)
    best_ns = min(cam.access_time_ns(cells), linked_list.access_time_ns(cells))
    return RoadmapPoint(
        years_from_now=year,
        dram_access_ns=access_ns,
        granularity=granularity,
        head_sram_cells=cells,
        head_sram_kbytes=cells * 64 / 1024.0,
        best_access_time_ns=best_ns,
        meets_budget=best_ns <= line_rate.sram_access_budget_ns,
    )


#: Default roadmap horizon (years from the paper's publication).
DEFAULT_ROADMAP_YEARS: List[float] = [0, 3, 6, 9, 12, 15]


def granularity_roadmap_jobs(oc_name: str,
                             num_queues: int,
                             years: Optional[List[float]] = None) -> List[Job]:
    """The roadmap sweep as runner jobs, one per year."""
    if years is None:
        years = DEFAULT_ROADMAP_YEARS
    return [Job(func="repro.analysis.scaling:roadmap_point",
                kwargs={"oc_name": oc_name, "num_queues": num_queues,
                        "year": year},
                tag=f"{year}y")
            for year in years]


def granularity_roadmap(oc_name: str,
                        num_queues: int,
                        years: Optional[List[float]] = None,
                        process: Optional[TechnologyProcess] = None) -> List[RoadmapPoint]:
    """RADS granularity / SRAM / feasibility over a DRAM scaling roadmap."""
    if process is not None:
        if years is None:
            years = DEFAULT_ROADMAP_YEARS
        return [roadmap_point(oc_name, num_queues, year, process=process)
                for year in years]
    return get_runner().run(granularity_roadmap_jobs(oc_name, num_queues, years))


def years_until_rads_suffices(oc_name: str,
                              num_queues: int,
                              horizon_years: float = 30.0,
                              step_years: float = 0.5,
                              process: Optional[TechnologyProcess] = None) -> Optional[float]:
    """First point on the roadmap at which plain RADS meets the SRAM budget,
    or ``None`` if it does not happen within the horizon."""
    if horizon_years <= 0 or step_years <= 0:
        raise ValueError("horizon_years and step_years must be positive")
    steps = int(horizon_years / step_years) + 1
    # Deliberately a serial early-exit search (not a runner sweep): the
    # common case stops after a handful of cheap formula evaluations.
    for i in range(steps):
        year = i * step_years
        point = roadmap_point(oc_name, num_queues, year, process=process)
        if point.meets_budget:
            return year
    return None
