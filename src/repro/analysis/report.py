"""Plain-text reports: table formatting plus one renderer per exhibit.

:func:`format_table` is the shared low-level formatter.  The ``render_*``
functions turn the result lists produced by the analysis modules (and, via
the runner, by ``python -m repro``) into the text reports the CLI prints —
so the CLI, the examples and the benchmarks all show the same tables.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple aligned text table.

    Floats are shown with three significant decimals; ``None`` renders as a
    dash, mirroring the paper's own table style.
    """
    rendered_rows: List[List[str]] = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_intro_dram(rows, family_rows) -> str:
    """Report for the introduction's DRAM-only bandwidth analysis."""
    widening = format_table(
        ["chip", "chips", "bus bits", "peak Gb/s", "guaranteed Gb/s",
         "efficiency", "OC-768 ok", "OC-3072 ok"],
        [[r.chip, r.num_chips, r.bus_bits, r.peak_gbps, r.guaranteed_gbps,
          r.efficiency, r.supports_oc768, r.supports_oc3072] for r in rows],
        title="Intro — guaranteed bandwidth of a widening DRAM-only buffer")
    family = format_table(
        ["chip", "chips", "bus bits", "peak Gb/s", "guaranteed Gb/s",
         "efficiency", "OC-768 ok", "OC-3072 ok"],
        [[r.chip, r.num_chips, r.bus_bits, r.peak_gbps, r.guaranteed_gbps,
          r.efficiency, r.supports_oc768, r.supports_oc3072]
         for r in family_rows],
        title="Intro — DRAM families the paper cites, same chip count")
    return widening + "\n\n" + family


def render_figure8(points) -> str:
    """Report for Figure 8 (one table per OC panel plus headline numbers)."""
    blocks: List[str] = []
    for oc_name in _ordered_unique(p.oc_name for p in points):
        panel = [p for p in points if p.oc_name == oc_name]
        blocks.append(format_table(
            ["lookahead", "delay (us)", "SRAM (kB)", "CAM (ns)",
             "CAM (cm^2)", "linked list (ns)", "linked list (cm^2)",
             "budget (ns)"],
            [[p.lookahead_slots, p.delay_us, p.sram_kbytes, p.cam_access_ns,
              p.cam_area_cm2, p.linked_list_access_ns, p.linked_list_area_cm2,
              p.budget_ns] for p in panel],
            title=(f"Figure 8 — RADS h-SRAM vs lookahead, {oc_name} "
                   f"(Q={panel[0].num_queues}, B={panel[0].granularity})")))
        feasible = any(p.cam_meets_budget or p.linked_list_meets_budget
                       for p in panel)
        blocks.append(f"{oc_name}: any design meets the "
                      f"{panel[0].budget_ns:g} ns budget: "
                      f"{'yes' if feasible else 'no'}")
    return "\n\n".join(blocks)


def render_table2(rows) -> str:
    """Report for Table 2 (one table per OC line rate)."""
    blocks: List[str] = []
    for oc_name in _ordered_unique(r.oc_name for r in rows):
        group = [r for r in rows if r.oc_name == oc_name]
        blocks.append(format_table(
            ["b", "valid", "RR (analytical)", "RR (hardware)",
             "sched time (ns)", "sched latency (ns)", "feasibility"],
            [[r.granularity, r.valid, r.rr_size_analytical, r.rr_size_hardware,
              r.scheduling_time_ns, r.scheduling_latency_ns, r.feasibility]
             for r in group],
            title=(f"Table 2 — Requests Register and scheduling time, "
                   f"{oc_name} (Q={group[0].num_queues}, "
                   f"B={group[0].dram_access_slots})")))
    return "\n\n".join(blocks)


def render_figure10(points) -> str:
    """Report for Figure 10 (all curves in one table, RADS then CFDS)."""
    return format_table(
        ["scheme", "b", "lookahead", "latency", "delay (us)", "h-SRAM (kB)",
         "access (ns)", "fastest design", "area (cm^2)", "meets budget"],
        [[p.scheme, p.granularity, p.lookahead_slots, p.latency_slots,
          p.delay_us, p.head_sram_kbytes, p.access_time_ns, p.fastest_design,
          p.area_cm2, p.meets_budget] for p in points],
        title=(f"Figure 10 — SRAM access time and area vs delay, "
               f"{points[0].oc_name} (budget {points[0].budget_ns:g} ns)"))


def render_figure11(points) -> str:
    """Report for Figure 11 (maximum queues per granularity)."""
    return format_table(
        ["scheme", "b", "max queues", "h-SRAM cells", "access (ns)",
         "budget (ns)"],
        [[p.scheme, p.granularity, p.max_queues, p.head_sram_cells,
          p.access_time_ns, p.budget_ns] for p in points],
        title=(f"Figure 11 — maximum queues meeting the SRAM budget, "
               f"{points[0].oc_name}"))


def render_scaling(points, years_to_suffice: Optional[float]) -> str:
    """Report for the DRAM-scaling extension study."""
    suffix = (f"{years_to_suffice:g}" if years_to_suffice is not None
              else ">30")
    return format_table(
        ["years from 2003", "DRAM T_RC (ns)", "B", "head SRAM (kB)",
         "best access (ns)", "meets budget"],
        [[p.years_from_now, p.dram_access_ns, p.granularity,
          p.head_sram_kbytes, p.best_access_time_ns, p.meets_budget]
         for p in points],
        title=("Extension — RADS under the paper's DRAM scaling trend "
               f"(RADS sufficient after: {suffix} years)"))


def render_scenarios(results) -> str:
    """Report for the workload-scenario sweep: one row per scenario, with the
    latency tail percentiles next to the mean."""
    return format_table(
        ["scenario", "scheme", "slots", "offered", "carried", "drops",
         "lat mean", "p50", "p95", "p99", "max", "zero miss"],
        [[r.name, r.scheme, r.slots, r.offered_load, r.carried_load, r.drops,
          r.latency_mean, r.latency_p50, r.latency_p95, r.latency_p99,
          r.latency_max, r.zero_miss] for r in results],
        title="Workload scenarios — closed-loop statistics per scenario")


def render_scenario_run(name: str, scheme: str, report) -> str:
    """Report for one ``python -m repro scenario <name>`` run.

    The headline rows come straight from ``SimulationReport.summary()`` so
    the CLI, the sweep results and the report object stay in sync; only the
    buffer-side extras are added here.
    """
    result = report.buffer_result
    rows = [[key.replace("_", " "), value]
            for key, value in report.summary().items()]
    rows += [["bank conflicts", result.bank_conflicts],
             ["peak head SRAM (cells)", result.max_head_sram_occupancy],
             ["peak tail SRAM (cells)", result.max_tail_sram_occupancy]]
    return format_table(["metric", "value"], rows,
                        title=f"Scenario {name} ({scheme})")


def render_switch_run(report) -> str:
    """Report for one ``python -m repro switch <name>`` run: the aggregate
    headline rows, then one row per egress port.

    The headline rows come straight from ``SwitchReport.summary()`` (merged
    per-port latency histograms, so the aggregate percentiles are exact);
    the per-port table reuses the ``ScenarioResult`` fields, which is the
    degenerate-case promise made concrete — a port row is a scenario row.

    A partial report (ports quarantined by a non-strict runner) keeps the
    surviving rows aligned to their true egress index and appends the
    failure-provenance block below the tables.
    """
    aggregate = format_table(
        ["metric", "value"],
        [[key.replace("_", " "), value]
         for key, value in report.summary().items()],
        title=f"Switch {report.name} ({report.num_ports} ports, "
              f"{report.engine} engine)")
    fabric = report.fabric
    failures = tuple(getattr(report, "failures", ()))
    failed_indices = {int(f.tag[4:]) for f in failures
                      if f.tag.startswith("port") and f.tag[4:].isdigit()}
    indices = [i for i in range(report.num_ports) if i not in failed_indices]
    if len(indices) != len(report.ports):  # unexpected tags: best effort
        indices = list(range(len(report.ports)))
    per_port = format_table(
        ["port", "scheme", "fabric cells", "arrivals", "departures", "drops",
         "lat mean", "p50", "p99", "max", "zero miss"],
        [[index, p.scheme, fabric.per_egress_cells[index], p.arrivals,
          p.departures, p.drops, p.latency_mean, p.latency_p50,
          p.latency_p99, p.latency_max, p.zero_miss]
         for index, p in zip(indices, report.ports)],
        title="Per-port closed-loop statistics")
    text = aggregate + "\n\n" + per_port
    if failures:
        from repro.workloads.spec_yaml import render_job_failures

        text += "\n\n" + render_job_failures(failures)
    return text


def render_switch_suite(reports) -> str:
    """Report for the ``switch-suite`` experiment: one row per switch
    scenario, latency percentiles over the merged per-port histograms."""
    rows = []
    for report in reports:
        summary = report.summary()
        rows.append([
            report.name, report.num_ports, summary["slots"],
            summary["flush_slots"], summary["offered_cells"],
            summary["departures"], summary["drops"],
            summary["fabric_wait_mean"], summary["latency_mean"],
            summary["latency_p99"], summary["zero_miss"],
        ])
    return format_table(
        ["scenario", "ports", "slots", "flush", "offered", "departures",
         "drops", "fabric wait", "lat mean", "p99", "zero miss"],
        rows,
        title="Switch suite — merged per-port statistics per scenario")


def _ordered_unique(values: Iterable[str]) -> List[str]:
    seen: List[str] = []
    for value in values:
        if value not in seen:
            seen.append(value)
    return seen


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)
