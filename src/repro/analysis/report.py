"""Plain-text table formatting for examples, benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple aligned text table.

    Floats are shown with three significant decimals; ``None`` renders as a
    dash, mirroring the paper's own table style.
    """
    rendered_rows: List[List[str]] = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)
