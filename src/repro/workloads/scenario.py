"""Declarative workload scenarios.

A :class:`Scenario` bundles everything one closed-loop run needs — the buffer
scheme and its configuration, the arrival process, the arbiter, the duration
and the seed — as *plain data*.  Generators are named by short type strings
and built through explicit factory tables, so a scenario round-trips through
a JSON spec dict: that is what lets the experiment runner cache scenario runs
(:class:`~repro.runner.jobs.Job` kwargs must be JSON-serialisable) and what
makes ``python -m repro scenario`` possible without any code in the loop.

The module-level :func:`run_scenario_spec` is the job function the runner
executes; it returns a :class:`ScenarioResult` of plain numbers that the
result cache can serialise.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.buffer import CFDSPacketBuffer
from repro.core.config import CFDSConfig
from repro.errors import CheckpointError, ConfigurationError
from repro.mma.ecqf import ECQF
from repro.mma.mdqf import MDQF
from repro.rads.buffer import RADSPacketBuffer
from repro.rads.config import RADSConfig
from repro.sim.engine import ClosedLoopSimulation, SimulationReport
from repro.traffic.arbiters import (
    Arbiter,
    IntermittentArbiter,
    LongestQueueArbiter,
    OldestCellArbiter,
    RandomArbiter,
    RoundRobinAdversary,
    StridedAdversary,
    TraceArbiter,
)
from repro.traffic.arrivals import (
    ArrivalProcess,
    BernoulliArrivals,
    BurstyArrivals,
    DeterministicArrivals,
    HotspotArrivals,
    MarkovOnOffArrivals,
    ParetoBurstArrivals,
    RoundRobinArrivals,
    TraceArrivals,
    ZipfArrivals,
)

#: Arrival-process factories, keyed by the type string used in scenario specs.
ARRIVAL_TYPES: Dict[str, type] = {
    "bernoulli": BernoulliArrivals,
    "bursty": BurstyArrivals,
    "deterministic": DeterministicArrivals,
    "hotspot": HotspotArrivals,
    "markov_on_off": MarkovOnOffArrivals,
    "pareto": ParetoBurstArrivals,
    "round_robin": RoundRobinArrivals,
    "trace": TraceArrivals,
    "zipf": ZipfArrivals,
}

#: Arbiter factories, keyed by the type string used in scenario specs.
ARBITER_TYPES: Dict[str, type] = {
    "intermittent": IntermittentArbiter,
    "longest_queue": LongestQueueArbiter,
    "oldest_cell": OldestCellArbiter,
    "random": RandomArbiter,
    "round_robin_adversary": RoundRobinAdversary,
    "strided_adversary": StridedAdversary,
    "trace": TraceArbiter,
}

#: Buffer schemes a scenario can drive, mapped to (config class, buffer class).
SCHEMES: Dict[str, Tuple[type, type]] = {
    "rads": (RADSConfig, RADSPacketBuffer),
    "cfds": (CFDSConfig, CFDSPacketBuffer),
}

#: Head-MMA factories, keyed by the type string used in scenario specs.
#: ``None`` in a spec keeps the buffer's stock policy (ECQF with fallback);
#: naming one explicitly routes the run through the generic MMA path of
#: every engine — the "custom MMA" surface the differential harness covers.
MMA_TYPES: Dict[str, type] = {
    "ecqf": ECQF,
    "mdqf": MDQF,
}


def accepts_param(cls: type, name: str) -> bool:
    """True when ``cls.__init__`` takes a parameter called ``name``.

    The spec builders use this to inject context a spec dict should not have
    to spell out (the scenario seed here; the port count and ingress index in
    :mod:`repro.switch`) without breaking generators that do not take it.
    """
    return name in inspect.signature(cls.__init__).parameters


def _accepts_seed(cls: type) -> bool:
    return accepts_param(cls, "seed")


def _build_component(spec: Mapping[str, Any], table: Dict[str, type],
                     kind: str, seed: int) -> Any:
    """Instantiate one generator from its ``{"type": ..., "params": ...}`` spec.

    A scenario-level ``seed`` is injected into any stochastic generator whose
    params do not pin one explicitly, so re-seeding a scenario re-seeds every
    generator in it.
    """
    try:
        type_name = spec["type"]
    except (TypeError, KeyError):
        raise ConfigurationError(f"{kind} spec must be a dict with a 'type' key")
    try:
        cls = table[type_name]
    except KeyError:
        known = ", ".join(sorted(table))
        raise ConfigurationError(
            f"unknown {kind} type {type_name!r} (known: {known})")
    params = dict(spec.get("params", {}))
    if "inner" in params and kind == "arbiter":
        params["inner"] = _build_component(params["inner"], ARBITER_TYPES,
                                           "arbiter", seed + 1)
    if _accepts_seed(cls) and "seed" not in params:
        params["seed"] = seed
    return cls(**params)


@dataclass(frozen=True)
class Scenario:
    """One fully specified closed-loop workload.

    Attributes:
        name: registry key, also the CLI name.
        description: one line for ``python -m repro scenario --list``.
        scheme: buffer scheme, a key of :data:`SCHEMES`.
        buffer: keyword arguments for the scheme's config class.
        arrivals: arrival-process spec dict, or ``None`` for a drain-only run.
        arbiter: arbiter spec dict, or ``None`` for a fill-only run.
        num_slots: slots to simulate.
        seed: scenario seed, injected into generators that take one.
        tags: free-form labels (``"bursty"``, ``"adversarial"``, ...).
        head_mma: head-MMA spec dict (a key of :data:`MMA_TYPES`), or
            ``None`` for the buffer's stock policy.
    """

    name: str
    description: str
    scheme: str
    buffer: Mapping[str, Any]
    arrivals: Optional[Mapping[str, Any]]
    arbiter: Optional[Mapping[str, Any]]
    num_slots: int
    seed: int = 0
    tags: Tuple[str, ...] = ()
    head_mma: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            known = ", ".join(sorted(SCHEMES))
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r} (known: {known})")
        if self.num_slots < 0:
            raise ConfigurationError("num_slots must be non-negative")

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    def build_buffer(self):
        config_cls, buffer_cls = SCHEMES[self.scheme]
        config = config_cls(**dict(self.buffer))
        if self.head_mma is None:
            return buffer_cls(config)
        mma = _build_component(self.head_mma, MMA_TYPES, "head MMA", self.seed)
        return buffer_cls(config, head_mma=mma)

    def build_arrivals(self) -> Optional[ArrivalProcess]:
        if self.arrivals is None:
            return None
        return _build_component(self.arrivals, ARRIVAL_TYPES, "arrival", self.seed)

    def build_arbiter(self) -> Optional[Arbiter]:
        if self.arbiter is None:
            return None
        return _build_component(self.arbiter, ARBITER_TYPES, "arbiter",
                                self.seed + 0x9E37)

    def build_simulation(self, record_trace: bool = False) -> ClosedLoopSimulation:
        return ClosedLoopSimulation(self.build_buffer(),
                                    self.build_arrivals(),
                                    self.build_arbiter(),
                                    record_trace=record_trace)

    def run(self,
            *,
            num_slots: Optional[int] = None,
            fast_path: bool = True,
            record_trace: bool = False,
            engine: Optional[str] = None) -> SimulationReport:
        """Build everything fresh and simulate the scenario once.

        ``engine`` selects the simulation core (``"reference"``,
        ``"batched"`` or ``"array"``); when omitted, ``fast_path`` picks
        between the reference and batched loops as before.  All engines
        produce bit-identical reports.
        """
        sim = self.build_simulation(record_trace=record_trace)
        return sim.run(self.num_slots if num_slots is None else num_slots,
                       fast_path=fast_path, engine=engine)

    def run_stream(self,
                   *,
                   num_slots: Optional[int] = None,
                   engine: Optional[str] = None,
                   chunk_slots: Optional[int] = None,
                   warmup_slots: int = 0,
                   checkpoint_every: Optional[int] = None,
                   checkpoint_path=None,
                   record_trace: bool = False,
                   progress=None,
                   progress_every: int = 1) -> SimulationReport:
        """Build everything fresh and simulate the scenario in bounded-memory
        chunks (:mod:`repro.sim.streaming`): arrival plans are generated per
        chunk, the first ``warmup_slots`` are discarded from the statistics,
        and the run can periodically checkpoint to a resumable snapshot.
        With ``warmup_slots=0`` the report is bit-identical to :meth:`run`.
        """
        sim = self.build_simulation(record_trace=record_trace)
        return sim.run_stream(
            self.num_slots if num_slots is None else num_slots,
            engine=engine, chunk_slots=chunk_slots,
            warmup_slots=warmup_slots, checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path, label=self.name,
            progress=progress, progress_every=progress_every)

    # ------------------------------------------------------------------ #
    # Spec round-trip
    # ------------------------------------------------------------------ #
    def to_spec(self) -> Dict[str, Any]:
        """JSON-serialisable dict from which :meth:`from_spec` rebuilds this
        scenario (the form that travels through the runner cache)."""
        return {
            "name": self.name,
            "description": self.description,
            "scheme": self.scheme,
            "buffer": dict(self.buffer),
            "arrivals": None if self.arrivals is None else _copy_spec(self.arrivals),
            "arbiter": None if self.arbiter is None else _copy_spec(self.arbiter),
            "num_slots": self.num_slots,
            "seed": self.seed,
            "tags": list(self.tags),
            "head_mma": (None if self.head_mma is None
                         else _copy_spec(self.head_mma)),
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "Scenario":
        try:
            return cls(
                name=spec["name"],
                description=spec.get("description", ""),
                scheme=spec["scheme"],
                buffer=dict(spec.get("buffer", {})),
                arrivals=spec.get("arrivals"),
                arbiter=spec.get("arbiter"),
                num_slots=spec["num_slots"],
                seed=spec.get("seed", 0),
                tags=tuple(spec.get("tags", ())),
                head_mma=spec.get("head_mma"),
            )
        except KeyError as exc:
            raise ConfigurationError(f"scenario spec is missing key {exc}")


def _copy_spec(spec: Mapping[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {"type": spec["type"]}
    params = dict(spec.get("params", {}))
    if "inner" in params and isinstance(params["inner"], Mapping):
        params["inner"] = _copy_spec(params["inner"])
    out["params"] = params
    return out


# --------------------------------------------------------------------- #
# Cacheable results
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ScenarioResult:
    """Flat, cache-serialisable summary of one scenario run.

    This is also the per-port result type of the switch layer
    (:mod:`repro.switch`): a registered single-port scenario is simply the
    degenerate one-port case, and a switch port is a ``Scenario`` whose
    arrivals are the fabric's egress trace.  ``latency_histogram`` carries the
    full delay distribution as sorted ``(delay, count)`` pairs so port
    results can be merged into exact switch-level percentiles (merged
    per-port histograms, never averaged per-port percentiles).
    """

    name: str
    scheme: str
    slots: int
    arrivals: int
    departures: int
    drops: int
    idle_request_slots: int
    offered_load: float
    carried_load: float
    latency_mean: float
    latency_p50: int
    latency_p95: int
    latency_p99: int
    latency_max: int
    zero_miss: bool
    bank_conflicts: int
    max_head_sram_occupancy: int
    max_tail_sram_occupancy: int
    latency_histogram: Tuple[Tuple[int, int], ...] = ()

    @classmethod
    def from_report(cls, name: str, scheme: str,
                    report: SimulationReport) -> "ScenarioResult":
        throughput, latency = report.throughput, report.latency
        result = report.buffer_result
        p50, p95, p99 = latency.percentiles((0.50, 0.95, 0.99))
        return cls(
            name=name,
            scheme=scheme,
            slots=throughput.slots,
            arrivals=throughput.arrivals,
            departures=throughput.departures,
            drops=throughput.drops,
            idle_request_slots=throughput.idle_request_slots,
            offered_load=throughput.offered_load,
            carried_load=throughput.carried_load,
            latency_mean=latency.mean,
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
            latency_max=latency.maximum,
            zero_miss=report.zero_miss,
            bank_conflicts=result.bank_conflicts,
            max_head_sram_occupancy=result.max_head_sram_occupancy,
            max_tail_sram_occupancy=result.max_tail_sram_occupancy,
            latency_histogram=latency.histogram_items(),
        )


def run_scenario_spec(spec: Mapping[str, Any],
                      fast_path: bool = True,
                      engine: Optional[str] = None,
                      stream: bool = False,
                      chunk_slots: Optional[int] = None,
                      warmup_slots: int = 0,
                      checkpoint_every: Optional[int] = None,
                      checkpoint_dir: Optional[str] = None) -> ScenarioResult:
    """Job entry point: rebuild the scenario from its spec and run it.

    With ``stream=True`` the run goes through the bounded-memory streaming
    path; a ``checkpoint_dir`` (the runner cache's artifact directory, say)
    makes the run crash-resumable: snapshots are written there every
    ``checkpoint_every`` slots under a spec-derived name, an existing
    snapshot is resumed instead of restarting, and the snapshot is removed
    once the run completes (the result itself lands in the result cache).
    All kwargs are JSON-serialisable, so streamed runs cache exactly like
    monolithic ones.
    """
    scenario = Scenario.from_spec(spec)
    if not stream:
        report = scenario.run(fast_path=fast_path, engine=engine)
        return ScenarioResult.from_report(scenario.name, scenario.scheme,
                                          report)

    import hashlib
    import json
    import os

    from repro.sim.streaming import DEFAULT_CHUNK_SLOTS, resume_stream

    checkpoint_path = None
    if checkpoint_dir is not None:
        if checkpoint_every is None:
            checkpoint_every = 4 * DEFAULT_CHUNK_SLOTS
        signature = json.dumps(
            {"spec": scenario.to_spec(), "engine": engine,
             "chunk_slots": chunk_slots, "warmup_slots": warmup_slots},
            sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(signature.encode("utf-8")).hexdigest()[:16]
        checkpoint_path = os.path.join(
            checkpoint_dir, f"{scenario.name}-{digest}.ckpt.json")
    report = None
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        try:
            report = resume_stream(checkpoint_path)
        except CheckpointError:
            # A stale or incompatible snapshot (e.g. pickled classes changed
            # underneath it) must not wedge the job forever: discard it and
            # recompute from slot 0.
            try:
                os.unlink(checkpoint_path)
            except OSError:
                pass
    if report is None:
        report = scenario.run_stream(
            engine=engine, chunk_slots=chunk_slots,
            warmup_slots=warmup_slots, checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path)
    if checkpoint_path is not None:
        try:
            os.unlink(checkpoint_path)
        except OSError:
            pass
    return ScenarioResult.from_report(scenario.name, scenario.scheme, report)
