"""YAML front end for scenario / switch sweeps.

A sweep document describes many runs as one base spec plus a parameter grid::

    kind: scenario              # or: switch
    name: load-sweep            # base name for the expanded jobs
    spec:                       # exactly the Scenario.to_spec() JSON form
      scheme: rads
      buffer: {num_queues: 8, granularity: 4}
      arrivals: {type: bernoulli, params: {num_queues: 8, load: 0.9}}
      arbiter: {type: oldest_cell, params: {num_queues: 8}}
      num_slots: 20000
    grid:                       # dotted spec paths -> value lists
      seed: [0, 1, 2]
      arrivals.params.load: [0.5, 0.8, 0.95]
      run.engine: [batched, array]
    run:                        # execution options shared by every job
      stream: false

The grid is expanded as a full cartesian product in key order; each point
deep-copies the base spec, applies its overrides (``run.*`` keys override the
``run`` block instead of the spec) and is *canonicalised* through the
existing dataclass round-trip — ``Scenario.from_spec(...).to_spec()`` — so
every compiled spec is, by construction, bit-identical under
spec → JSON → spec.  Validation is eager: every component of every expanded
point is actually built once at compile time, and any failure is reported as
a :class:`~repro.errors.SpecError` naming the document path
(``grid['arrivals.params.load'][2]``, ``spec.buffer``, ...) rather than the
Python that tripped over it.

Compiled points become :class:`~repro.runner.jobs.Job` objects for the
existing :class:`~repro.runner.sweep.SweepRunner`, which is what
``python -m repro scenario --from-spec sweep.yaml`` executes.

PyYAML is an optional dependency: everything here except the two
``*_yaml`` I/O helpers works on plain dicts, and the helpers raise a clean
:class:`SpecError` when the package is missing.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

try:  # pragma: no cover - exercised only where PyYAML is absent
    import yaml as _yaml
except ImportError:  # pragma: no cover
    _yaml = None

from repro.errors import ReproError, SpecError
from repro.obs.metrics import get_metrics
from repro.obs.trace import emit as trace_emit
from repro.runner.jobs import Job
from repro.switch.scenario import SwitchScenario
from repro.workloads.scenario import Scenario

#: Job functions the two document kinds compile to.
SCENARIO_JOB_FUNC = "repro.workloads.scenario:run_scenario_spec"
SWITCH_JOB_FUNC = "repro.switch.model:run_switch_spec"

#: Document kinds and the run-block options each accepts.
RUN_KEYS: Dict[str, Tuple[str, ...]] = {
    "scenario": ("engine", "stream", "chunk_slots", "warmup_slots"),
    "switch": ("engine",),
}

#: Top-level keys a document may carry.
DOCUMENT_KEYS = ("kind", "name", "spec", "grid", "run")


def _require_yaml() -> Any:
    if _yaml is None:
        raise SpecError(
            "YAML sweep specs need the optional 'pyyaml' package; install "
            "it, or compile from a JSON document instead")
    return _yaml


# --------------------------------------------------------------------- #
# Document model
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SpecDocument:
    """One parsed (but not yet expanded) sweep document."""

    kind: str
    name: str
    spec: Mapping[str, Any]
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    run: Mapping[str, Any] = field(default_factory=dict)

    def to_mapping(self) -> Dict[str, Any]:
        """The plain-dict form (what the YAML file holds)."""
        out: Dict[str, Any] = {"kind": self.kind, "name": self.name,
                               "spec": json.loads(json.dumps(self.spec))}
        if self.grid:
            out["grid"] = {axis: list(values)
                           for axis, values in self.grid.items()}
        if self.run:
            out["run"] = dict(self.run)
        return out


@dataclass(frozen=True)
class CompiledPoint:
    """One expanded grid point: a canonical spec plus its run options."""

    name: str
    kind: str
    spec: Mapping[str, Any]
    run: Mapping[str, Any]
    axes: Mapping[str, Any]

    def job(self) -> Job:
        """The :class:`~repro.runner.jobs.Job` that executes this point."""
        kwargs: Dict[str, Any] = {"spec": json.loads(json.dumps(self.spec))}
        run = dict(self.run)
        if self.kind == "scenario":
            if run.get("engine") is not None:
                kwargs["engine"] = run["engine"]
            if run.get("stream"):
                kwargs["stream"] = True
                if run.get("chunk_slots") is not None:
                    kwargs["chunk_slots"] = run["chunk_slots"]
                if run.get("warmup_slots"):
                    kwargs["warmup_slots"] = run["warmup_slots"]
            func = SCENARIO_JOB_FUNC
        else:
            if run.get("engine") is not None:
                kwargs["engine"] = run["engine"]
            func = SWITCH_JOB_FUNC
        tag = ", ".join(f"{axis}={value!r}"
                        for axis, value in self.axes.items())
        return Job(func=func, kwargs=kwargs, tag=tag)

    def describe(self) -> str:
        """One ``--dry-run`` line for this point."""
        axes = (f" [{', '.join(f'{a}={v!r}' for a, v in self.axes.items())}]"
                if self.axes else "")
        return f"{self.kind} {self.name}{axes}"


# --------------------------------------------------------------------- #
# Parsing
# --------------------------------------------------------------------- #

def parse_document(document: Any, source: str = "<spec>") -> SpecDocument:
    """Validate the raw (YAML/JSON-loaded) mapping into a :class:`SpecDocument`.

    Every structural problem raises :class:`SpecError` naming the document
    path and the offending key, so the message points at the YAML line to
    fix.
    """
    if not isinstance(document, Mapping):
        raise SpecError(f"{source}: document must be a mapping, "
                        f"not {type(document).__name__}")
    unknown = sorted(set(document) - set(DOCUMENT_KEYS))
    if unknown:
        raise SpecError(f"{source}: unknown top-level key "
                        f"{unknown[0]!r} (known: {', '.join(DOCUMENT_KEYS)})")
    kind = document.get("kind")
    if kind not in RUN_KEYS:
        raise SpecError(f"{source}: 'kind' must be one of "
                        f"{', '.join(sorted(RUN_KEYS))}, got {kind!r}")
    spec = document.get("spec")
    if not isinstance(spec, Mapping):
        raise SpecError(f"{source}: 'spec' must be a mapping with the "
                        f"{kind} spec fields, got {type(spec).__name__}")
    name = document.get("name", spec.get("name", "sweep"))
    if not isinstance(name, str) or not name:
        raise SpecError(f"{source}: 'name' must be a non-empty string")

    grid = document.get("grid", {})
    if not isinstance(grid, Mapping):
        raise SpecError(f"{source}: 'grid' must be a mapping of dotted spec "
                        "paths to value lists")
    for axis, values in grid.items():
        if not isinstance(axis, str) or not axis:
            raise SpecError(f"{source}.grid: axis names must be non-empty "
                            f"strings, got {axis!r}")
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise SpecError(f"{source}.grid[{axis!r}]: expected a list of "
                            f"values, got {type(values).__name__}")
        if len(values) == 0:
            raise SpecError(f"{source}.grid[{axis!r}]: value list is empty")
        if axis.startswith("run."):
            _check_run_key(kind, axis[len("run."):],
                           f"{source}.grid[{axis!r}]")

    run = document.get("run", {})
    if not isinstance(run, Mapping):
        raise SpecError(f"{source}: 'run' must be a mapping of run options")
    for key in run:
        _check_run_key(kind, key, f"{source}.run")

    return SpecDocument(kind=kind, name=name, spec=spec,
                        grid={axis: list(values)
                              for axis, values in grid.items()},
                        run=dict(run))


def _check_run_key(kind: str, key: str, where: str) -> None:
    if key not in RUN_KEYS[kind]:
        raise SpecError(f"{where}: unknown run option {key!r} for kind "
                        f"{kind!r} (known: {', '.join(RUN_KEYS[kind])})")


def load_yaml_document(path: str) -> SpecDocument:
    """Parse one sweep document from a YAML file."""
    yaml = _require_yaml()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = yaml.safe_load(handle)
    except OSError as exc:
        raise SpecError(f"cannot read spec {path!r}: {exc}")
    except yaml.YAMLError as exc:
        raise SpecError(f"{path}: not valid YAML: {exc}")
    return parse_document(raw, source=path)


def dump_yaml_document(document: SpecDocument) -> str:
    """The YAML text form of a document (inverse of :func:`load_yaml_document`).

    Key order is preserved (``sort_keys=False``) so a document survives a
    load → dump → load cycle with its grid axes — and therefore its expansion
    order — intact.
    """
    yaml = _require_yaml()
    return yaml.safe_dump(document.to_mapping(), sort_keys=False,
                          default_flow_style=False)


# --------------------------------------------------------------------- #
# Grid expansion and compilation
# --------------------------------------------------------------------- #

def _apply_override(spec: Any, dotted: str, value: Any, where: str) -> None:
    """Set ``spec[...path...] = value`` along a dotted path, creating
    intermediate mappings as needed (``head_mma.type`` on a spec whose
    ``head_mma`` is ``None``) and indexing lists by integer segments
    (``ports.0.scheme``)."""
    parts = dotted.split(".")
    target = spec
    for depth, part in enumerate(parts[:-1]):
        prefix = ".".join(parts[:depth + 1])
        if isinstance(target, list):
            try:
                index = int(part)
                target = target[index]
            except (ValueError, IndexError):
                raise SpecError(f"{where}: path segment {prefix!r} must be "
                                f"a valid index into a list of {len(target)}")
            continue
        if not isinstance(target, dict):
            raise SpecError(f"{where}: path segment {prefix!r} lands on a "
                            f"{type(target).__name__}, not a mapping")
        nxt = target.get(part)
        if nxt is None:
            nxt = {}
            target[part] = nxt
        target = nxt
    leaf = parts[-1]
    if isinstance(target, list):
        try:
            target[int(leaf)] = value
        except (ValueError, IndexError):
            raise SpecError(f"{where}: path segment {dotted!r} must be a "
                            f"valid index into a list of {len(target)}")
    elif isinstance(target, dict):
        target[leaf] = value
    else:
        raise SpecError(f"{where}: path {dotted!r} lands on a "
                        f"{type(target).__name__}, not a mapping")


def _canonicalise(kind: str, spec: Mapping[str, Any],
                  where: str) -> Dict[str, Any]:
    """Round the spec through its dataclass and eagerly build every component.

    Returns the canonical ``to_spec()`` form — the JSON shape that is a
    fixed point of ``from_spec``/``to_spec``, which is what makes the
    "compiled specs round-trip bit-identically" guarantee hold by
    construction.
    """
    cls = Scenario if kind == "scenario" else SwitchScenario
    try:
        built = cls.from_spec(spec)
    except ReproError as exc:
        raise SpecError(f"{where}: {exc}")
    try:
        if kind == "scenario":
            built.build_buffer()
            built.build_arrivals()
            built.build_arbiter()
        else:
            from repro.switch.model import port_template
            from repro.switch.traffic import build_ingress_traffic

            built.build_fabric()
            build_ingress_traffic(built.traffic, built.num_ports, 0,
                                  built.port_seed(0))
            port_template(built, 0).build_buffer()
    except ReproError as exc:
        raise SpecError(f"{where}: {exc}")
    except (TypeError, ValueError) as exc:
        # Component constructors raise plain TypeError/ValueError on bad
        # params; at compile time that is a spec-authoring error.
        raise SpecError(f"{where}: invalid component parameters: {exc}")
    return built.to_spec()


def expand_document(document: SpecDocument) -> List[CompiledPoint]:
    """Expand the grid into validated, canonicalised points.

    The cartesian product runs in grid-key order (first axis varies
    slowest); with no grid, the single point keeps the document name.
    Expanded points are named ``<name>-g<index>``.
    """
    axes = list(document.grid.items())
    points: List[CompiledPoint] = []
    combos = itertools.product(*(range(len(values)) for _, values in axes)) \
        if axes else [()]
    for index, combo in enumerate(combos):
        spec = json.loads(json.dumps(dict(document.spec)))
        run = dict(document.run)
        coordinates: Dict[str, Any] = {}
        for (axis, values), position in zip(axes, combo):
            value = values[position]
            where = f"grid[{axis!r}][{position}]"
            if axis.startswith("run."):
                run[axis[len("run."):]] = value
            else:
                _apply_override(spec, axis, value, where)
            coordinates[axis] = value
        name = f"{document.name}-g{index:03d}" if axes else document.name
        spec["name"] = name
        spec.setdefault("description", "")
        where = (f"grid point {index} "
                 f"({', '.join(f'{a}={v!r}' for a, v in coordinates.items())})"
                 if axes else "spec")
        canonical = _canonicalise(document.kind, spec, where)
        trace_emit("grid_point", name=name, kind=document.kind,
                   index=index,
                   axes={axis: value for axis, value in coordinates.items()})
        points.append(CompiledPoint(name=name, kind=document.kind,
                                    spec=canonical, run=run,
                                    axes=coordinates))
    obs = get_metrics()
    if obs is not None:
        obs.inc("sweep.documents_expanded")
        obs.inc("sweep.grid_points", len(points))
    return points


def compile_jobs(document: SpecDocument) -> Tuple[List[CompiledPoint], List[Job]]:
    """Expand a document and pair every point with its runnable job."""
    points = expand_document(document)
    return points, [point.job() for point in points]


# --------------------------------------------------------------------- #
# Result rendering
# --------------------------------------------------------------------- #

def render_sweep_results(points: Sequence[CompiledPoint],
                         results: Sequence[Any],
                         title: str = "") -> str:
    """One table row per grid point.

    Scenario points yield :class:`~repro.workloads.scenario.ScenarioResult`
    rows; switch points yield :class:`~repro.switch.model.SwitchReport`
    rows (their exact merged-percentile ``summary()``).  A point whose job
    was quarantined by a non-strict runner renders as a ``FAILED`` row, and
    the per-job provenance (kind, attempts, last error) is appended below
    the table — partial results are reported, never silently dropped.
    """
    from repro.analysis.report import format_table
    from repro.runner.sweep import JobFailure

    headers = ["name", "axes", "slots", "arrivals", "departures", "drops",
               "carried", "p50", "p99", "zero-miss"]
    rows = []
    failures = []
    for point, result in zip(points, results):
        axes = ", ".join(f"{a}={v!r}" for a, v in point.axes.items())
        if isinstance(result, JobFailure):
            failures.append(result)
            rows.append([point.name, axes, "-", "-", "-", "-", "-", "-", "-",
                         f"FAILED ({result.kind})"])
        elif point.kind == "scenario":
            rows.append([result.name, axes, result.slots, result.arrivals,
                         result.departures, result.drops,
                         result.carried_load, result.latency_p50,
                         result.latency_p99, result.zero_miss])
        else:
            summary = result.summary()
            rows.append([result.name, axes, summary["slots"],
                         summary["arrivals"], summary["departures"],
                         summary["drops"], summary["carried_load"],
                         summary["latency_p50"], summary["latency_p99"],
                         summary["zero_miss"]])
    text = format_table(headers, rows, title=title)
    if failures:
        text += "\n\n" + render_job_failures(failures)
    return text


def render_job_failures(failures: Sequence[Any]) -> str:
    """The per-job failure provenance block appended to partial reports."""
    lines = [f"{len(failures)} job(s) failed (partial results above):"]
    for failure in failures:
        lines.append(f"  - {failure.brief()}")
        if failure.traceback:
            last = failure.traceback.strip().splitlines()[-1]
            if last not in failure.error:
                lines.append(f"      {last}")
    lines.append("  (rerun with --strict to fail fast, --trace-out for the "
                 "full trace)")
    return "\n".join(lines)


__all__ = [
    "CompiledPoint",
    "SCENARIO_JOB_FUNC",
    "SWITCH_JOB_FUNC",
    "SpecDocument",
    "compile_jobs",
    "dump_yaml_document",
    "expand_document",
    "load_yaml_document",
    "parse_document",
    "render_job_failures",
    "render_sweep_results",
]
