"""The named scenario registry.

Scenarios registered here are what ``python -m repro scenario --list`` shows,
what the ``scenarios`` experiment sweeps, and what the fast-path equivalence
test checks.  The default suite deliberately spans the four workload families
the north-star asks for:

* **baseline** — uniform stochastic traffic;
* **bursty** — on/off trains, Markov-modulated sources, heavy-tailed
  (self-similar) bursts;
* **hotspot** — skewed queue popularity (static hot set and Zipf);
* **adversarial** — the Section 5 round-robin worst case and its
  parameterised generalisations;
* **replay** — a canned trace replayed deterministically.

Registering is open: downstream code can add its own scenarios with
:func:`register_scenario` and they immediately appear in the CLI and sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.traffic.arrivals import BurstyArrivals
from repro.workloads.scenario import Scenario

_REGISTRY: Dict[str, Scenario] = {}

#: Buffer configurations shared by the default suite (small enough that the
#: whole suite simulates in seconds, large enough to exercise every stage).
_RADS_BUFFER = {"num_queues": 8, "granularity": 4}
_CFDS_BUFFER = {"num_queues": 8, "dram_access_slots": 8, "granularity": 2,
                "num_banks": 32}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (``replace=True`` to overwrite)."""
    if not replace and scenario.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown scenario {name!r} (known: {known})")


def scenario_names(tag: Optional[str] = None) -> List[str]:
    """Sorted names of all registered scenarios (optionally filtered by tag)."""
    return sorted(name for name, scn in _REGISTRY.items()
                  if tag is None or tag in scn.tags)


def all_scenarios() -> List[Scenario]:
    """All registered scenarios, in name order."""
    return [_REGISTRY[name] for name in scenario_names()]


# --------------------------------------------------------------------- #
# The default suite
# --------------------------------------------------------------------- #

def _canonical_trace_pattern(num_slots: int = 2000, num_queues: int = 8,
                             seed: int = 1234) -> List[Optional[int]]:
    """A deterministic recorded arrival sequence for the replay scenario.

    Generated once at import from a seeded bursty source, so the pattern is a
    plain (JSON-serialisable) list and identical in every process — the same
    property an externally captured trace file would have.
    """
    source = BurstyArrivals(num_queues, mean_burst_cells=12, load=0.85, seed=seed)
    return [source.next_arrival(slot) for slot in range(num_slots)]


def _default_scenarios() -> List[Scenario]:
    trace_pattern = _canonical_trace_pattern()
    return [
        Scenario(
            name="uniform-bernoulli",
            description="Uniform Bernoulli arrivals at 85% load, random service",
            scheme="rads", buffer=_RADS_BUFFER,
            arrivals={"type": "bernoulli", "params": {"num_queues": 8, "load": 0.85}},
            arbiter={"type": "random", "params": {"num_queues": 8, "load": 0.9}},
            num_slots=2500, seed=7, tags=("baseline",)),
        Scenario(
            name="bursty-trains",
            description="Geometric on/off packet trains (mean 24 cells)",
            scheme="rads", buffer=_RADS_BUFFER,
            arrivals={"type": "bursty",
                      "params": {"num_queues": 8, "mean_burst_cells": 24.0,
                                 "load": 0.9}},
            arbiter={"type": "oldest_cell", "params": {"num_queues": 8}},
            num_slots=2500, seed=11, tags=("bursty",)),
        Scenario(
            name="markov-onoff",
            description="Superposed Markov-modulated on/off sources",
            scheme="cfds", buffer=_CFDS_BUFFER,
            arrivals={"type": "markov_on_off",
                      "params": {"num_queues": 8, "mean_on_slots": 30.0,
                                 "mean_off_slots": 90.0, "peak_rate": 0.9}},
            arbiter={"type": "longest_queue", "params": {"num_queues": 8}},
            num_slots=2500, seed=13, tags=("bursty",)),
        Scenario(
            name="pareto-selfsimilar",
            description="Heavy-tailed (Pareto 1.4) bursts, self-similar load",
            scheme="rads", buffer=_RADS_BUFFER,
            arrivals={"type": "pareto",
                      "params": {"num_queues": 8, "alpha": 1.4,
                                 "min_burst_cells": 4, "load": 0.8}},
            arbiter={"type": "oldest_cell", "params": {"num_queues": 8}},
            num_slots=2500, seed=17, tags=("bursty", "heavy-tail")),
        Scenario(
            name="zipf-hotspot",
            description="Zipf(1.2) queue popularity — elephants and mice",
            scheme="cfds", buffer=_CFDS_BUFFER,
            arrivals={"type": "zipf",
                      "params": {"num_queues": 8, "exponent": 1.2, "load": 0.85}},
            arbiter={"type": "random", "params": {"num_queues": 8, "load": 0.95}},
            num_slots=2500, seed=19, tags=("hotspot",)),
        Scenario(
            name="hotspot-static",
            description="80% of traffic on two hot queues",
            scheme="rads", buffer=_RADS_BUFFER,
            arrivals={"type": "hotspot",
                      "params": {"num_queues": 8, "hot_queues": [0, 1],
                                 "hot_fraction": 0.8, "load": 0.9}},
            arbiter={"type": "oldest_cell", "params": {"num_queues": 8}},
            num_slots=2500, seed=23, tags=("hotspot",)),
        Scenario(
            name="adversary-roundrobin",
            description="Section 5 worst case: full load, round-robin drain",
            scheme="rads", buffer=_RADS_BUFFER,
            arrivals={"type": "round_robin", "params": {"num_queues": 8, "load": 1.0}},
            arbiter={"type": "round_robin_adversary", "params": {"num_queues": 8}},
            num_slots=3000, seed=0, tags=("adversarial",)),
        Scenario(
            name="adversary-strided",
            description="Strided adversary (stride 3, bursts of 2) on CFDS",
            scheme="cfds", buffer=_CFDS_BUFFER,
            arrivals={"type": "round_robin", "params": {"num_queues": 8, "load": 1.0}},
            arbiter={"type": "strided_adversary",
                     "params": {"num_queues": 8, "stride": 3, "burst": 2}},
            num_slots=3000, seed=0, tags=("adversarial",)),
        Scenario(
            name="adversary-intermittent",
            description="Bursty fill with phased service stalls (backpressure)",
            scheme="cfds", buffer=_CFDS_BUFFER,
            arrivals={"type": "bursty",
                      "params": {"num_queues": 8, "mean_burst_cells": 16.0,
                                 "load": 0.7}},
            arbiter={"type": "intermittent",
                     "params": {"inner": {"type": "oldest_cell",
                                          "params": {"num_queues": 8}},
                                "on_slots": 40, "off_slots": 24}},
            num_slots=2500, seed=29, tags=("adversarial", "bursty")),
        Scenario(
            name="trace-replay",
            description="Deterministic replay of a canned bursty trace",
            scheme="rads", buffer=_RADS_BUFFER,
            arrivals={"type": "trace", "params": {"pattern": trace_pattern}},
            arbiter={"type": "oldest_cell", "params": {"num_queues": 8}},
            num_slots=len(trace_pattern) + 200, seed=0, tags=("replay",)),
    ]


for _scenario in _default_scenarios():
    register_scenario(_scenario)
del _scenario
