"""Declarative workloads: scenarios, generators, trace I/O.

This package is the layer between the traffic primitives
(:mod:`repro.traffic`) and the experiment runner (:mod:`repro.runner`):

* :mod:`repro.workloads.scenario` — the :class:`Scenario` dataclass (buffer
  scheme + arrival process + arbiter + duration + seed) with a
  JSON-spec round-trip, and the cacheable :class:`ScenarioResult`;
* :mod:`repro.workloads.registry` — the named scenario registry behind
  ``python -m repro scenario`` and the ``scenarios`` experiment sweep;
* :mod:`repro.workloads.spec_yaml` — the YAML sweep front end: one base
  spec plus a ``grid:`` block compiles to validated, canonicalised
  :class:`~repro.runner.jobs.Job` grids (``--from-spec``);
* :mod:`repro.workloads.fuzz` — the seeded generative spec fuzzer behind
  ``python -m repro fuzz``: adversarial random scenario/switch specs run
  differentially on every engine, monolithic and streamed;
* :mod:`repro.workloads.traceio` — compact NDJSON and binary trace formats
  so any run can be recorded once and replayed deterministically.
"""

from repro.workloads.scenario import (
    ARBITER_TYPES,
    ARRIVAL_TYPES,
    MMA_TYPES,
    SCHEMES,
    Scenario,
    ScenarioResult,
    run_scenario_spec,
)
from repro.workloads.registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workloads.traceio import load_trace, save_trace

__all__ = [
    "ARBITER_TYPES",
    "ARRIVAL_TYPES",
    "MMA_TYPES",
    "SCHEMES",
    "Scenario",
    "ScenarioResult",
    "run_scenario_spec",
    "all_scenarios",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "load_trace",
    "save_trace",
]
