"""Compact on-disk trace formats: NDJSON and binary.

The legacy ``TrafficTrace.save``/``load`` text format (one ``arrival,request``
line per slot) stays for hand-edited regression inputs; this module adds the
two formats a workload harness actually needs:

* **NDJSON** — a self-describing header object on the first line, then one
  compact ``[arrival, request]`` array per slot.  Greppable, diffable, and
  streamable; the header carries arbitrary metadata (scenario name, seed,
  queue count) so a trace is interpretable years later.
* **binary** — a ``RTRC`` magic, a JSON metadata header, then two unsigned
  16-bit ints per slot (``0xFFFF`` encodes "no event").  Four bytes per slot,
  roughly 3x smaller than NDJSON, for long captures.

Both round-trip exactly: ``load_trace(save_trace(t)) == t`` event for event,
which is what makes "record once, replay against every buffer variant"
deterministic.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.traffic.trace import TrafficTrace

#: Magic prefix of the binary format.
BINARY_MAGIC = b"RTRC"
#: Current version of both formats.
FORMAT_VERSION = 1
#: Format tag carried in the NDJSON/binary headers.
FORMAT_NAME = "repro-trace"
#: Binary encoding of "no event" (limits queue ids to 0..65534).
_NONE_U16 = 0xFFFF


def save_trace(trace: TrafficTrace,
               path,
               *,
               format: str = "binary",
               metadata: Optional[Mapping[str, Any]] = None) -> None:
    """Write ``trace`` to ``path`` in the requested format.

    Args:
        trace: the in-memory trace to persist.
        path: destination file.
        format: ``"binary"`` (default) or ``"ndjson"``.
        metadata: JSON-serialisable extras stored in the header (scenario
            name, seed, queue count, ...).
    """
    meta = dict(metadata or {})
    try:
        json.dumps(meta)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"trace metadata is not JSON-serialisable: {exc}")
    if format == "binary":
        _save_binary(trace, Path(path), meta)
    elif format == "ndjson":
        _save_ndjson(trace, Path(path), meta)
    else:
        raise ConfigurationError(
            f"unknown trace format {format!r} (known: binary, ndjson)")


def load_trace(path) -> Tuple[TrafficTrace, Dict[str, Any]]:
    """Read a trace written by :func:`save_trace`, sniffing the format.

    Returns:
        ``(trace, metadata)`` — the events and the header metadata dict.
    """
    raw = Path(path).read_bytes()
    if raw.startswith(BINARY_MAGIC):
        return _load_binary(raw, path)
    return _load_ndjson(raw, path)


# --------------------------------------------------------------------- #
# NDJSON
# --------------------------------------------------------------------- #

def _save_ndjson(trace: TrafficTrace, path: Path, meta: Dict[str, Any]) -> None:
    header = {"format": FORMAT_NAME, "version": FORMAT_VERSION,
              "slots": len(trace), "metadata": meta}
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for arrival, request in trace:
        lines.append(json.dumps([arrival, request], separators=(",", ":")))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _load_ndjson(raw: bytes, path) -> Tuple[TrafficTrace, Dict[str, Any]]:
    lines = raw.decode("utf-8").splitlines()
    if not lines:
        raise ConfigurationError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: not an NDJSON trace: {exc}")
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise ConfigurationError(f"{path}: missing {FORMAT_NAME!r} header")
    if header.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported trace version {header.get('version')!r}")
    trace = TrafficTrace()
    for line_number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        event = json.loads(line)
        if not isinstance(event, list) or len(event) != 2:
            raise ConfigurationError(
                f"{path}:{line_number}: expected an [arrival, request] pair")
        trace.append(_check_id(event[0], path, line_number),
                     _check_id(event[1], path, line_number))
    declared = header.get("slots")
    if declared is not None and declared != len(trace):
        raise ConfigurationError(
            f"{path}: header declares {declared} slots, file has {len(trace)}")
    return trace, dict(header.get("metadata", {}))


def _check_id(value: Any, path, line_number: int) -> Optional[int]:
    if value is None or (isinstance(value, int) and value >= 0):
        return value
    raise ConfigurationError(
        f"{path}:{line_number}: queue id must be null or a non-negative int, "
        f"got {value!r}")


# --------------------------------------------------------------------- #
# Binary
# --------------------------------------------------------------------- #

def _save_binary(trace: TrafficTrace, path: Path, meta: Dict[str, Any]) -> None:
    header = json.dumps({"format": FORMAT_NAME, "version": FORMAT_VERSION,
                         "metadata": meta},
                        sort_keys=True, separators=(",", ":")).encode("utf-8")
    flat = []
    for arrival, request in trace:
        flat.append(_encode_u16(arrival))
        flat.append(_encode_u16(request))
    payload = struct.pack(f"<{len(flat)}H", *flat)
    with open(path, "wb") as handle:
        handle.write(BINARY_MAGIC)
        handle.write(struct.pack("<BI", FORMAT_VERSION, len(header)))
        handle.write(header)
        handle.write(struct.pack("<I", len(trace)))
        handle.write(payload)


def _encode_u16(value: Optional[int]) -> int:
    if value is None:
        return _NONE_U16
    if not 0 <= value < _NONE_U16:
        raise ConfigurationError(
            f"queue id {value} does not fit the binary trace format "
            f"(0..{_NONE_U16 - 1}); use format='ndjson'")
    return value


def _load_binary(raw: bytes, path) -> Tuple[TrafficTrace, Dict[str, Any]]:
    offset = len(BINARY_MAGIC)
    try:
        version, header_len = struct.unpack_from("<BI", raw, offset)
        offset += struct.calcsize("<BI")
        header = json.loads(raw[offset:offset + header_len].decode("utf-8"))
        offset += header_len
        (count,) = struct.unpack_from("<I", raw, offset)
        offset += struct.calcsize("<I")
        flat = struct.unpack_from(f"<{2 * count}H", raw, offset)
        offset += 2 * count * 2
    except (struct.error, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"{path}: corrupt binary trace: {exc}")
    if version != FORMAT_VERSION:
        raise ConfigurationError(f"{path}: unsupported trace version {version}")
    if offset != len(raw):
        raise ConfigurationError(f"{path}: {len(raw) - offset} trailing bytes")
    trace = TrafficTrace()
    for i in range(count):
        arrival, request = flat[2 * i], flat[2 * i + 1]
        trace.append(None if arrival == _NONE_U16 else arrival,
                     None if request == _NONE_U16 else request)
    return trace, dict(header.get("metadata", {}))
