"""Seeded generative spec fuzzer for the differential harness.

The hand-curated differential suite (``tests/sim/test_differential.py``)
draws ~50 random single-port configs from one frozen seed.  This module is
the *generative* extension of that net: :func:`sample_scenario` and
:func:`sample_switch_scenario` draw structurally valid but adversarial specs
— heavy-tailed WAN/datacenter mixes, lossy bounded-DRAM configs, custom-MMA
paths, 64–256-port incast/permutation switches — and :func:`run_case` runs
every sampled spec through every available engine (the three pure-python
engines plus, when the optional dependency is installed, ``numpy``),
monolithic *and* streamed, with random chunk/warmup/checkpoint boundaries,
asserting bit-identical reports.

Everything is a pure function of ``(master_seed, index)``: a diverging case
is dumped as a replayable JSON artifact carrying exactly those coordinates
plus its spec, and ``python -m repro fuzz --replay <artifact>`` re-runs the
identical legs.  An engine *error* is part of the compared behaviour — all
legs must either produce the same report or raise the same error; a config
that crashes one engine and not another is a divergence, not a crash.

This is the check every perf backend merges against: first make the
fuzzer pass, then optimise.  The numpy backend (and its optional compiled
span kernel) earned its place in ``ENGINES`` exactly this way.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError, SpecError
from repro.obs.metrics import get_metrics
from repro.obs.trace import emit as trace_emit
from repro.switch.scenario import SwitchScenario
from repro.workloads.scenario import Scenario

#: Default master seed — frozen so CI and a local repro draw the same cases.
DEFAULT_MASTER_SEED = 20260807

from repro.sim.numpy_engine import NUMPY_AVAILABLE

#: Engines whose reports must agree bit for bit.  The numpy backend joins
#: the net only when the optional dependency is importable — the three
#: pure-python engines keep the fuzzer meaningful without it.
ENGINES = (("reference", "batched", "array", "numpy")
           if NUMPY_AVAILABLE else ("reference", "batched", "array"))

#: Per-case seed spread (a large prime, mirroring the streaming tests).
_CASE_STRIDE = 1_000_003

#: Every third case is a switch (index 2, 5, 8, ...): a deterministic ≥33%
#: switch fraction rather than a probabilistic one, so the coverage floor
#: ("≥30% of samples exercise ≥64-port switches") holds for every budget.
SWITCH_EVERY = 3


def case_rng(master_seed: int, index: int) -> random.Random:
    """The RNG that fully determines case ``index`` (spec *and* run geometry)."""
    return random.Random(master_seed * _CASE_STRIDE + index)


# --------------------------------------------------------------------- #
# Samplers
# --------------------------------------------------------------------- #

def _sample_arrivals(rng: random.Random, num_queues: int) -> Dict[str, Any]:
    kind = rng.choice(["bernoulli", "bursty", "hotspot", "markov_on_off",
                       "pareto", "pareto", "round_robin", "zipf", "zipf",
                       "deterministic"])
    if kind == "bernoulli":
        params: Dict[str, Any] = {"num_queues": num_queues,
                                  "load": rng.choice([0.4, 0.7, 0.95, 1.0])}
    elif kind == "bursty":
        params = {"num_queues": num_queues,
                  "mean_burst_cells": rng.choice([2.0, 16.0, 48.0]),
                  "load": rng.choice([0.6, 0.9, 1.0])}
    elif kind == "hotspot":
        hot = rng.sample(range(num_queues), k=max(1, num_queues // 8))
        params = {"num_queues": num_queues, "hot_queues": sorted(hot),
                  "hot_fraction": rng.choice([0.7, 0.95]),
                  "load": rng.choice([0.6, 0.95])}
    elif kind == "markov_on_off":
        # Long off-periods against short saturated on-periods: the bursty
        # long-range-dependent shape of WAN traces.
        params = {"num_queues": num_queues,
                  "mean_on_slots": rng.choice([4.0, 12.0, 80.0]),
                  "mean_off_slots": rng.choice([8.0, 100.0, 300.0]),
                  "peak_rate": rng.choice([0.8, 1.0])}
    elif kind == "pareto":
        # Heavy tails down to alpha ~1.1 (barely-finite mean): the worst of
        # the self-similar WAN models the paper's buffers must absorb.
        params = {"num_queues": num_queues,
                  "alpha": rng.choice([1.1, 1.3, 1.9]),
                  "min_burst_cells": rng.choice([1, 4, 8]),
                  "load": rng.choice([0.5, 0.8, 0.95])}
    elif kind == "round_robin":
        params = {"num_queues": num_queues, "load": rng.choice([0.8, 1.0])}
    elif kind == "zipf":
        params = {"num_queues": num_queues,
                  "exponent": rng.choice([0.9, 1.4, 2.5]),
                  "load": rng.choice([0.7, 1.0])}
    else:  # deterministic: a canned random pattern, cycled
        length = rng.randint(30, 120)
        pattern = [rng.randrange(num_queues) if rng.random() < 0.75 else None
                   for _ in range(length)]
        if all(p is None for p in pattern):
            pattern[0] = 0
        params = {"pattern": pattern}
    return {"type": kind, "params": params}


def _sample_arbiter(rng: random.Random,
                    num_queues: int) -> Optional[Dict[str, Any]]:
    kind = rng.choice(["longest_queue", "oldest_cell", "random",
                       "round_robin_adversary", "strided_adversary",
                       "intermittent", None])
    if kind is None:
        return None
    if kind == "random":
        params: Dict[str, Any] = {"num_queues": num_queues,
                                  "load": rng.choice([0.6, 0.9, 1.0])}
    elif kind == "strided_adversary":
        params = {"num_queues": num_queues,
                  "stride": rng.randint(1, num_queues),
                  "burst": rng.randint(1, 4)}
    elif kind == "intermittent":
        params = {"inner": {"type": rng.choice(["oldest_cell",
                                                "longest_queue"]),
                            "params": {"num_queues": num_queues}},
                  "on_slots": rng.randint(1, 40),
                  "off_slots": rng.randint(0, 25)}
    else:
        params = {"num_queues": num_queues}
    return {"type": kind, "params": params}


def _sample_buffer(rng: random.Random, scheme: str,
                   num_queues: int) -> Dict[str, Any]:
    if scheme == "rads":
        buffer: Dict[str, Any] = {"num_queues": num_queues,
                                  "granularity": rng.choice([1, 2, 3, 4, 6])}
        if rng.random() < 0.25:
            # Lossy mode: bounded DRAM with strictness off — drops are legal
            # and every engine must agree on each dropped cell.
            buffer["strict"] = False
            buffer["dram_cells"] = rng.choice([16, 64, 256])
    else:
        b = rng.choice([1, 2, 4])
        big_b = b * rng.choice([2, 4])
        buffer = {"num_queues": num_queues,
                  "dram_access_slots": big_b,
                  "granularity": b,
                  "num_banks": (big_b // b) * rng.choice([2, 4, 8])}
    return buffer


def _sample_head_mma(rng: random.Random) -> Optional[Dict[str, Any]]:
    roll = rng.random()
    if roll < 0.60:
        return None  # stock policy (ECQF + fallback), the engines' fast path
    if roll < 0.80:
        # Explicit MDQF: routes every engine through its generic MMA path.
        return {"type": "mdqf", "params": {}}
    # Explicit ECQF; half the time without the most-deficit fallback, which
    # is off the array engine's fast path even though the type matches.
    return {"type": "ecqf",
            "params": {"fallback_to_most_deficit": rng.random() < 0.5}}


def sample_scenario(rng: random.Random, index: int = 0) -> Dict[str, Any]:
    """Draw one structurally valid single-port scenario spec (canonical
    JSON form)."""
    scheme = rng.choice(["rads", "cfds"])
    num_queues = rng.choice([1, 2, 4, 8, 8, 16, 32, 64])
    scenario = Scenario(
        name=f"fuzz-{index}",
        description="generative fuzzer case",
        scheme=scheme,
        buffer=_sample_buffer(rng, scheme, num_queues),
        arrivals=(_sample_arrivals(rng, num_queues)
                  if rng.random() > 0.04 else None),
        arbiter=_sample_arbiter(rng, num_queues),
        num_slots=rng.randint(150, 600),
        seed=rng.randrange(2 ** 16),
        head_mma=_sample_head_mma(rng),
    )
    return scenario.to_spec()


def _sample_ingress_traffic(rng: random.Random,
                            num_ports: int) -> Dict[str, Any]:
    kind = rng.choice(["incast", "incast", "permutation", "bernoulli",
                       "bursty", "zipf", "hotspot", "markov_on_off"])
    if kind == "incast":
        # Synchronised fan-in at one victim egress: N cells per slot aimed
        # at a port that can accept one — the worst case the crossbar admits.
        period = rng.choice([32, 64, 128])
        params: Dict[str, Any] = {
            "victim": rng.randrange(num_ports),
            "period": period,
            "burst": rng.randint(2, max(2, period // 4)),
            "load": rng.choice([0.2, 0.4, 0.6]),
        }
    elif kind == "permutation":
        params = {"shift": rng.randrange(1, num_ports),
                  "load": rng.choice([0.7, 0.9, 1.0])}
    elif kind == "bernoulli":
        params = {"load": rng.choice([0.5, 0.8, 0.95])}
    elif kind == "bursty":
        params = {"mean_burst_cells": rng.choice([4.0, 16.0]),
                  "load": rng.choice([0.5, 0.8])}
    elif kind == "zipf":
        params = {"exponent": rng.choice([1.0, 1.8]),
                  "load": rng.choice([0.6, 0.9])}
    elif kind == "hotspot":
        hot = rng.sample(range(num_ports), k=max(1, num_ports // 16))
        params = {"hot_queues": sorted(hot),
                  "hot_fraction": rng.choice([0.7, 0.9]),
                  "load": rng.choice([0.5, 0.8])}
    else:  # markov_on_off
        params = {"mean_on_slots": rng.choice([6.0, 40.0]),
                  "mean_off_slots": rng.choice([20.0, 120.0]),
                  "peak_rate": 1.0}
    # num_queues / ingress / per-ingress seeds are injected by the switch
    # layer (the destination space is the port count), so the sampled spec
    # stays valid under --ports overrides.
    return {"type": kind, "params": params}


def _sample_port_template(rng: random.Random) -> Dict[str, Any]:
    scheme = rng.choice(["rads", "rads", "cfds"])
    if scheme == "rads":
        buffer: Dict[str, Any] = {"granularity": rng.choice([1, 2, 4])}
        if rng.random() < 0.2:
            buffer["strict"] = False
            buffer["dram_cells"] = rng.choice([256, 1024])
    else:
        b = rng.choice([1, 2])
        big_b = b * 2
        buffer = {"dram_access_slots": big_b, "granularity": b,
                  "num_banks": (big_b // b) * rng.choice([2, 4])}
    arbiter_kind = rng.choice(["oldest_cell", "longest_queue", "random",
                               "round_robin_adversary", None])
    arbiter = (None if arbiter_kind is None
               else {"type": arbiter_kind,
                     "params": ({"load": 0.9} if arbiter_kind == "random"
                                else {})})
    return {"scheme": scheme, "buffer": buffer, "arbiter": arbiter,
            "head_mma": _sample_head_mma(rng)}


def sample_switch_scenario(rng: random.Random, index: int = 0) -> Dict[str, Any]:
    """Draw one valid multi-port switch spec, always ≥ 64 ports.

    Slot budgets shrink as ports grow so a 256-port draw stays affordable —
    the per-slot fabric work is O(ports²) across engines.
    """
    num_ports = rng.choices([64, 96, 128, 256],
                            weights=[0.60, 0.20, 0.15, 0.05])[0]
    slot_range = {64: (120, 240), 96: (100, 170),
                  128: (80, 140), 256: (50, 90)}[num_ports]
    templates = [_sample_port_template(rng)
                 for _ in range(rng.choice([1, 1, 2]))]
    num_slots = rng.randint(*slot_range)
    if any(t["scheme"] == "cfds" for t in templates):
        # CFDS ports cost ~3x RADS per slot on the reference engine; halve
        # the horizon so heavy draws stay inside the per-case budget.
        num_slots = max(50, num_slots // 2)
    scenario = SwitchScenario(
        name=f"fuzz-switch-{index}",
        description="generative fuzzer case",
        num_ports=num_ports,
        traffic=_sample_ingress_traffic(rng, num_ports),
        fabric={"type": rng.choice(["islip", "random", "priority"]),
                "params": {}},
        ports=tuple(templates),
        num_slots=num_slots,
        seed=rng.randrange(2 ** 16),
    )
    return scenario.to_spec()


# --------------------------------------------------------------------- #
# Cases and execution
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class FuzzCase:
    """One sampled spec plus the coordinates that regenerate it exactly."""

    master_seed: int
    index: int
    kind: str  # "scenario" | "switch"
    spec: Mapping[str, Any]

    def repro_command(self, stream: bool = False,
                      artifact: Optional[str] = None,
                      faults: bool = False) -> str:
        """The CLI line that re-runs exactly this case."""
        if artifact is not None:
            base = f"python -m repro fuzz --replay {artifact}"
        else:
            base = (f"python -m repro fuzz --seeds {self.index + 1} "
                    f"--master-seed {self.master_seed}")
        return (base + (" --stream" if stream else "")
                + (" --faults" if faults else ""))

    def to_json(self) -> Dict[str, Any]:
        return {"format": "repro-fuzz-case", "version": 1,
                "master_seed": self.master_seed, "index": self.index,
                "kind": self.kind,
                "spec": json.loads(json.dumps(dict(self.spec)))}

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "FuzzCase":
        if (not isinstance(document, Mapping)
                or document.get("format") != "repro-fuzz-case"):
            raise SpecError("not a repro fuzz-case artifact (missing "
                            "format: repro-fuzz-case)")
        try:
            return cls(master_seed=document["master_seed"],
                       index=document["index"], kind=document["kind"],
                       spec=document["spec"])
        except KeyError as exc:
            raise SpecError(f"fuzz-case artifact is missing key {exc}")


@dataclass(frozen=True)
class Divergence:
    """One leg that disagreed with its baseline."""

    leg: str
    field: str
    detail: str

    def to_json(self) -> Dict[str, str]:
        return {"leg": self.leg, "field": self.field, "detail": self.detail}


def make_case(master_seed: int, index: int) -> FuzzCase:
    """Case ``index`` of the run seeded with ``master_seed`` (pure function)."""
    rng = case_rng(master_seed, index)
    if index % SWITCH_EVERY == SWITCH_EVERY - 1:
        return FuzzCase(master_seed, index, "switch",
                        sample_switch_scenario(rng, index))
    return FuzzCase(master_seed, index, "scenario",
                    sample_scenario(rng, index))


def _outcome(fn: Callable[[], Any]) -> Tuple[str, Any]:
    """Run one leg: ``("ok", report)`` or ``("error", "Type: message")``.

    An agreed-upon error (same type, same message on every leg) is valid
    behaviour; only *disagreement* is a divergence.
    """
    try:
        return ("ok", fn())
    except ReproError as exc:
        return ("error", f"{type(exc).__name__}: {exc}")


def _clip(value: Any, limit: int = 300) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def _compare_reports(leg: str, outcome: Tuple[str, Any],
                     baseline: Tuple[str, Any],
                     include_trace: bool) -> List[Divergence]:
    if outcome[0] != baseline[0]:
        return [Divergence(leg, "outcome",
                           f"baseline {baseline[0]} ({_clip(baseline[1])}) "
                           f"vs {outcome[0]} ({_clip(outcome[1])})")]
    if outcome[0] == "error":
        if outcome[1] != baseline[1]:
            return [Divergence(leg, "error",
                               f"{baseline[1]!r} vs {outcome[1]!r}")]
        return []
    report, reference = outcome[1], baseline[1]
    out: List[Divergence] = []
    fields = [("throughput", lambda r: r.throughput),
              ("latency", lambda r: r.latency),
              ("buffer_result", lambda r: r.buffer_result)]
    if include_trace:
        fields.append(("trace", lambda r: None if r.trace is None
                       else r.trace.events))
    for name, view in fields:
        if view(report) != view(reference):
            out.append(Divergence(leg, name,
                                  f"{_clip(view(reference))} vs "
                                  f"{_clip(view(report))}"))
    return out


def _compare_switch(leg: str, outcome: Tuple[str, Any],
                    baseline: Tuple[str, Any]) -> List[Divergence]:
    if outcome[0] != baseline[0]:
        return [Divergence(leg, "outcome",
                           f"baseline {baseline[0]} ({_clip(baseline[1])}) "
                           f"vs {outcome[0]} ({_clip(outcome[1])})")]
    if outcome[0] == "error":
        if outcome[1] != baseline[1]:
            return [Divergence(leg, "error",
                               f"{baseline[1]!r} vs {outcome[1]!r}")]
        return []
    report, reference = outcome[1], baseline[1]
    out: List[Divergence] = []
    if report.fabric != reference.fabric:
        out.append(Divergence(leg, "fabric",
                              f"{_clip(reference.fabric)} vs "
                              f"{_clip(report.fabric)}"))
    for port, (got, want) in enumerate(zip(report.ports, reference.ports)):
        if got != want:
            out.append(Divergence(leg, f"port[{port}]",
                                  f"{_clip(want)} vs {_clip(got)}"))
            break  # one diverging port identifies the case; keep it short
    return out


def _run_scenario_case(case: FuzzCase, stream: bool,
                       rng: random.Random) -> List[Divergence]:
    from repro.sim.streaming import StreamingSimulation, resume_stream

    scenario = Scenario.from_spec(case.spec)
    drain = bool(rng.getrandbits(1))
    divergences: List[Divergence] = []

    # Leg 1 — monolithic, all engines, full report incl. trace.
    outcomes = {}
    for engine in ENGINES:
        outcomes[engine] = _outcome(
            lambda engine=engine: scenario.build_simulation(record_trace=True)
            .run(scenario.num_slots, drain=drain, engine=engine))
    baseline = outcomes["reference"]
    for engine in ENGINES[1:]:
        divergences += _compare_reports(f"monolithic-{engine}",
                                        outcomes[engine], baseline,
                                        include_trace=True)

    # Leg 2 — streamed with random chunk boundaries, every engine, vs the
    # monolithic reference (warmup 0 ⇒ bit-identical, trace included).
    for engine in ENGINES:
        chunk = rng.randint(1, scenario.num_slots + 17)
        outcome = _outcome(
            lambda engine=engine, chunk=chunk: StreamingSimulation(
                scenario.build_simulation(record_trace=True),
                scenario.num_slots, engine=engine, drain=drain,
                chunk_slots=chunk).run())
        divergences += _compare_reports(f"stream-{engine}-chunk{chunk}",
                                        outcome, baseline,
                                        include_trace=True)

    if not stream:
        return divergences

    # Leg 3 (--stream) — a random warmup offset must yield one well-defined
    # report across engines and chunkings (trace no longer comparable to
    # the monolithic run, so engines are compared to each other).
    warmup = rng.randint(0, scenario.num_slots)
    warm_baseline = None
    for engine in ENGINES:
        chunk = rng.randint(1, scenario.num_slots + 17)
        outcome = _outcome(
            lambda engine=engine, chunk=chunk: StreamingSimulation(
                scenario.build_simulation(), scenario.num_slots,
                engine=engine, drain=drain, chunk_slots=chunk,
                warmup_slots=warmup).run())
        if warm_baseline is None:
            warm_baseline = outcome
            continue
        divergences += _compare_reports(
            f"warmup{warmup}-{engine}-chunk{chunk}", outcome, warm_baseline,
            include_trace=False)

    # Leg 4 (--stream) — checkpoint at a random mid-run slot, resume from
    # disk, on one engine: must equal the uninterrupted streamed run.
    import tempfile

    engine = rng.choice(ENGINES)
    chunk = rng.randint(1, scenario.num_slots)
    stop = rng.randint(0, scenario.num_slots)

    def checkpointed() -> Any:
        session = StreamingSimulation(
            scenario.build_simulation(), scenario.num_slots, engine=engine,
            drain=drain, chunk_slots=chunk)
        arrivals = session.sim.arrivals
        while session.slot < stop:
            count = min(session.chunk_slots, stop - session.slot)
            if arrivals is not None:
                window = arrivals.arrivals_slice(session.slot, count)
                plan = window if isinstance(window, list) else list(window)
            else:
                plan = [None] * count
            session._execute(plan)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "fuzz.ckpt.json")
            session.save_checkpoint(path)
            return resume_stream(path)

    uninterrupted = _outcome(
        lambda: StreamingSimulation(
            scenario.build_simulation(), scenario.num_slots, engine=engine,
            drain=drain, chunk_slots=chunk).run())
    resumed = _outcome(checkpointed)
    divergences += _compare_reports(
        f"resume-{engine}-chunk{chunk}-at{stop}", resumed, uninterrupted,
        include_trace=False)
    return divergences


def _fault_plan(case: FuzzCase) -> Any:
    """The eventually-completing fault schedule for one case.

    Only transient kinds (worker kills, retryable errors, delays, file
    corruption) are rated, and the runner legs grant more retries than
    ``max_faulted_attempts`` — so by construction every job completes, and
    the chaos invariant (completed ⇒ bit-identical) is checkable on every
    case.  Each case hashes to its own schedule: 25 CLI seeds are 25
    distinct fault schedules.
    """
    from repro.faults import FaultPlan

    return FaultPlan(
        master_seed=case.master_seed * _CASE_STRIDE + case.index,
        rates={"worker_kill": 0.2, "transient": 0.3, "delay": 0.2,
               "corrupt": 0.4},
        delay_s=0.001)


def _compare_values(leg: str, got: Any, want: Any) -> List[Divergence]:
    """Strict equality compare for the chaos legs (results are frozen
    dataclasses, so ``==`` is the bit-identity check)."""
    from repro.runner.sweep import JobFailure

    if isinstance(got, JobFailure):
        return [Divergence(leg, "job_failure", got.brief())]
    if got != want:
        return [Divergence(leg, "result",
                           f"{_clip(want)} vs {_clip(got)}")]
    return []


def _run_fault_legs(case: FuzzCase, stream: bool,
                    rng: random.Random) -> List[Divergence]:
    """The ``--faults`` chaos legs: the case re-run under its seeded fault
    schedule must produce reports bit-identical to the fault-free run.

    Three legs: (a) a supervised sweep under injected worker kills and
    transient errors, with cache writes the plan may corrupt; (b) the same
    sweep again against that cache, so corrupted entries must quarantine and
    recompute rather than serve garbage; (c) for scenario cases, a
    checkpoint/resume whose snapshot the plan may tear — detected corruption
    must fall back to a clean recompute.
    """
    import tempfile

    from repro.errors import CheckpointError
    from repro.faults import FaultInjector, using_faults
    from repro.runner.cache import ResultCache
    from repro.runner.jobs import Job
    from repro.runner.sweep import SweepRunner

    divergences: List[Divergence] = []
    plan = _fault_plan(case)

    if case.kind == "switch":
        # The port stage inside run_switch_spec is the expensive part; one
        # rng-chosen engine keeps the chaos legs within the leg-1 budget.
        engines = (rng.choice(ENGINES),)
        func = "repro.switch.model:run_switch_spec"
    else:
        engines = ENGINES
        func = "repro.workloads.scenario:run_scenario_spec"
    spec = json.loads(json.dumps(dict(case.spec)))
    jobs = [Job(func=func, kwargs={"spec": spec, "engine": engine},
                tag=f"faults-{engine}")
            for engine in engines]

    clean = SweepRunner(jobs=1).run(jobs)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(root=os.path.join(tmp, "cache"))
        # retries > max_faulted_attempts ⇒ guaranteed completion; jobs=2
        # with a timeout forces a real worker fleet even on one CPU, so
        # worker_kill faults exercise genuine dead-worker recovery.
        with using_faults(FaultInjector(plan)):
            faulted = SweepRunner(jobs=2, cache=cache, strict=False,
                                  retries=4, backoff_s=0.002,
                                  timeout=300).run(jobs)
            reread = SweepRunner(jobs=1, cache=cache, strict=False,
                                 retries=4, backoff_s=0.002).run(jobs)
    for engine, got, want in zip(engines, faulted, clean):
        divergences += _compare_values(f"faults-sweep-{engine}", got, want)
    for engine, got, want in zip(engines, reread, clean):
        divergences += _compare_values(f"faults-cache-{engine}", got, want)

    if case.kind != "scenario":
        return divergences

    # Leg (c): checkpoint at a random slot, then resume under the fault
    # plan.  resume_stream may find the snapshot torn (the save and resume
    # sites both corrupt): a detected CheckpointError falls back to a fresh
    # run — exactly what run_scenario_spec does — and either path must end
    # bit-identical to the uninterrupted streamed run.
    from repro.sim.streaming import StreamingSimulation, resume_stream

    scenario = Scenario.from_spec(case.spec)
    engine = rng.choice(ENGINES)
    chunk = rng.randint(1, scenario.num_slots + 1)
    stop = rng.randint(0, scenario.num_slots)

    def fresh() -> Any:
        return StreamingSimulation(
            scenario.build_simulation(), scenario.num_slots, engine=engine,
            chunk_slots=chunk).run()

    def resumed_under_faults() -> Any:
        session = StreamingSimulation(
            scenario.build_simulation(), scenario.num_slots, engine=engine,
            chunk_slots=chunk)
        arrivals = session.sim.arrivals
        while session.slot < stop:
            count = min(session.chunk_slots, stop - session.slot)
            if arrivals is not None:
                window = arrivals.arrivals_slice(session.slot, count)
                chunk_plan = (window if isinstance(window, list)
                              else list(window))
            else:
                chunk_plan = [None] * count
            session._execute(chunk_plan)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "chaos.ckpt.json")
            with using_faults(FaultInjector(plan)):
                session.save_checkpoint(path)
                try:
                    return resume_stream(path)
                except CheckpointError:
                    return fresh()

    baseline = _outcome(fresh)
    outcome = _outcome(resumed_under_faults)
    divergences += _compare_reports(
        f"faults-resume-{engine}-chunk{chunk}-at{stop}", outcome, baseline,
        include_trace=False)
    return divergences


def _run_switch_case(case: FuzzCase, stream: bool,
                     rng: random.Random) -> List[Divergence]:
    from repro.switch.model import SwitchModel

    scenario = SwitchScenario.from_spec(case.spec)
    divergences: List[Divergence] = []

    outcomes = {}
    for engine in ENGINES:
        outcomes[engine] = _outcome(
            lambda engine=engine: SwitchModel(scenario).run(engine=engine))
    baseline = outcomes["reference"]
    for engine in ENGINES[1:]:
        divergences += _compare_switch(f"jobs-{engine}", outcomes[engine],
                                       baseline)

    # The streamed fabric path: one rng-chosen engine by default (it is the
    # expensive leg at 64+ ports), all three under --stream.
    stream_engines = ENGINES if stream else (rng.choice(ENGINES),)
    for engine in stream_engines:
        chunk = rng.choice([None, rng.randint(1, scenario.num_slots + 7)])
        outcome = _outcome(
            lambda engine=engine, chunk=chunk: SwitchModel(scenario)
            .run_stream(engine=engine, chunk_slots=chunk))
        divergences += _compare_switch(f"stream-{engine}-chunk{chunk}",
                                       outcome, baseline)
    return divergences


def run_case(case: FuzzCase, stream: bool = False,
             faults: bool = False) -> List[Divergence]:
    """Run every differential leg of one case; empty list = all agreed.

    ``faults=True`` appends the chaos legs (:func:`_run_fault_legs`) after
    the ordinary differential legs — appended, not interleaved, so the
    geometry RNG reaching the ordinary legs is untouched by the flag.
    """
    # The geometry RNG is offset from the sampler's stream so replaying a
    # case from its artifact (spec already drawn) uses identical leg
    # geometry without re-sampling the spec.
    rng = case_rng(case.master_seed, case.index)
    rng = random.Random(rng.randrange(2 ** 60) ^ 0x5EED)
    if case.kind == "switch":
        divergences = _run_switch_case(case, stream, rng)
    else:
        divergences = _run_scenario_case(case, stream, rng)
    if faults:
        divergences += _run_fault_legs(case, stream, rng)
    return divergences


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #

@dataclass
class FuzzSummary:
    """What a fuzz run did, for rendering and exit-code decisions."""

    cases: int = 0
    switch_cases: int = 0
    failures: List[Tuple[FuzzCase, List[Divergence]]] = field(
        default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def dump_artifact(case: FuzzCase, divergences: List[Divergence],
                  artifact_dir: str, stream: bool,
                  faults: bool = False) -> str:
    """Write one replayable JSON artifact; returns its path."""
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(
        artifact_dir,
        f"fuzz-{case.master_seed}-{case.index:04d}.json")
    document = case.to_json()
    document["stream"] = stream
    document["faults"] = faults
    document["divergences"] = [d.to_json() for d in divergences]
    document["repro"] = case.repro_command(stream=stream, artifact=path,
                                           faults=faults)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_artifact(path: str) -> FuzzCase:
    """Reload a dumped divergence artifact as a runnable case."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise SpecError(f"cannot read fuzz artifact {path!r}: {exc}")
    except ValueError as exc:
        raise SpecError(f"fuzz artifact {path!r} is not valid JSON: {exc}")
    return FuzzCase.from_json(document)


def fuzz_many(seeds: int,
              master_seed: int = DEFAULT_MASTER_SEED,
              stream: bool = False,
              faults: bool = False,
              artifact_dir: Optional[str] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> FuzzSummary:
    """Run cases ``0..seeds-1``; dump every diverging spec as an artifact."""
    summary = FuzzSummary()
    trace_emit("fuzz_start", seeds=seeds, master_seed=master_seed,
               stream=stream, faults=faults)
    for index in range(seeds):
        case = make_case(master_seed, index)
        summary.cases += 1
        if case.kind == "switch":
            summary.switch_cases += 1
        divergences = run_case(case, stream=stream, faults=faults)
        obs = get_metrics()
        if obs is not None:
            obs.inc("fuzz.cases")
            if case.kind == "switch":
                obs.inc("fuzz.switch_cases")
        trace_emit("fuzz_case", index=index, kind=case.kind,
                   name=case.spec["name"],
                   divergences=len(divergences))
        if divergences:
            if obs is not None:
                obs.inc("fuzz.divergent_cases")
            for div in divergences:
                trace_emit("fuzz_divergence", index=index, leg=div.leg,
                           field=div.field)
            summary.failures.append((case, divergences))
            if artifact_dir is not None:
                summary.artifacts.append(
                    dump_artifact(case, divergences, artifact_dir, stream,
                                  faults=faults))
        if progress is not None:
            ports = (f" ports={case.spec['num_ports']}"
                     if case.kind == "switch" else "")
            status = "DIVERGED" if divergences else "ok"
            progress(f"[{index + 1}/{seeds}] {case.kind}{ports} "
                     f"{case.spec['name']}: {status}")
    trace_emit("fuzz_end", cases=summary.cases,
               switch_cases=summary.switch_cases,
               divergent=len(summary.failures))
    return summary


def render_summary(summary: FuzzSummary, stream: bool = False,
                   faults: bool = False) -> str:
    """Human-readable closing report for the CLI."""
    legs_note = (", streamed legs on" if stream else "") + \
                (", chaos legs on" if faults else "")
    lines = [f"fuzz: {summary.cases} cases "
             f"({summary.switch_cases} switch, "
             f"{summary.cases - summary.switch_cases} scenario), "
             f"{len(summary.failures)} divergent" + legs_note]
    for case, divergences in summary.failures:
        lines.append(f"  case {case.index} ({case.kind} "
                     f"{case.spec['name']}): "
                     f"{len(divergences)} diverging leg(s)")
        for div in divergences[:3]:
            lines.append(f"    {div.leg}: {div.field} differs")
        command = case.repro_command(stream=stream, faults=faults)
        lines.append(f"    repro: {command}")
    for path in summary.artifacts:
        lines.append(f"  artifact: {path}")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_MASTER_SEED",
    "ENGINES",
    "Divergence",
    "FuzzCase",
    "FuzzSummary",
    "case_rng",
    "dump_artifact",
    "fuzz_many",
    "load_artifact",
    "make_case",
    "render_summary",
    "run_case",
    "sample_scenario",
    "sample_switch_scenario",
]
