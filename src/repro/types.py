"""Common value types used throughout the packet-buffer models.

These are intentionally small, immutable (where possible) dataclasses: a
*cell* (the fixed 64-byte unit the buffer stores), the *requests* exchanged
between subsystems, and the *transfer jobs* the DRAM executes.  Keeping them
in one module lets the RADS baseline, the CFDS design and the traffic
machinery speak the same vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class TransferDirection(enum.Enum):
    """Direction of a DRAM<->SRAM transfer."""

    #: DRAM -> head SRAM (replenishment ordered by the head MMA).
    READ = "read"
    #: tail SRAM -> DRAM (eviction ordered by the tail MMA).
    WRITE = "write"


@dataclass(frozen=True)
class Cell:
    """A fixed-size cell: the unit of storage and scheduling in the buffer.

    Attributes:
        queue: logical VOQ the cell belongs to.
        seqno: 0-based arrival order of the cell *within its logical queue*.
            Zero-miss delivery means cells leave the buffer in strictly
            increasing ``seqno`` order per queue.
        packet_id: identifier of the packet the cell was segmented from, or
            ``None`` for synthetic cells generated directly at cell level.
        offset: position of the cell within its packet (0-based), used by the
            reassembler.
        last: True when the cell is the final cell of its packet.
        arrival_slot: slot at which the cell entered the buffer (informational;
            used for latency statistics).
    """

    queue: int
    seqno: int
    packet_id: Optional[int] = None
    offset: int = 0
    last: bool = True
    arrival_slot: int = 0


@dataclass(frozen=True)
class CellRequest:
    """A request from the switch-fabric arbiter for one cell of a queue."""

    queue: int
    issue_slot: int


@dataclass(frozen=True)
class ReplenishRequest:
    """A request from an MMA to move a block of cells between DRAM and SRAM.

    In RADS the block size is the granularity ``B``; in CFDS it is the reduced
    granularity ``b`` and the request additionally carries the physical queue
    and block index that the bank-mapping function needs.
    """

    queue: int
    direction: TransferDirection
    cells: int
    issue_slot: int
    block_index: int = 0
    tag: int = 0

    def __post_init__(self) -> None:
        if self.cells <= 0:
            raise ValueError(f"a replenish request must move at least 1 cell, got {self.cells}")


@dataclass(frozen=True)
class BankAddress:
    """The resolved location of a block inside the banked DRAM."""

    group: int
    bank_in_group: int
    bank: int


@dataclass
class TransferJob:
    """An in-flight DRAM access executing a :class:`ReplenishRequest`.

    Attributes:
        request: the request being serviced.
        bank: absolute bank index being accessed.
        start_slot: slot at which the access was initiated.
        finish_slot: first slot at which the data is available (read) or
            committed (write); the bank stays busy until this slot.
    """

    request: ReplenishRequest
    bank: int
    start_slot: int
    finish_slot: int

    @property
    def duration(self) -> int:
        """Number of slots the access occupies its bank."""
        return self.finish_slot - self.start_slot


@dataclass
class MissRecord:
    """Record of a head-SRAM miss observed by a simulator running in
    'record' (non-raising) mode."""

    queue: int
    slot: int


@dataclass
class SimulationResult:
    """Aggregate statistics returned by the buffer simulators."""

    slots_simulated: int = 0
    cells_in: int = 0
    cells_out: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    misses: list = field(default_factory=list)
    max_head_sram_occupancy: int = 0
    max_tail_sram_occupancy: int = 0
    max_request_register_occupancy: int = 0
    max_reorder_delay_slots: int = 0
    bank_conflicts: int = 0

    @property
    def miss_count(self) -> int:
        """Number of head-SRAM misses observed (must be zero for a correctly
        dimensioned RADS/CFDS configuration)."""
        return len(self.misses)

    @property
    def zero_miss(self) -> bool:
        """True when the run honoured the paper's zero-miss guarantee."""
        return not self.misses
