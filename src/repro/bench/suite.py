"""The perf-trajectory benchmark suite (``python -m repro bench``).

Every PR that touches a hot path needs a comparable baseline; this module
provides it.  The suite is a *fixed* set of benchmarks — the closed-loop
scenario on each engine, the wide-queue stressor that magnifies per-slot
overhead, a CFDS scenario exercising the DRAM scheduler subsystem, the
head-MMA ablation, the multi-port switch pipeline (the serial fabric
stage alone, then the full run with ports serial vs sharded over 4
workers), and the long-horizon streaming path (chunked runs, with and
without checkpointing) — each timed for a handful of repetitions, with the **median**
wall-clock time recorded per benchmark.  Results are written as JSON
(``BENCH_9.json`` by default; the number tracks the PR that produced the
file), so successive snapshots can be diffed mechanically::

    python -m repro bench                 # full suite -> BENCH_9.json
    python -m repro bench --quick         # reduced slot counts (CI perf-smoke)
    python -m repro bench --filter wide   # only the wide-queue benchmarks

The suite intentionally times whole runs (build + simulate + drain) — that
is what users pay for — and records the slot throughput alongside the raw
seconds so machines of different speeds can still be compared by ratio.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.runner.sweep import available_cpus
from repro.errors import ValidationError
from repro.sim.numpy_engine import NUMPY_AVAILABLE

#: Default output file.  The suffix tracks the PR that produced the
#: snapshot so the repository can accumulate a BENCH_<n>.json trajectory.
DEFAULT_OUTPUT = "BENCH_9.json"

#: JSON schema version of the output document.
SCHEMA = 1

#: Slot counts used when ``--quick`` trims the suite for CI smoke runs.
QUICK_SCENARIO_SLOTS = 800
QUICK_WIDE_SLOTS = 1500
QUICK_MMA_SLOTS = 3000
QUICK_SWITCH_SLOTS = 1500

WIDE_QUEUES = 128
WIDE_SLOTS = 6000
MMA_QUEUES = 16
MMA_GRANULARITY = 4
MMA_SLOTS = 12_000
SWITCH_PORTS = 8
SWITCH_SLOTS = 6000
#: Slot count of the fabric-stage-only benchmark (the serial stage is the
#: switch pipeline's Amdahl ceiling, so its trajectory is tracked alone).
FABRIC_SLOTS = 20_000
QUICK_FABRIC_SLOTS = 5000
#: The long-horizon streaming benchmark: a slot count well past what the
#: quick scenarios cover, run in bounded chunks (kslots/s is the headline).
STREAM_SLOTS = 250_000
QUICK_STREAM_SLOTS = 20_000
STREAM_CHUNK_SLOTS = 32_768
STREAM_QUEUES = 8

#: A benchmark thunk plus the metadata recorded next to its timings.
BenchSetup = Tuple[Callable[[], object], Dict[str, Any]]


@dataclass(frozen=True)
class BenchCase:
    """One named benchmark of the fixed suite."""

    name: str
    description: str
    factory: Callable[[bool], BenchSetup]


@dataclass
class BenchResult:
    """Timings of one benchmark: the median is the headline number."""

    name: str
    description: str
    median_s: float
    samples_s: List[float]
    metrics: Dict[str, Any] = field(default_factory=dict)
    profile: Optional[List[Dict[str, Any]]] = None

    def as_json(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "description": self.description,
            "median_s": self.median_s,
            "samples_s": self.samples_s,
            "metrics": self.metrics,
        }
        if self.profile is not None:
            out["profile"] = self.profile
        return out


def wide_scenario(num_queues: int = WIDE_QUEUES,
                  num_slots: int = WIDE_SLOTS):
    """The 128-queue Bernoulli stressor shared with
    ``benchmarks/bench_workloads.py`` — wide enough that per-slot loop
    overhead, not the workload, dominates."""
    from repro.workloads import Scenario

    return Scenario(
        name="wide-bernoulli",
        description="128-queue Bernoulli stressor for the loop overhead",
        scheme="rads",
        buffer={"num_queues": num_queues, "granularity": 4},
        arrivals={"type": "bernoulli",
                  "params": {"num_queues": num_queues, "load": 0.85}},
        arbiter={"type": "random",
                 "params": {"num_queues": num_queues, "load": 0.9}},
        num_slots=num_slots, seed=1)


def _registered_scenario_setup(scenario_name: str, engine: str,
                               quick: bool) -> BenchSetup:
    from repro.workloads.registry import get_scenario

    scenario = get_scenario(scenario_name)
    slots = QUICK_SCENARIO_SLOTS if quick else scenario.num_slots

    def thunk():
        return scenario.run(num_slots=slots, engine=engine)

    return thunk, {"slots": slots, "scheme": scenario.scheme,
                   "scenario": scenario_name, "engine": engine}


def _wide_setup(engine: str, quick: bool) -> BenchSetup:
    slots = QUICK_WIDE_SLOTS if quick else WIDE_SLOTS
    scenario = wide_scenario(num_slots=slots)

    def thunk():
        return scenario.run(engine=engine)

    return thunk, {"slots": slots, "scheme": scenario.scheme,
                   "queues": WIDE_QUEUES, "engine": engine}


def _mma_setup(policy: str, quick: bool) -> BenchSetup:
    from repro.mma.ecqf import ECQF
    from repro.mma.mdqf import MDQF
    from repro.rads.config import RADSConfig
    from repro.rads.head_buffer import RADSHeadBuffer
    from repro.traffic.arbiters import RoundRobinAdversary

    slots = QUICK_MMA_SLOTS if quick else MMA_SLOTS
    mma_cls = {"ecqf": ECQF, "mdqf": MDQF}[policy]

    def thunk():
        config = RADSConfig(num_queues=MMA_QUEUES,
                            granularity=MMA_GRANULARITY, strict=False)
        buffer = RADSHeadBuffer(config, mma=mma_cls())
        adversary = RoundRobinAdversary(MMA_QUEUES)
        unbounded = [10 ** 9] * MMA_QUEUES
        return buffer.run(adversary.next_request(slot, unbounded)
                          for slot in range(slots))

    return thunk, {"slots": slots, "policy": policy,
                   "queues": MMA_QUEUES, "granularity": MMA_GRANULARITY}


def switch_bench_scenario(num_slots: int = SWITCH_SLOTS):
    """The switch-stage stressor: uniform traffic into CFDS linecards.

    CFDS ports are the heaviest per-port workload (DSS + latency register in
    the loop), so this is where sharding ports across workers pays — the
    configuration the ``switch-scaling`` derived ratio tracks.  Not a
    registered scenario: benchmarks must not drift when the registry grows.
    """
    from repro.switch import SwitchScenario

    return SwitchScenario(
        name="bench-cfds-uniform",
        description="8-port uniform-traffic switch with CFDS linecards",
        num_ports=SWITCH_PORTS,
        traffic={"type": "bernoulli", "params": {"load": 0.85}},
        fabric={"type": "islip", "params": {}},
        ports=({"scheme": "cfds",
                "buffer": {"dram_access_slots": 8, "granularity": 2,
                           "num_banks": 32},
                "arbiter": {"type": "longest_queue", "params": {}}},),
        num_slots=num_slots, seed=3)


def _switch_setup(jobs: int, quick: bool) -> BenchSetup:
    from repro.switch import SwitchModel

    slots = QUICK_SWITCH_SLOTS if quick else SWITCH_SLOTS
    scenario = switch_bench_scenario(num_slots=slots)

    def thunk():
        return SwitchModel(scenario).run(jobs=jobs)

    # ``slots`` counts simulated port-slots so kslots/s stays comparable
    # with the single-port benchmarks.
    return thunk, {"slots": slots * SWITCH_PORTS, "arrival_slots": slots,
                   "ports": SWITCH_PORTS, "scheme": "cfds", "jobs": jobs,
                   "engine": "array"}


def stream_scenario(num_slots: int = STREAM_SLOTS):
    """The long-horizon streaming stressor: a plain Bernoulli/random-arbiter
    RADS workload whose only point is slot count.  Not a registered scenario:
    benchmarks must not drift when the registry grows."""
    from repro.workloads import Scenario

    return Scenario(
        name="stream-bernoulli",
        description="long-horizon streaming stressor",
        scheme="rads",
        buffer={"num_queues": STREAM_QUEUES, "granularity": 4},
        arrivals={"type": "bernoulli",
                  "params": {"num_queues": STREAM_QUEUES, "load": 0.85}},
        arbiter={"type": "random",
                 "params": {"num_queues": STREAM_QUEUES, "load": 0.9}},
        num_slots=num_slots, seed=7)


def _stream_setup(engine: str, quick: bool,
                  checkpoint: bool = False) -> BenchSetup:
    import os
    import tempfile

    slots = QUICK_STREAM_SLOTS if quick else STREAM_SLOTS
    scenario = stream_scenario(num_slots=slots)
    every = max(slots // 4, 1)

    if checkpoint:
        def thunk():
            with tempfile.TemporaryDirectory() as tmpdir:
                return scenario.run_stream(
                    engine=engine, chunk_slots=STREAM_CHUNK_SLOTS,
                    checkpoint_every=every,
                    checkpoint_path=os.path.join(tmpdir, "bench.ckpt.json"))
    else:
        def thunk():
            return scenario.run_stream(engine=engine,
                                       chunk_slots=STREAM_CHUNK_SLOTS)

    metrics = {"slots": slots, "scheme": "rads", "engine": engine,
               "chunk_slots": STREAM_CHUNK_SLOTS, "stream": True}
    if checkpoint:
        metrics["checkpoint_every"] = every
    return thunk, metrics


def _fabric_setup(quick: bool) -> BenchSetup:
    from repro.switch import run_fabric

    slots = QUICK_FABRIC_SLOTS if quick else FABRIC_SLOTS
    scenario = switch_bench_scenario(num_slots=slots)

    def thunk():
        return run_fabric(scenario)

    return thunk, {"slots": slots, "ports": SWITCH_PORTS, "fabric": "islip"}


def _case(name: str, description: str, factory) -> BenchCase:
    return BenchCase(name=name, description=description, factory=factory)


#: The fixed suite, in reporting order.
SUITE: Tuple[BenchCase, ...] = (
    _case("scenario/uniform-bernoulli/reference",
          "registered RADS scenario, reference per-slot loop",
          lambda quick: _registered_scenario_setup(
              "uniform-bernoulli", "reference", quick)),
    _case("scenario/uniform-bernoulli/batched",
          "registered RADS scenario, batched fast path",
          lambda quick: _registered_scenario_setup(
              "uniform-bernoulli", "batched", quick)),
    _case("scenario/uniform-bernoulli/array",
          "registered RADS scenario, struct-of-arrays engine",
          lambda quick: _registered_scenario_setup(
              "uniform-bernoulli", "array", quick)),
    _case("scenario/uniform-bernoulli/numpy",
          "registered RADS scenario, vectorized numpy engine",
          lambda quick: _registered_scenario_setup(
              "uniform-bernoulli", "numpy", quick)),
    _case("scenario/markov-onoff/batched",
          "registered CFDS scenario (DSS + latency register), batched",
          lambda quick: _registered_scenario_setup(
              "markov-onoff", "batched", quick)),
    _case("scenario/markov-onoff/array",
          "registered CFDS scenario (DSS + latency register), array engine",
          lambda quick: _registered_scenario_setup(
              "markov-onoff", "array", quick)),
    _case("wide-128/batched",
          "128-queue Bernoulli stressor, batched fast path",
          lambda quick: _wide_setup("batched", quick)),
    _case("wide-128/array",
          "128-queue Bernoulli stressor, struct-of-arrays engine",
          lambda quick: _wide_setup("array", quick)),
    _case("wide-128/numpy",
          "128-queue Bernoulli stressor, vectorized numpy engine",
          lambda quick: _wide_setup("numpy", quick)),
    _case("mma-ablation/ecqf",
          "head-only worst case under ECQF (paper policy)",
          lambda quick: _mma_setup("ecqf", quick)),
    _case("mma-ablation/mdqf",
          "head-only worst case under MDQF (ablation policy)",
          lambda quick: _mma_setup("mdqf", quick)),
    _case("switch/fabric-stage",
          "crossbar fabric stage alone (serial, iSLIP, 8 ports)",
          lambda quick: _fabric_setup(quick)),
    _case("switch/cfds-8port/jobs1",
          "8-port CFDS switch, ports run serially",
          lambda quick: _switch_setup(1, quick)),
    _case("switch/cfds-8port/jobs4",
          "8-port CFDS switch, ports sharded over 4 workers",
          lambda quick: _switch_setup(4, quick)),
    _case("stream/long-horizon/batched",
          "long-horizon streamed run, batched engine, chunked plans",
          lambda quick: _stream_setup("batched", quick)),
    _case("stream/long-horizon/array",
          "long-horizon streamed run, struct-of-arrays engine",
          lambda quick: _stream_setup("array", quick)),
    _case("stream/long-horizon/numpy",
          "long-horizon streamed run, vectorized numpy engine",
          lambda quick: _stream_setup("numpy", quick)),
    _case("stream/long-horizon/array-checkpointed",
          "streamed run writing 3 resumable checkpoints along the way",
          lambda quick: _stream_setup("array", quick, checkpoint=True)),
)

#: Without the optional dependency the numpy benchmarks drop out of the
#: suite (and, via the in-medians guard below, out of the derived ratios):
#: the snapshot stays valid, just narrower.
if not NUMPY_AVAILABLE:  # pragma: no cover - exercised by the no-numpy CI leg
    SUITE = tuple(case for case in SUITE if "/numpy" not in case.name)

#: Ratios derived from pairs of benchmark medians (numerator / denominator —
#: the speedup trajectory the acceptance criteria track).  The fourth
#: element is the regression *direction* the compare gate uses: a speedup
#: ratio regressed when it falls (``higher_better``), an overhead ratio
#: regressed when it rises (``lower_better``).
DERIVED_RATIOS: Tuple[Tuple[str, str, str, str], ...] = (
    ("wide-128-speedup-array-over-batched", "wide-128/batched",
     "wide-128/array", "higher_better"),
    ("wide-128-speedup-numpy-over-array", "wide-128/array",
     "wide-128/numpy", "higher_better"),
    ("stream-speedup-numpy-over-array", "stream/long-horizon/array",
     "stream/long-horizon/numpy", "higher_better"),
    ("uniform-speedup-array-over-batched",
     "scenario/uniform-bernoulli/batched",
     "scenario/uniform-bernoulli/array", "higher_better"),
    ("uniform-speedup-batched-over-reference",
     "scenario/uniform-bernoulli/reference",
     "scenario/uniform-bernoulli/batched", "higher_better"),
    ("switch-scaling-jobs4-over-jobs1", "switch/cfds-8port/jobs1",
     "switch/cfds-8port/jobs4", "higher_better"),
    ("stream-speedup-array-over-batched", "stream/long-horizon/batched",
     "stream/long-horizon/array", "higher_better"),
    ("stream-checkpoint-overhead", "stream/long-horizon/array-checkpointed",
     "stream/long-horizon/array", "lower_better"),
)


def run_suite(quick: bool = False,
              repeats: Optional[int] = None,
              name_filter: Optional[str] = None,
              profile: bool = False,
              profile_top: Optional[int] = None) -> Dict[str, Any]:
    """Run the suite and return the JSON-serialisable result document.

    With ``profile=True`` every selected benchmark is run once more under
    :mod:`cProfile` *after* the timed repetitions (profiler overhead must
    never pollute the medians) and its hottest frames land in the result's
    ``profile`` list.
    """
    from repro.obs.profile import DEFAULT_TOP, profile_call
    from repro.obs.trace import emit as trace_emit

    if repeats is None:
        repeats = 3 if quick else 5
    if repeats < 1:
        raise ValidationError("repeats must be at least 1")
    if profile_top is None:
        profile_top = DEFAULT_TOP
    selected = [case for case in SUITE
                if name_filter is None or name_filter in case.name]
    setups = [case.factory(quick) for case in selected]
    trace_emit("bench_start", quick=quick, repeats=repeats,
               cases=len(selected), profile=profile)
    # Interleave the repetitions (round 0 of every case, then round 1, ...)
    # instead of timing each case's repeats back to back: slow drift in
    # machine load then lands on every case roughly equally, which is what
    # keeps the *derived ratios* honest — a ratio of two medians measured in
    # disjoint time windows would be biased by whatever happened in between.
    all_samples: List[List[float]] = [[] for _ in selected]
    for _ in range(repeats):
        for index, (thunk, _metrics) in enumerate(setups):
            started = time.perf_counter()
            thunk()
            all_samples[index].append(time.perf_counter() - started)
    results: List[BenchResult] = []
    for case, (thunk, metrics), samples in zip(selected, setups, all_samples):
        median = statistics.median(samples)
        slots = metrics.get("slots")
        if slots:
            metrics["kslots_per_s"] = round(slots / median / 1e3, 2)
        frames = profile_call(thunk, top=profile_top) if profile else None
        trace_emit("bench_case", name=case.name,
                   median_s=round(median, 6),
                   kslots_per_s=metrics.get("kslots_per_s"))
        results.append(BenchResult(name=case.name,
                                   description=case.description,
                                   median_s=median,
                                   samples_s=samples,
                                   metrics=metrics,
                                   profile=frames))
    medians = {result.name: result.median_s for result in results}
    derived: Dict[str, float] = {}
    directions: Dict[str, str] = {}
    for label, numerator, denominator, direction in DERIVED_RATIOS:
        if numerator in medians and denominator in medians and medians[denominator]:
            derived[label] = round(medians[numerator] / medians[denominator], 3)
            directions[label] = direction
    return {
        "schema": SCHEMA,
        "suite": "repro-bench",
        "quick": quick,
        "repeats": repeats,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        # Interprets the sharding ratios: on a single-CPU machine the
        # jobs4/jobs1 pair is expected to be ~1x (sharding is overhead-
        # neutral); real scaling shows wherever cpus > 1.  Affinity-aware —
        # the same count that caps the SweepRunner pool doing the sharding.
        "cpus": available_cpus(),
        "benchmarks": [result.as_json() for result in results],
        "derived": derived,
        # Regression direction per derived ratio — what the compare gate
        # (repro bench --compare --fail-on-regression) keys on.
        "derived_directions": directions,
    }


def write_results(document: Mapping[str, Any], path: str) -> None:
    """Write the result document as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")


def render_results(document: Mapping[str, Any]) -> str:
    """Human-readable table of the suite results."""
    from repro.analysis.report import format_table

    rows = []
    for bench in document["benchmarks"]:
        metrics = bench["metrics"]
        rows.append([
            bench["name"],
            f"{bench['median_s'] * 1e3:.1f}",
            metrics.get("kslots_per_s", "-"),
            metrics.get("slots", "-"),
        ])
    mode = "quick" if document["quick"] else "full"
    table = format_table(
        ["benchmark", "median (ms)", "kslots/s", "slots"], rows,
        title=f"repro bench — {mode} suite, {document['repeats']} repeats")
    lines = [table]
    if document["derived"]:
        lines.append("")
        for label, value in document["derived"].items():
            lines.append(f"{label}: {value:.3f}x")
    if any("profile" in bench for bench in document["benchmarks"]):
        from repro.obs.profile import render_profile

        lines.append("")
        lines.append("hot frames (self-time, per benchmark):")
        for bench in document["benchmarks"]:
            if bench.get("profile"):
                lines.append(f"  {bench['name']}:")
                lines.append(render_profile(bench["profile"]))
    return "\n".join(lines)
