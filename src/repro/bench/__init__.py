"""Perf-trajectory benchmark harness.

``python -m repro bench`` runs a fixed suite of closed-loop and subsystem
benchmarks and writes per-benchmark median timings to a JSON snapshot
(``BENCH_<n>.json``), giving every future PR a comparable baseline.  See
:mod:`repro.bench.suite`.
"""

from repro.bench.suite import (
    DEFAULT_OUTPUT,
    DERIVED_RATIOS,
    SUITE,
    BenchCase,
    BenchResult,
    render_results,
    run_suite,
    switch_bench_scenario,
    wide_scenario,
    write_results,
)

__all__ = [
    "DEFAULT_OUTPUT",
    "DERIVED_RATIOS",
    "SUITE",
    "BenchCase",
    "BenchResult",
    "render_results",
    "run_suite",
    "switch_bench_scenario",
    "wide_scenario",
    "write_results",
]
