"""Ingress traffic for switch scenarios.

At switch scale an "arrival" is a cell entering an ingress port with a
*destination egress port*; the single-linecard arrival processes of
:mod:`repro.traffic.arrivals` model exactly that if their queue index is read
as the destination port.  Switch scenarios therefore reuse the whole arrival
library (``bernoulli`` over destinations is uniform traffic, ``hotspot`` is a
hot egress, ``zipf`` is skewed egress popularity, ...) and add the two
patterns that only exist with multiple correlated sources:

* :class:`IncastTraffic` — periodically, *every* ingress bursts at the same
  victim egress simultaneously (the synchronised fan-in of distributed
  storage/partition-aggregate workloads); between bursts the background is
  uniform.
* :class:`PermutationTraffic` — ingress ``i`` sends all its cells to egress
  ``(i + shift) mod N``: a fixed permutation, the contention-free best case
  every fabric should sustain at full load.

Both are ordinary :class:`~repro.traffic.arrivals.ArrivalProcess` subclasses;
the per-ingress context (``num_queues`` = port count, the ``ingress`` index,
a per-ingress seed) is injected by :func:`build_ingress_traffic` when the
spec does not pin it, mirroring the seed injection of
:mod:`repro.workloads.scenario`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigurationError, ValidationError
from repro.traffic.arrivals import ArrivalProcess
from repro.workloads.scenario import ARRIVAL_TYPES, accepts_param


class IncastTraffic(ArrivalProcess):
    """Synchronised periodic fan-in at one victim egress.

    Every ``period`` slots, the first ``burst`` slots are an *incast phase*:
    the source sends to ``victim`` in every one of them.  Because the phase
    is a pure function of the slot number, every ingress port built from the
    same spec bursts in lockstep — ``N`` cells per slot aimed at one egress
    that can accept only one, the worst fan-in the crossbar admits.  Outside
    the phase the source offers uniform background traffic at ``load``.
    """

    def __init__(self,
                 num_queues: int,
                 victim: int = 0,
                 period: int = 64,
                 burst: int = 8,
                 load: float = 0.5,
                 seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        if not 0 <= victim < num_queues:
            raise ValidationError("victim must be a valid egress port")
        if period < 1 or not 0 <= burst <= period:
            raise ValidationError("need 0 <= burst <= period and period >= 1")
        if not 0.0 <= load <= 1.0:
            raise ValidationError("load must be in [0, 1]")
        self.num_queues = num_queues
        self.victim = victim
        self.period = period
        self.burst = burst
        self.load = load
        self._rng = random.Random(seed)

    def next_arrival(self, slot: int) -> Optional[int]:
        if slot % self.period < self.burst:
            return self.victim
        if self._rng.random() >= self.load:
            return None
        return self._rng.randrange(self.num_queues)


class PermutationTraffic(ArrivalProcess):
    """A fixed ingress-to-egress permutation at rate ``load``.

    With every ingress using the same ``shift`` the destinations form a
    cyclic permutation: no two ingress ports ever contend, so any
    work-conserving fabric must carry the full offered load with zero fabric
    queueing.  That makes this the calibration pattern for fabric-arbitrage
    overhead (and, with mismatched shifts, a building block for partial
    overlap studies).
    """

    def __init__(self,
                 num_queues: int,
                 ingress: int = 0,
                 shift: int = 1,
                 load: float = 1.0,
                 seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        if not 0.0 <= load <= 1.0:
            raise ValidationError("load must be in [0, 1]")
        self.num_queues = num_queues
        self.destination = (ingress + shift) % num_queues
        self.load = load
        self._rng = random.Random(seed)

    def next_arrival(self, slot: int) -> Optional[int]:
        if self._rng.random() >= self.load:
            return None
        return self.destination


#: Ingress traffic factories: every single-port arrival type (queue index
#: read as destination egress) plus the switch-only correlated patterns.
INGRESS_TRAFFIC_TYPES: Dict[str, type] = {
    **ARRIVAL_TYPES,
    "incast": IncastTraffic,
    "permutation": PermutationTraffic,
}


def build_ingress_traffic(spec: Mapping[str, Any],
                          num_ports: int,
                          ingress: int,
                          seed: int) -> ArrivalProcess:
    """Instantiate one ingress port's traffic source from its spec.

    Context the spec does not pin is injected when the generator accepts it:
    ``num_queues`` (the destination space is the port count), ``ingress``
    (so permutation-style sources know who they are) and a per-ingress
    ``seed`` (so sources built from one broadcast spec draw independent
    streams deterministically).
    """
    try:
        type_name = spec["type"]
    except (TypeError, KeyError):
        raise ConfigurationError(
            "ingress traffic spec must be a dict with a 'type' key")
    try:
        cls = INGRESS_TRAFFIC_TYPES[type_name]
    except KeyError:
        known = ", ".join(sorted(INGRESS_TRAFFIC_TYPES))
        raise ConfigurationError(
            f"unknown ingress traffic type {type_name!r} (known: {known})")
    params = dict(spec.get("params", {}))
    if accepts_param(cls, "num_queues") and "num_queues" not in params:
        params["num_queues"] = num_ports
    if accepts_param(cls, "ingress") and "ingress" not in params:
        params["ingress"] = ingress
    if accepts_param(cls, "seed") and "seed" not in params:
        params["seed"] = seed
    if "pattern" in params:
        # Replayed destination traces rescale with the port count by folding
        # (a trace captured on a larger switch drives a smaller one), the
        # same rule port_scenarios applies to ingress→queue mapping.  The
        # stochastic generators are NOT folded: an out-of-range destination
        # from one of those is a bug the fabric stage must reject.
        params["pattern"] = [None if dest is None else dest % num_ports
                             for dest in params["pattern"]]
    return cls(**params)
