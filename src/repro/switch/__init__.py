"""Switch-scale composition: many per-port buffers behind a crossbar fabric.

The paper dimensions one linecard buffer; a router composes many of them.
This package scales the reproduction to that system level:

* :mod:`repro.switch.fabric` — crossbar matching policies (iSLIP-style
  round-robin, random, static priority);
* :mod:`repro.switch.traffic` — ingress traffic (every single-port arrival
  process read as destination-port traffic, plus incast and permutation
  patterns that only exist with correlated sources);
* :mod:`repro.switch.scenario` — the declarative :class:`SwitchScenario`
  spec with JSON round-trip;
* :mod:`repro.switch.registry` — the named registry behind
  ``python -m repro switch``;
* :mod:`repro.switch.model` — the two-stage execution model (serial fabric
  stage, port stage sharded over the experiment runner) and the merged
  :class:`SwitchReport`.

A switch port is executed as an ordinary single-port
:class:`~repro.workloads.scenario.Scenario` whose arrivals are the fabric's
egress trace — single-port scenarios are the degenerate one-port case, not a
separate code path.
"""

from repro.switch.fabric import (
    FABRIC_TYPES,
    FabricArbiter,
    ISLIPFabricArbiter,
    PriorityFabricArbiter,
    RandomFabricArbiter,
)
from repro.switch.model import (
    DEFAULT_ENGINE,
    FabricStats,
    FabricStream,
    SwitchModel,
    SwitchReport,
    port_scenarios,
    port_template,
    run_fabric,
    run_switch_spec,
)
from repro.switch.registry import (
    all_switch_scenarios,
    get_switch_scenario,
    register_switch_scenario,
    switch_scenario_names,
)
from repro.switch.scenario import PORT_SEED_STRIDE, SwitchScenario
from repro.switch.traffic import (
    INGRESS_TRAFFIC_TYPES,
    IncastTraffic,
    PermutationTraffic,
    build_ingress_traffic,
)

__all__ = [
    "DEFAULT_ENGINE",
    "FABRIC_TYPES",
    "FabricArbiter",
    "FabricStats",
    "FabricStream",
    "INGRESS_TRAFFIC_TYPES",
    "ISLIPFabricArbiter",
    "IncastTraffic",
    "PORT_SEED_STRIDE",
    "PermutationTraffic",
    "PriorityFabricArbiter",
    "RandomFabricArbiter",
    "SwitchModel",
    "SwitchReport",
    "SwitchScenario",
    "all_switch_scenarios",
    "build_ingress_traffic",
    "get_switch_scenario",
    "port_scenarios",
    "port_template",
    "register_switch_scenario",
    "run_fabric",
    "run_switch_spec",
    "switch_scenario_names",
]
