"""The named switch-scenario registry.

What ``python -m repro switch --list`` shows and what the ``switch-suite``
experiment sweeps.  The default suite covers the system-level traffic
families a multi-port buffer deployment meets:

* **uniform** — independent uniform destinations, the textbook baseline;
* **hotspot egress** — one egress attracts most of the traffic;
* **incast** — synchronised periodic fan-in at a victim egress;
* **permutation** — a contention-free fixed permutation at near-full load;
* **strided adversary per port** — every egress buffer is driven by a
  Section-5-style strided adversary, with the stride varying per port;
* **mixed scheme** — RADS and CFDS egress linecards alternating in one
  switch;
* **trace driven** — a canned destination trace replayed identically at
  every ingress.

Defaults are sized so the whole suite simulates in seconds at 8 ports;
``--ports``/``--slots`` rescale any scenario (templates cycle, queue counts
default to the port count).  Registration is open via
:func:`register_switch_scenario`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.switch.scenario import SwitchScenario

_REGISTRY: Dict[str, SwitchScenario] = {}

#: Port templates shared by the default suite.  ``num_queues`` is omitted on
#: purpose: it defaults to the port count (one VOQ per ingress).
_RADS_PORT = {"scheme": "rads",
              "buffer": {"granularity": 4},
              "arbiter": {"type": "oldest_cell", "params": {}}}
_CFDS_PORT = {"scheme": "cfds",
              "buffer": {"dram_access_slots": 8, "granularity": 2,
                         "num_banks": 32},
              "arbiter": {"type": "longest_queue", "params": {}}}

#: Default port count of the registered suite.
DEFAULT_PORTS = 8


def register_switch_scenario(scenario: SwitchScenario,
                             replace: bool = False) -> SwitchScenario:
    """Add ``scenario`` to the registry (``replace=True`` to overwrite)."""
    if not replace and scenario.name in _REGISTRY:
        raise ConfigurationError(
            f"switch scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_switch_scenario(name: str) -> SwitchScenario:
    """Look up one switch scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown switch scenario {name!r} (known: {known})")


def switch_scenario_names(tag: Optional[str] = None) -> List[str]:
    """Sorted names of all registered switch scenarios (optionally by tag)."""
    return sorted(name for name, scn in _REGISTRY.items()
                  if tag is None or tag in scn.tags)


def all_switch_scenarios() -> List[SwitchScenario]:
    """All registered switch scenarios, in name order."""
    return [_REGISTRY[name] for name in switch_scenario_names()]


# --------------------------------------------------------------------- #
# The default suite
# --------------------------------------------------------------------- #

def _canonical_destination_trace(num_slots: int = 1500,
                                 num_ports: int = DEFAULT_PORTS,
                                 seed: int = 4321) -> List[Optional[int]]:
    """A deterministic destination sequence for the trace-driven scenario.

    Generated once at import from a seeded RNG so the pattern is a plain
    JSON-serialisable list, identical in every process — the property an
    externally captured fabric trace would have.  Mildly bursty: runs of the
    same destination, gaps in between.
    """
    rng = random.Random(seed)
    pattern: List[Optional[int]] = []
    while len(pattern) < num_slots:
        if rng.random() < 0.25:
            pattern.append(None)
            continue
        destination = rng.randrange(num_ports)
        for _ in range(min(rng.randint(1, 6), num_slots - len(pattern))):
            pattern.append(destination)
    return pattern


def _default_switch_scenarios() -> List[SwitchScenario]:
    destination_trace = _canonical_destination_trace()
    return [
        SwitchScenario(
            name="uniform",
            description="Uniform Bernoulli destinations at 85% load, iSLIP",
            num_ports=DEFAULT_PORTS,
            traffic={"type": "bernoulli", "params": {"load": 0.85}},
            fabric={"type": "islip", "params": {}},
            ports=(_RADS_PORT,),
            num_slots=2000, seed=31, tags=("baseline",)),
        SwitchScenario(
            name="hotspot-egress",
            description="70% of every ingress's traffic aimed at egress 0",
            num_ports=DEFAULT_PORTS,
            traffic={"type": "hotspot",
                     "params": {"hot_queues": [0], "hot_fraction": 0.7,
                                "load": 0.8}},
            fabric={"type": "islip", "params": {}},
            ports=(_RADS_PORT,),
            num_slots=2000, seed=37, tags=("hotspot",)),
        SwitchScenario(
            name="incast",
            description="Synchronised 10-slot fan-in bursts at egress 0 "
                        "every 64 slots, CFDS linecards",
            num_ports=DEFAULT_PORTS,
            traffic={"type": "incast",
                     "params": {"victim": 0, "period": 64, "burst": 10,
                                "load": 0.45}},
            fabric={"type": "random", "params": {}},
            ports=(_CFDS_PORT,),
            num_slots=2000, seed=41, tags=("incast", "bursty")),
        SwitchScenario(
            name="permutation",
            description="Contention-free fixed permutation (shift 3) at 95% "
                        "load — the fabric calibration pattern",
            num_ports=DEFAULT_PORTS,
            traffic={"type": "permutation",
                     "params": {"shift": 3, "load": 0.95}},
            fabric={"type": "priority", "params": {}},
            ports=(_RADS_PORT,),
            num_slots=2000, seed=43, tags=("baseline", "calibration")),
        SwitchScenario(
            name="strided-ports",
            description="Full-load round-robin ingress, strided adversary "
                        "on every egress buffer (stride varies per port)",
            num_ports=DEFAULT_PORTS,
            traffic={"type": "round_robin", "params": {"load": 1.0}},
            fabric={"type": "islip", "params": {}},
            ports=tuple(
                {"scheme": "rads",
                 "buffer": {"granularity": 4},
                 "arbiter": {"type": "strided_adversary",
                             "params": {"stride": stride, "burst": burst}}}
                for stride, burst in ((1, 1), (3, 1), (5, 2), (7, 3))),
            num_slots=2000, seed=0, tags=("adversarial",)),
        SwitchScenario(
            name="mixed-scheme",
            description="Alternating RADS and CFDS egress linecards under "
                        "Zipf destination popularity",
            num_ports=DEFAULT_PORTS,
            traffic={"type": "zipf",
                     "params": {"exponent": 1.1, "load": 0.8}},
            fabric={"type": "islip", "params": {}},
            ports=(_RADS_PORT, _CFDS_PORT),
            num_slots=2000, seed=47, tags=("mixed", "hotspot")),
        SwitchScenario(
            name="trace-driven",
            description="Canned bursty destination trace replayed at every "
                        "ingress (maximum synchronised contention)",
            num_ports=DEFAULT_PORTS,
            traffic={"type": "trace",
                     "params": {"pattern": destination_trace}},
            fabric={"type": "islip", "params": {}},
            ports=(_RADS_PORT,),
            num_slots=len(destination_trace), seed=0, tags=("replay",)),
    ]


for _scenario in _default_switch_scenarios():
    register_switch_scenario(_scenario)
del _scenario
