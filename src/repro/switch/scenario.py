"""Declarative switch-level scenarios.

A :class:`SwitchScenario` is to a switch what
:class:`~repro.workloads.scenario.Scenario` is to one linecard buffer: plain
data that fully specifies a run and round-trips through a JSON spec dict, so
switch runs can travel through the experiment runner and its cache.

A switch scenario names:

* ``num_ports`` — the port count ``N`` (ingress and egress are symmetric);
* ``traffic`` — one ingress-traffic spec, instantiated per ingress port with
  injected per-ingress seeds (see :mod:`repro.switch.traffic`);
* ``fabric`` — the crossbar matching policy spec
  (see :mod:`repro.switch.fabric`);
* ``ports`` — a tuple of per-port *templates* ``{"scheme", "buffer",
  "arbiter"}`` cycled over the egress ports (one template = a homogeneous
  switch; two alternating templates = the mixed-scheme scenario; ``N``
  templates = fully heterogeneous).  A template's buffer and arbiter default
  their ``num_queues`` to the port count, because an egress buffer keeps one
  VOQ per ingress port — so the same scenario re-scales with ``--ports``.

The degenerate one-port case reduces to a single :class:`Scenario`: the
switch layer *builds* a ``Scenario`` per egress port (its arrivals being the
fabric's egress trace) and merges the resulting
:class:`~repro.workloads.scenario.ScenarioResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.switch.fabric import FABRIC_TYPES, FabricArbiter
from repro.switch.traffic import INGRESS_TRAFFIC_TYPES
from repro.workloads.scenario import (
    ARBITER_TYPES,
    MMA_TYPES,
    SCHEMES,
    _copy_spec,
    accepts_param,
)

#: Deterministic spread between per-port / per-ingress seeds, chosen large
#: and odd so neighbouring ports never share generator streams.
PORT_SEED_STRIDE = 0x1F123


def _check_component(spec: Mapping[str, Any], table: Mapping[str, type],
                     kind: str) -> None:
    if not isinstance(spec, Mapping) or "type" not in spec:
        raise ConfigurationError(
            f"{kind} spec must be a dict with a 'type' key")
    if spec["type"] not in table:
        known = ", ".join(sorted(table))
        raise ConfigurationError(
            f"unknown {kind} type {spec['type']!r} (known: {known})")


def _inject_arbiter_queues(spec: Mapping[str, Any],
                           num_queues: int) -> Dict[str, Any]:
    """Deep-copy an arbiter spec, defaulting ``num_queues`` at every level
    that accepts it (wrapper arbiters like ``intermittent`` carry an inner
    spec instead)."""
    out = _copy_spec(spec)
    params = out["params"]
    if "inner" in params and isinstance(params["inner"], Mapping):
        params["inner"] = _inject_arbiter_queues(params["inner"], num_queues)
    cls = ARBITER_TYPES.get(out["type"])
    if (cls is not None and accepts_param(cls, "num_queues")
            and "num_queues" not in params):
        params["num_queues"] = num_queues
    return out


@dataclass(frozen=True)
class SwitchScenario:
    """One fully specified multi-port switch workload.

    Attributes:
        name: registry key, also the CLI name.
        description: one line for ``python -m repro switch --list``.
        num_ports: ingress/egress port count ``N``.
        traffic: ingress-traffic spec dict, broadcast to every ingress port
            with injected per-ingress seeds.
        fabric: fabric-arbiter spec dict.
        ports: per-port buffer templates, cycled over the egress ports; each
            is ``{"scheme": ..., "buffer": {...}, "arbiter": {...}}``.
        num_slots: arrival slots to simulate (the fabric then flushes its
            VOQs and every port drains).
        seed: master seed; every ingress source, the fabric and every port
            scenario derive their own seed from it deterministically.
        tags: free-form labels.
    """

    name: str
    description: str
    num_ports: int
    traffic: Mapping[str, Any]
    fabric: Mapping[str, Any]
    ports: Tuple[Mapping[str, Any], ...]
    num_slots: int
    seed: int = 0
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.num_ports <= 0:
            raise ConfigurationError("num_ports must be positive")
        if self.num_slots < 0:
            raise ConfigurationError("num_slots must be non-negative")
        if not self.ports:
            raise ConfigurationError(
                "ports must name at least one port template")
        _check_component(self.traffic, INGRESS_TRAFFIC_TYPES, "ingress traffic")
        _check_component(self.fabric, FABRIC_TYPES, "fabric")
        for template in self.ports:
            scheme = template.get("scheme")
            if scheme not in SCHEMES:
                known = ", ".join(sorted(SCHEMES))
                raise ConfigurationError(
                    f"unknown port scheme {scheme!r} (known: {known})")
            if template.get("head_mma") is not None:
                _check_component(template["head_mma"], MMA_TYPES,
                                 "port head MMA")

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def port_spec(self, port: int) -> Dict[str, Any]:
        """The fully defaulted buffer/arbiter spec of egress ``port``.

        Templates are cycled (``ports[port % len(ports)]``) and their
        ``num_queues`` defaulted to the port count — one VOQ per ingress —
        unless the template pins its own.
        """
        template = self.ports[port % len(self.ports)]
        buffer = dict(template.get("buffer", {}))
        buffer.setdefault("num_queues", self.num_ports)
        arbiter = template.get("arbiter")
        if arbiter is not None:
            arbiter = _inject_arbiter_queues(arbiter, buffer["num_queues"])
        head_mma = template.get("head_mma")
        if head_mma is not None:
            head_mma = _copy_spec(head_mma)
        return {"scheme": template["scheme"], "buffer": buffer,
                "arbiter": arbiter, "head_mma": head_mma}

    def port_seed(self, port: int) -> int:
        """Deterministic per-port seed (also the per-ingress traffic seed)."""
        return self.seed + PORT_SEED_STRIDE * (port + 1)

    def build_fabric(self) -> FabricArbiter:
        cls = FABRIC_TYPES[self.fabric["type"]]
        params = dict(self.fabric.get("params", {}))
        if accepts_param(cls, "num_ports") and "num_ports" not in params:
            params["num_ports"] = self.num_ports
        if accepts_param(cls, "seed") and "seed" not in params:
            params["seed"] = self.seed + 0xFAB
        return cls(**params)

    def with_overrides(self,
                       num_ports: Optional[int] = None,
                       num_slots: Optional[int] = None) -> "SwitchScenario":
        """A copy with the CLI-style overrides applied (``None`` = keep)."""
        changes: Dict[str, Any] = {}
        if num_ports is not None:
            changes["num_ports"] = num_ports
        if num_slots is not None:
            changes["num_slots"] = num_slots
        return replace(self, **changes) if changes else self

    # ------------------------------------------------------------------ #
    # Spec round-trip
    # ------------------------------------------------------------------ #
    def to_spec(self) -> Dict[str, Any]:
        """JSON-serialisable dict from which :meth:`from_spec` rebuilds this
        scenario (the form that travels through the runner cache)."""
        return {
            "name": self.name,
            "description": self.description,
            "num_ports": self.num_ports,
            "traffic": _copy_spec(self.traffic),
            "fabric": _copy_spec(self.fabric),
            "ports": [
                {"scheme": t["scheme"],
                 "buffer": dict(t.get("buffer", {})),
                 "arbiter": (None if t.get("arbiter") is None
                             else _copy_spec(t["arbiter"])),
                 "head_mma": (None if t.get("head_mma") is None
                              else _copy_spec(t["head_mma"]))}
                for t in self.ports
            ],
            "num_slots": self.num_slots,
            "seed": self.seed,
            "tags": list(self.tags),
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "SwitchScenario":
        try:
            return cls(
                name=spec["name"],
                description=spec.get("description", ""),
                num_ports=spec["num_ports"],
                traffic=spec["traffic"],
                fabric=spec["fabric"],
                ports=tuple(spec["ports"]),
                num_slots=spec["num_slots"],
                seed=spec.get("seed", 0),
                tags=tuple(spec.get("tags", ())),
            )
        except KeyError as exc:
            raise ConfigurationError(f"switch scenario spec is missing key {exc}")
