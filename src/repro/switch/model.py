"""The multi-port switch model: fabric stage, sharded ports, merged report.

Execution is two-stage, which is what makes switch runs shardable:

1. **Fabric stage** (serial, cheap): every ingress port's traffic source is
   instantiated with a deterministic per-ingress seed; cells queue in
   per-ingress VOQs (one :class:`~repro.sim.ring.IntRing` of arrival slots
   per (ingress, egress) pair); the fabric arbiter computes one conflict-free
   matching per slot.  Because each egress accepts at most one cell per slot,
   the fabric's output is exactly ``N`` single-linecard arrival traces —
   the same admissibility model the paper's buffer assumes.  After the
   arrival phase the fabric *flushes*: matching continues without new
   arrivals until every VOQ is empty.

2. **Port stage** (parallel, dominant): each egress trace plus the port's
   buffer/arbiter template becomes an ordinary
   :class:`~repro.workloads.scenario.Scenario` (arrivals = a ``trace`` spec,
   queue index = source ingress modulo the port's queue count), executed as
   a :class:`~repro.runner.jobs.Job` through the existing
   :class:`~repro.runner.sweep.SweepRunner` — so ports shard across worker
   processes, results come back in port order, and the runner cache applies
   unchanged.  Ports run on the ``array`` engine by default.

Per-port :class:`~repro.workloads.scenario.ScenarioResult` objects merge
into a :class:`SwitchReport`; latency percentiles are computed over the
*merged* per-port histograms, so the aggregate tail is exact, not an average
of port tails.  The whole pipeline is deterministic: the same spec produces
the same ``SwitchReport`` for any ``--jobs`` value.
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import get_metrics
from repro.obs.trace import emit as trace_emit
from repro.runner.jobs import Job
from repro.runner.sweep import JobFailure, SweepRunner, default_jobs
from repro.sim.ring import IntRing
from repro.sim.stats import LatencyStats
from repro.switch.scenario import SwitchScenario
from repro.switch.traffic import build_ingress_traffic
from repro.workloads.scenario import Scenario, ScenarioResult

#: Job function executed per port — the single-port scenario runner, which is
#: the whole point: a switch port *is* the degenerate one-port case.
PORT_JOB_FUNC = "repro.workloads.scenario:run_scenario_spec"

#: Default engine for the port stage.
DEFAULT_ENGINE = "array"


@dataclass(frozen=True)
class FabricStats:
    """What the crossbar stage did, before any egress buffer saw a cell."""

    slots: int
    flush_slots: int
    offered_cells: int
    transferred_cells: int
    per_egress_cells: Tuple[int, ...]
    peak_voq_backlog: int
    wait_mean: float
    wait_max: int

    @property
    def total_slots(self) -> int:
        return self.slots + self.flush_slots


class FabricStream:
    """The crossbar stage as a stream of per-egress trace chunks.

    Instead of materialising every egress trace as one O(``total_slots``)
    list, the stage runs in bounded windows: each iteration of
    :meth:`chunks` yields ``(start_slot, chunk_traces)`` where
    ``chunk_traces[e][i]`` is the ingress whose cell entered egress ``e`` at
    slot ``start_slot + i`` (or ``None``).  Ingress arrival plans are drawn
    per window through
    :meth:`~repro.traffic.arrivals.ArrivalProcess.arrivals_slice`, so the
    concatenated chunks are bit-identical to the monolithic stage for every
    chunk size (each ingress owns its RNG) — :func:`run_fabric` is literally
    this stream plus concatenation.  After the arrival phase the stage
    flushes until every VOQ is empty, still in bounded windows;
    :attr:`stats` is available once the generator is exhausted.
    """

    def __init__(self, scenario: SwitchScenario,
                 num_slots: Optional[int] = None,
                 chunk_slots: Optional[int] = None) -> None:
        from repro.sim.streaming import DEFAULT_CHUNK_SLOTS

        n = scenario.num_ports
        self.scenario = scenario
        self.num_ports = n
        self.slots = scenario.num_slots if num_slots is None else num_slots
        self.chunk_slots = (chunk_slots if chunk_slots is not None
                            else DEFAULT_CHUNK_SLOTS)
        if self.chunk_slots <= 0:
            raise ConfigurationError("chunk_slots must be positive")
        self.sources = [build_ingress_traffic(scenario.traffic, n, i,
                                              seed=scenario.port_seed(i))
                        for i in range(n)]
        self.fabric = scenario.build_fabric()
        # voq[i][e]: arrival slots of cells waiting at ingress i for egress e.
        self._voq = [[IntRing() for _ in range(n)] for _ in range(n)]
        # requests[i]: ascending egress ports with a non-empty VOQ at
        # ingress i — maintained incrementally (a VOQ changes emptiness at
        # most twice per slot) instead of being rescanned O(N^2) every slot.
        self._requests: List[List[int]] = [[] for _ in range(n)]
        self._ingress_backlog = [0] * n
        self._per_egress = [0] * n
        self._waits = LatencyStats()
        self._offered = 0
        self._transferred = 0
        self._peak_backlog = 0
        self._backlog_total = 0
        #: Filled in once :meth:`chunks` is exhausted.
        self.stats: Optional[FabricStats] = None

    # ------------------------------------------------------------------ #
    def _transfer_slot(self, slot: int,
                       traces: List[List[Optional[int]]]) -> int:
        n = self.num_ports
        voq = self._voq
        requests = self._requests
        matches = self.fabric.match(slot, requests)
        matched_egress = [False] * n
        matched_ingress = [False] * n
        for ingress, egress in matches:
            ring = voq[ingress][egress]
            try:
                arrival_slot = ring.popleft()
            except IndexError:
                raise ConfigurationError(
                    f"fabric arbiter matched empty VOQ ({ingress}, {egress})")
            if matched_egress[egress]:
                raise ConfigurationError(
                    f"fabric arbiter matched egress {egress} twice in slot "
                    f"{slot}")
            if matched_ingress[ingress]:
                raise ConfigurationError(
                    f"fabric arbiter matched ingress {ingress} twice in slot "
                    f"{slot}")
            matched_egress[egress] = True
            matched_ingress[ingress] = True
            if not ring:
                requests[ingress].remove(egress)
            self._ingress_backlog[ingress] -= 1
            self._backlog_total -= 1
            self._waits.record_delay(slot - arrival_slot)
            traces[egress].append(ingress)
            self._per_egress[egress] += 1
            self._transferred += 1
        for egress in range(n):
            if not matched_egress[egress]:
                traces[egress].append(None)
        return len(matches)

    def chunks(self):
        """Yield ``(start_slot, chunk_traces)`` windows; arrival phase first,
        then the flush windows, all bounded by ``chunk_slots``."""
        n = self.num_ports
        slots = self.slots
        voq = self._voq
        requests = self._requests
        ingress_backlog = self._ingress_backlog
        start = 0
        while start < slots:
            count = min(self.chunk_slots, slots - start)
            plans = []
            for source in self.sources:
                plan = source.arrivals_slice(start, count)
                plans.append(plan if isinstance(plan, list) else list(plan))
            traces: List[List[Optional[int]]] = [[] for _ in range(n)]
            for offset in range(count):
                slot = start + offset
                for ingress in range(n):
                    destination = plans[ingress][offset]
                    if destination is None:
                        continue
                    if not 0 <= destination < n:
                        raise ConfigurationError(
                            f"ingress {ingress} generated destination "
                            f"{destination}, but the switch has only {n} "
                            f"ports")
                    ring = voq[ingress][destination]
                    if not ring:
                        insort(requests[ingress], destination)
                    ring.push(slot)
                    ingress_backlog[ingress] += 1
                    self._backlog_total += 1
                    self._offered += 1
                    if ingress_backlog[ingress] > self._peak_backlog:
                        self._peak_backlog = ingress_backlog[ingress]
                self._transfer_slot(slot, traces)
            yield start, traces
            start += count

        flush_slots = 0
        while self._backlog_total > 0:
            traces = [[] for _ in range(n)]
            flushed = 0
            while self._backlog_total > 0 and flushed < self.chunk_slots:
                if self._transfer_slot(slots + flush_slots, traces) == 0:
                    # Unreachable with the stock policies (all are
                    # work-conserving), but a custom arbiter must not be
                    # able to hang the stage.
                    raise ConfigurationError(
                        "fabric arbiter made no progress while VOQs were "
                        "non-empty")
                flush_slots += 1
                flushed += 1
            yield slots + flush_slots - flushed, traces

        self.stats = FabricStats(
            slots=slots,
            flush_slots=flush_slots,
            offered_cells=self._offered,
            transferred_cells=self._transferred,
            per_egress_cells=tuple(self._per_egress),
            peak_voq_backlog=self._peak_backlog,
            wait_mean=self._waits.mean,
            wait_max=self._waits.maximum,
        )
        obs = get_metrics()
        if obs is not None:
            obs.inc("switch.fabric.stages")
            obs.inc("switch.fabric.offered_cells", self._offered)
            obs.inc("switch.fabric.transferred_cells", self._transferred)
            obs.inc("switch.fabric.flush_slots", flush_slots)
            obs.gauge("switch.fabric.peak_voq_backlog", self._peak_backlog)
        trace_emit("fabric_stage", scenario=self.scenario.name,
                   ports=self.num_ports, slots=slots,
                   flush_slots=flush_slots, offered_cells=self._offered,
                   transferred_cells=self._transferred,
                   peak_voq_backlog=self._peak_backlog)


def run_fabric(scenario: SwitchScenario,
               num_slots: Optional[int] = None,
               ) -> Tuple[List[List[Optional[int]]], FabricStats]:
    """Run the crossbar stage and return per-egress source traces.

    Returns:
        ``(traces, stats)`` where ``traces[e][slot]`` is the *ingress index*
        whose cell entered egress ``e`` at ``slot`` (or ``None``), all traces
        sharing one length ``stats.total_slots``.
    """
    n = scenario.num_ports
    stream = FabricStream(scenario, num_slots)
    traces: List[List[Optional[int]]] = [[] for _ in range(n)]
    for _start, chunk_traces in stream.chunks():
        for egress, chunk in enumerate(chunk_traces):
            traces[egress].extend(chunk)
    return traces, stream.stats


def port_template(scenario: SwitchScenario, egress: int) -> Scenario:
    """The egress port as a single-port :class:`Scenario`, minus arrivals.

    The jobs path attaches the materialised fabric trace as a ``trace``
    arrival spec (:func:`port_scenarios`); the streaming path feeds the
    fabric chunks directly into an open-ended session.  Both build their
    buffer and arbiter from this one template, which is what keeps the two
    execution modes bit-identical.
    """
    spec = scenario.port_spec(egress)
    return Scenario(
        name=f"{scenario.name}#port{egress}",
        description=f"egress port {egress} of switch scenario "
                    f"{scenario.name!r}",
        scheme=spec["scheme"],
        buffer=spec["buffer"],
        arrivals=None,
        arbiter=spec["arbiter"],
        num_slots=0,
        seed=scenario.port_seed(egress) + 1,
        tags=("switch-port",) + scenario.tags,
        head_mma=spec["head_mma"],
    )


def port_scenarios(scenario: SwitchScenario,
                   traces: List[List[Optional[int]]]) -> List[Scenario]:
    """One single-port :class:`Scenario` per egress, fed its fabric trace.

    The trace's ingress indices become buffer queue indices (``ingress mod
    num_queues`` — one VOQ per source with the default sizing).
    """
    import dataclasses

    ports = []
    for egress, trace in enumerate(traces):
        template = port_template(scenario, egress)
        num_queues = template.buffer["num_queues"]
        pattern = [None if src is None else src % num_queues for src in trace]
        ports.append(dataclasses.replace(
            template,
            arrivals={"type": "trace", "params": {"pattern": pattern}},
            num_slots=len(pattern),
        ))
    return ports


# --------------------------------------------------------------------- #
# The merged report
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SwitchReport:
    """Everything a switch run produces: fabric stats plus per-port results.

    Aggregates are derived, never stored, so a report deserialised from the
    runner cache answers them identically to a fresh one.
    """

    name: str
    num_ports: int
    engine: str
    fabric: FabricStats
    ports: Tuple[ScenarioResult, ...]
    #: Ports whose job was quarantined by a non-strict runner, as structured
    #: :class:`~repro.runner.sweep.JobFailure` records.  Empty on a healthy
    #: run (and on every cached report written before this field existed).
    #: Aggregates below are computed over the *surviving* ports only — a
    #: partial report says so explicitly rather than pretending to totals.
    failures: Tuple[JobFailure, ...] = ()

    # -- aggregate counters ------------------------------------------- #
    @property
    def arrivals(self) -> int:
        return sum(p.arrivals for p in self.ports)

    @property
    def departures(self) -> int:
        return sum(p.departures for p in self.ports)

    @property
    def drops(self) -> int:
        return sum(p.drops for p in self.ports)

    @property
    def zero_miss(self) -> bool:
        return all(p.zero_miss for p in self.ports)

    def merged_latency(self) -> LatencyStats:
        """The exact switch-wide buffer-delay distribution (ports merged in
        port order; merging histograms is order-independent anyway)."""
        merged = LatencyStats()
        for port in self.ports:
            merged.merge(LatencyStats.from_histogram(port.latency_histogram))
        return merged

    @property
    def complete(self) -> bool:
        """True when every port produced a result (no quarantined jobs)."""
        return not self.failures

    def summary(self) -> Dict[str, object]:
        """Flat headline numbers — the rows the CLI renderer prints.

        A partial report (quarantined port jobs) gains a ``failed_ports``
        row; a complete one renders exactly as it always has.
        """
        latency = self.merged_latency()
        p50, p95, p99 = latency.percentiles((0.50, 0.95, 0.99))
        slots = self.fabric.total_slots
        if self.failures:
            return dict(self._summary_base(latency, p50, p95, p99, slots),
                        failed_ports=len(self.failures))
        return self._summary_base(latency, p50, p95, p99, slots)

    def _summary_base(self, latency, p50, p95, p99,
                      slots) -> Dict[str, object]:
        return {
            "ports": self.num_ports,
            "slots": self.fabric.slots,
            "flush_slots": self.fabric.flush_slots,
            "offered_cells": self.fabric.offered_cells,
            "transferred_cells": self.fabric.transferred_cells,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "drops": self.drops,
            "offered_load": self.fabric.offered_cells / slots if slots else 0.0,
            "carried_load": self.departures / slots if slots else 0.0,
            "fabric_wait_mean": self.fabric.wait_mean,
            "fabric_wait_max": self.fabric.wait_max,
            "peak_voq_backlog": self.fabric.peak_voq_backlog,
            "latency_mean": latency.mean,
            "latency_p50": p50,
            "latency_p95": p95,
            "latency_p99": p99,
            "latency_max": latency.maximum,
            "zero_miss": self.zero_miss,
        }


# --------------------------------------------------------------------- #
# The model
# --------------------------------------------------------------------- #

class SwitchModel:
    """Composes ``N`` per-port packet buffers behind a crossbar fabric.

    Args:
        scenario: the switch scenario to run (use
            :meth:`SwitchScenario.with_overrides` for ad-hoc port/slot
            overrides).
    """

    def __init__(self, scenario: SwitchScenario) -> None:
        self.scenario = scenario

    def build_port_jobs(self, engine: str = DEFAULT_ENGINE,
                        num_slots: Optional[int] = None,
                        ) -> Tuple[List[Job], FabricStats]:
        """Run the fabric stage and return one runner job per egress port,
        together with the fabric stage's statistics.

        Exposed separately so callers (the CLI's ``--dry-run``, tests) can
        inspect the sharding without executing the port stage.
        """
        traces, stats = run_fabric(self.scenario, num_slots)
        jobs = [Job(func=PORT_JOB_FUNC,
                    kwargs={"spec": port.to_spec(), "engine": engine},
                    tag=f"port{index}")
                for index, port in enumerate(
                    port_scenarios(self.scenario, traces))]
        return jobs, stats

    def run(self,
            *,
            engine: str = DEFAULT_ENGINE,
            jobs: int = 1,
            runner: Optional[SweepRunner] = None,
            num_slots: Optional[int] = None) -> SwitchReport:
        """Simulate the switch and merge the per-port reports.

        Args:
            engine: simulation core for every port (``array`` by default;
                all engines are bit-identical, so this is purely a speed
                knob).
            jobs: worker processes for the port stage (``0`` = one per CPU);
                ignored when an explicit ``runner`` is given.
            runner: an existing :class:`SweepRunner` (to share a cache);
                defaults to an uncached runner with ``jobs`` workers.
            num_slots: override the scenario's arrival-slot count.
        """
        started = time.perf_counter()
        port_jobs, stats = self.build_port_jobs(engine, num_slots)
        if runner is None:
            # Port jobs are uniform and known up front, so hand each worker
            # its whole share in one message (ceil(ports / workers)) instead
            # of one IPC round-trip per port.
            workers = jobs if jobs > 0 else default_jobs()
            chunk = max(1, -(-len(port_jobs) // workers))
            runner = SweepRunner(jobs=jobs, chunksize=chunk)
        results = runner.run(port_jobs)
        # A non-strict runner quarantines poisoned port jobs as JobFailure
        # entries; the merged report keeps them separate from the surviving
        # ports so aggregates stay well-typed and provenance is explicit.
        report = SwitchReport(
            name=self.scenario.name,
            num_ports=self.scenario.num_ports,
            engine=engine,
            fabric=stats,
            ports=tuple(r for r in results if not isinstance(r, JobFailure)),
            failures=tuple(r for r in results if isinstance(r, JobFailure)))
        self._observe_run(report, "jobs", time.perf_counter() - started)
        return report

    def run_stream(self,
                   *,
                   engine: str = DEFAULT_ENGINE,
                   num_slots: Optional[int] = None,
                   chunk_slots: Optional[int] = None) -> SwitchReport:
        """Simulate the switch with bounded memory: the fabric stage streams
        per-egress trace chunks (:class:`FabricStream`) straight into one
        open-ended port session per egress, so no egress trace — and no port
        arrival plan — is ever materialised whole.  Peak memory is
        O(``ports * chunk_slots``), independent of the horizon, and the
        merged report is bit-identical to :meth:`run` for every chunk size.
        """
        from repro.sim.engine import ClosedLoopSimulation
        from repro.sim.streaming import StreamingSimulation

        started = time.perf_counter()
        scenario = self.scenario
        stream = FabricStream(scenario, num_slots, chunk_slots)
        templates = [port_template(scenario, egress)
                     for egress in range(scenario.num_ports)]
        sessions = []
        for template in templates:
            sim = ClosedLoopSimulation(template.build_buffer(), None,
                                       template.build_arbiter())
            sessions.append(StreamingSimulation(sim, None, engine=engine,
                                                chunk_slots=chunk_slots))
        queue_counts = [t.buffer["num_queues"] for t in templates]
        for _start, chunk_traces in stream.chunks():
            for egress, chunk in enumerate(chunk_traces):
                num_queues = queue_counts[egress]
                sessions[egress].feed(
                    [None if src is None else src % num_queues
                     for src in chunk])
        ports = tuple(
            ScenarioResult.from_report(template.name, template.scheme,
                                       session.finish())
            for template, session in zip(templates, sessions))
        report = SwitchReport(name=scenario.name,
                              num_ports=scenario.num_ports,
                              engine=engine,
                              fabric=stream.stats,
                              ports=ports)
        self._observe_run(report, "stream", time.perf_counter() - started)
        return report

    @staticmethod
    def _observe_run(report: SwitchReport, mode: str,
                     duration: float) -> None:
        """Publish what a completed switch run did (pure recording: runs
        after every port report exists, so it cannot perturb one)."""
        obs = get_metrics()
        if obs is not None:
            obs.inc("switch.runs")
            obs.inc("switch.port_reports", report.num_ports)
            obs.observe("switch.run_s", duration)
        trace_emit("switch_run", scenario=report.name, mode=mode,
                   ports=report.num_ports, engine=report.engine,
                   arrivals=report.arrivals, departures=report.departures,
                   drops=report.drops, duration_s=round(duration, 6))


def run_switch_spec(spec: Mapping[str, Any],
                    engine: str = DEFAULT_ENGINE,
                    jobs: int = 1,
                    num_ports: Optional[int] = None,
                    num_slots: Optional[int] = None) -> SwitchReport:
    """Job entry point: rebuild the switch scenario from its spec and run it.

    This is what the ``switch-suite`` experiment executes per scenario; the
    port stage runs serially inside the worker (``jobs=1``) because the
    outer sweep already parallelises across scenarios.
    """
    scenario = SwitchScenario.from_spec(spec).with_overrides(
        num_ports=num_ports, num_slots=num_slots)
    return SwitchModel(scenario).run(engine=engine, jobs=jobs)


__all__ = [
    "DEFAULT_ENGINE",
    "FabricStats",
    "FabricStream",
    "PORT_JOB_FUNC",
    "SwitchModel",
    "SwitchReport",
    "port_scenarios",
    "port_template",
    "run_fabric",
    "run_switch_spec",
]
