"""Crossbar fabric arbiters: per-slot ingress/egress matching policies.

A switch slot moves at most one cell out of each ingress port and at most one
cell into each egress port.  When several ingress VOQs hold cells for the
same egress, a *fabric arbiter* computes a conflict-free matching.  All
policies here are single-iteration request/grant/accept schedulers over the
same inputs:

* ``requests[i]`` — the egress ports ingress ``i`` holds cells for (its
  non-empty VOQs), in ascending order;
* *grant* — each requested egress selects one requesting ingress;
* *accept* — each ingress holding one or more grants selects one.

The three stock policies differ only in the selection rule:

* :class:`ISLIPFabricArbiter` — iSLIP-style rotating-priority pointers, one
  grant pointer per egress and one accept pointer per ingress, advanced past
  the matched partner **only on accepted grants** (the desynchronisation rule
  that gives iSLIP its 100%-throughput behaviour under uniform traffic);
* :class:`RandomFabricArbiter` — uniformly random grant and accept draws
  from a seeded RNG (PIM-style);
* :class:`PriorityFabricArbiter` — static lowest-index-first selection;
  deterministic and starvation-prone by design (an adversarial baseline).

Every policy is work-conserving in the single-match sense: whenever any VOQ
is non-empty at least one (ingress, egress) pair is matched, which is what
guarantees the fabric flush after the arrival phase terminates.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

Match = Tuple[int, int]


class FabricArbiter(abc.ABC):
    """Interface of every crossbar matching policy."""

    def __init__(self, num_ports: int) -> None:
        if num_ports <= 0:
            raise ConfigurationError("num_ports must be positive")
        self.num_ports = num_ports

    @abc.abstractmethod
    def match(self, slot: int,
              requests: Sequence[Sequence[int]]) -> List[Match]:
        """Compute this slot's matching.

        Args:
            slot: the current slot number.
            requests: per-ingress ascending lists of requested egress ports
                (the ingress's non-empty VOQs); an empty list means the
                ingress has nothing to send.

        Returns:
            ``(ingress, egress)`` pairs with every ingress and every egress
            appearing at most once, each pair drawn from ``requests``.
        """

    # ------------------------------------------------------------------ #
    def _granted(self, requests: Sequence[Sequence[int]]) -> List[List[int]]:
        """Invert per-ingress requests into per-egress requester lists."""
        requesting: List[List[int]] = [[] for _ in range(self.num_ports)]
        for ingress, egresses in enumerate(requests):
            for egress in egresses:
                if not 0 <= egress < self.num_ports:
                    raise ConfigurationError(
                        f"ingress {ingress} requests egress {egress}, but the "
                        f"switch has only {self.num_ports} ports")
                requesting[egress].append(ingress)
        return requesting


class ISLIPFabricArbiter(FabricArbiter):
    """Single-iteration iSLIP: rotating grant and accept pointers.

    Each egress grants the requesting ingress closest at-or-after its grant
    pointer; each ingress accepts the granting egress closest at-or-after its
    accept pointer.  Pointers advance one past the matched partner only when
    the grant was accepted, so under persistent contention the egress
    pointers desynchronise and the matching converges to a round-robin
    schedule with full crossbar utilisation.
    """

    def __init__(self, num_ports: int) -> None:
        super().__init__(num_ports)
        self._grant = [0] * num_ports
        self._accept = [0] * num_ports

    def _first_from(self, candidates: Sequence[int], pointer: int) -> int:
        """The candidate closest at-or-after ``pointer`` (wrapping).

        ``candidates`` is ascending, so the answer is its first element
        ``>= pointer``, falling back to the overall first on wrap — no
        modular distance needs computing.
        """
        for candidate in candidates:
            if candidate >= pointer:
                return candidate
        return candidates[0]

    def match(self, slot: int,
              requests: Sequence[Sequence[int]]) -> List[Match]:
        grants: Dict[int, List[int]] = {}
        for egress, requesters in enumerate(self._granted(requests)):
            if requesters:
                ingress = self._first_from(requesters, self._grant[egress])
                grants.setdefault(ingress, []).append(egress)
        matches: List[Match] = []
        for ingress in sorted(grants):
            egress = self._first_from(grants[ingress], self._accept[ingress])
            matches.append((ingress, egress))
            self._grant[egress] = (ingress + 1) % self.num_ports
            self._accept[ingress] = (egress + 1) % self.num_ports
        return matches


class RandomFabricArbiter(FabricArbiter):
    """PIM-style random matching: every grant and accept is a uniform draw
    from a seeded RNG, so runs are reproducible per seed."""

    def __init__(self, num_ports: int, seed: int = 0) -> None:
        super().__init__(num_ports)
        self._rng = random.Random(seed)

    def match(self, slot: int,
              requests: Sequence[Sequence[int]]) -> List[Match]:
        grants: Dict[int, List[int]] = {}
        for egress, requesters in enumerate(self._granted(requests)):
            if requesters:
                ingress = self._rng.choice(requesters)
                grants.setdefault(ingress, []).append(egress)
        return [(ingress, self._rng.choice(grants[ingress]))
                for ingress in sorted(grants)]


class PriorityFabricArbiter(FabricArbiter):
    """Static priority: the lowest-index requester wins every conflict.

    Useful both as the simplest deterministic policy and as an adversarial
    baseline — under sustained contention it starves high-index ports, which
    shows up directly in the per-port latency spread of a
    :class:`~repro.switch.model.SwitchReport`.
    """

    def match(self, slot: int,
              requests: Sequence[Sequence[int]]) -> List[Match]:
        grants: Dict[int, List[int]] = {}
        for egress, requesters in enumerate(self._granted(requests)):
            if requesters:
                grants.setdefault(min(requesters), []).append(egress)
        return [(ingress, min(grants[ingress])) for ingress in sorted(grants)]


#: Fabric arbiter factories, keyed by the type string used in switch specs.
FABRIC_TYPES: Dict[str, type] = {
    "islip": ISLIPFabricArbiter,
    "priority": PriorityFabricArbiter,
    "random": RandomFabricArbiter,
}
