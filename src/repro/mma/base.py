"""Interface shared by all head Memory Management Algorithms."""

from __future__ import annotations

import abc
from typing import Optional, Sequence


class HeadMMA(abc.ABC):
    """A head MMA selects which queue to replenish from DRAM.

    The MMA is invoked once per granularity period (every ``B`` slots in RADS,
    every ``b`` slots in CFDS) with:

    * ``counters`` — the bookkeeping occupancy of every queue (cells already
      in, or committed to, the head SRAM and not yet promised to the arbiter);
    * ``lookahead`` — the pending arbiter requests, head first, where each
      element is a queue index or ``None`` for an idle slot.

    It returns the queue to replenish, or ``None`` if no replenishment is
    needed this period.
    """

    #: Human-readable policy name (used in statistics and reports).
    name: str = "mma"

    @abc.abstractmethod
    def select(self,
               counters: Sequence[int],
               lookahead: Sequence[Optional[int]]) -> Optional[int]:
        """Return the queue index to replenish, or ``None``."""

    # ------------------------------------------------------------------ #
    # Shared helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def simulate_drain(counters: Sequence[int],
                       lookahead: Sequence[Optional[int]]) -> list:
        """Return the counters after (virtually) serving every request in the
        lookahead, in order.  Negative values mean the queue would run dry
        before the corresponding request is reached."""
        result = list(counters)
        for queue in lookahead:
            if queue is None:
                continue
            result[queue] -= 1
        return result
