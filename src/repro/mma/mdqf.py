"""Most Deficit Queue First (MDQF) head MMA.

MDQF is the other end of the lookahead/SRAM trade-off studied in [13] and
referenced by the paper ("Other MMAs reduce the required lookahead and in turn
pay the cost by having to increase SRAM size"): instead of looking far ahead
for the queue that will become critical first, it replenishes the queue with
the largest *deficit* — outstanding requests minus available cells — which
works even with a very short (or empty) lookahead but needs an SRAM of roughly
``Q·B·(2 + ln Q)`` cells.

It is included as a baseline for the ablation benchmarks comparing MMA
policies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mma.base import HeadMMA


class MDQF(HeadMMA):
    """Most Deficit Queue First."""

    name = "mdqf"

    def select(self,
               counters: Sequence[int],
               lookahead: Sequence[Optional[int]]) -> Optional[int]:
        demand = [0] * len(counters)
        for queue in lookahead:
            if queue is None:
                continue
            demand[queue] += 1
        best_queue: Optional[int] = None
        best_deficit: Optional[int] = None
        for queue, count in enumerate(counters):
            deficit = demand[queue] - count
            if best_deficit is None or deficit > best_deficit:
                best_deficit = deficit
                best_queue = queue
        # Replenishing a queue with no demand and plenty of cells is useless;
        # signal "nothing to do" instead.
        if best_deficit is not None and best_deficit <= 0 and not any(demand):
            return None
        return best_queue
