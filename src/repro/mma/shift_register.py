"""Fixed-length shift register used for the lookahead and latency delays."""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class ShiftRegister(Generic[T]):
    """A shift register of fixed length ``length``.

    Every call to :meth:`shift` pushes one item in at the tail and returns the
    item that falls out of the head, so an item experiences exactly
    ``length`` shifts of delay.  Empty positions hold ``None`` (a "bubble"):
    this is how slots in which the arbiter issues no request are represented.

    A ``length`` of zero degenerates to a wire: :meth:`shift` returns its
    argument immediately.
    """

    def __init__(self, length: int) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        self.length = length
        self._slots: Deque[Optional[T]] = deque([None] * length, maxlen=length or None)

    def shift(self, item: Optional[T] = None) -> Optional[T]:
        """Insert ``item`` at the tail; return the item leaving the head."""
        if self.length == 0:
            return item
        head = self._slots[0]
        self._slots.popleft()
        self._slots.append(item)
        return head

    def contents(self) -> List[Optional[T]]:
        """Snapshot of the register from head (served soonest) to tail."""
        return list(self._slots)

    def occupied(self) -> List[T]:
        """The non-bubble items, head first."""
        return [item for item in self._slots if item is not None]

    def count(self) -> int:
        """Number of non-bubble items currently in the register."""
        return sum(1 for item in self._slots if item is not None)

    def __iter__(self) -> Iterator[Optional[T]]:
        return iter(self._slots)

    def __len__(self) -> int:
        return self.length
