"""Per-queue occupancy counters used by the MMAs."""

from __future__ import annotations

from typing import Dict, List


class OccupancyCounters:
    """The per-queue counters the head MMA reasons about.

    Important subtlety from the paper (Section 5.2): these counters are a
    *bookkeeping* view, not the physical SRAM occupancy.  A counter is
    incremented by the transfer granularity as soon as the MMA decides to
    replenish a queue (even though the cells arrive several slots later), and
    decremented when a request leaves the lookahead register (even though in
    CFDS the cell is only handed to the arbiter after the additional latency
    register).  The zero-miss argument is made on this bookkeeping view; the
    simulators check that the physical SRAM then never actually misses.
    """

    def __init__(self, num_queues: int, initial: int = 0) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        if initial < 0:
            raise ValueError("initial occupancy cannot be negative")
        self.num_queues = num_queues
        self._counts: List[int] = [initial] * num_queues

    def get(self, queue: int) -> int:
        self._check(queue)
        return self._counts[queue]

    def add(self, queue: int, amount: int) -> None:
        """Credit ``queue`` with ``amount`` cells (a replenishment decision)."""
        self._check(queue)
        self._counts[queue] += amount

    def consume(self, queue: int, amount: int = 1) -> None:
        """Debit ``queue`` by ``amount`` cells (requests leaving the lookahead)."""
        self._check(queue)
        self._counts[queue] -= amount

    def snapshot(self) -> List[int]:
        """Copy of all counters (used by MMAs to simulate future requests)."""
        return list(self._counts)

    def as_dict(self) -> Dict[int, int]:
        return {q: c for q, c in enumerate(self._counts)}

    def total(self) -> int:
        return sum(self._counts)

    def min_queue(self) -> int:
        """Queue with the lowest counter (ties broken by lowest index)."""
        return min(range(self.num_queues), key=lambda q: (self._counts[q], q))

    def negative_queues(self) -> List[int]:
        """Queues whose bookkeeping occupancy has gone negative (should never
        happen in a correctly dimensioned system)."""
        return [q for q, c in enumerate(self._counts) if c < 0]

    def _check(self, queue: int) -> None:
        if not 0 <= queue < self.num_queues:
            raise ValueError(f"queue {queue} out of range (0..{self.num_queues - 1})")

    def __len__(self) -> int:
        return self.num_queues
