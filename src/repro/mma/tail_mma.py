"""Tail-side Memory Management Algorithm.

The tail MMA is much simpler than the head MMA (Section 3): every granularity
period it may evict one block of ``B`` (or ``b``) cells from the tail SRAM to
DRAM, and it must guarantee the tail SRAM never fills up before the DRAM does.
The paper's policy: "transfer B cells to DRAM from any queue with an occupancy
counter higher than or equal to B"; with that policy a tail SRAM of
``Q(B-1) + B`` cells suffices.
"""

from __future__ import annotations

from typing import Optional, Sequence


class ThresholdTailMMA:
    """Evict a block from any queue holding at least one full block.

    Among eligible queues the one with the largest occupancy is chosen (this
    drains the most loaded queue first and is the natural tie-break; any
    eligible queue preserves the guarantee).
    """

    name = "threshold-tail"

    def __init__(self, granularity: int) -> None:
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity

    def select(self, occupancy: Sequence[int]) -> Optional[int]:
        """Return the queue to evict a block from, or ``None`` if no queue
        holds a full block."""
        best_queue: Optional[int] = None
        best_occupancy = self.granularity - 1
        for queue, count in enumerate(occupancy):
            if count > best_occupancy:
                best_occupancy = count
                best_queue = queue
        return best_queue

    @staticmethod
    def required_sram_cells(num_queues: int, granularity: int) -> int:
        """Tail SRAM size that guarantees no premature loss: each queue can
        hold at most ``B-1`` unevictable cells, plus one block being formed."""
        return num_queues * (granularity - 1) + granularity
