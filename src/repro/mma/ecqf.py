"""Earliest Critical Queue First (ECQF) head MMA.

This is the policy the paper adopts from Iyer et al. [13] because it minimises
the SRAM size: walk the lookahead register from head to tail, virtually
serving each request; the first queue whose (bookkeeping) occupancy would go
negative is *critical* — it is the queue that will run dry soonest — and it is
the one replenished.

With a lookahead of ``Q(B-1)+1`` slots there is always at least one critical
queue whenever the system is busy, and an SRAM of ``Q(B-1)`` cells plus the
in-flight block suffices for zero misses.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mma.base import HeadMMA


class ECQF(HeadMMA):
    """Earliest Critical Queue First.

    Args:
        fallback_to_most_deficit: when no queue is critical within the
            lookahead (which can happen with lookaheads shorter than
            ``Q(B-1)+1`` or under light load), optionally replenish the queue
            with the largest deficit instead of doing nothing.  The paper's
            dimensioning assumes the maximal lookahead where this never
            matters; the fallback makes the policy robust for the shorter
            lookaheads swept in Figure 8/10.
    """

    name = "ecqf"

    def __init__(self, *, fallback_to_most_deficit: bool = True) -> None:
        self.fallback_to_most_deficit = fallback_to_most_deficit

    def select(self,
               counters: Sequence[int],
               lookahead: Sequence[Optional[int]]) -> Optional[int]:
        # A queue whose bookkeeping occupancy is already negative has unmet
        # requests that are *older* than anything still in the lookahead (they
        # are travelling through the latency register), so it is the earliest
        # critical queue by definition.  This cannot happen in the paper's
        # worst-case model (the sizing guarantees replenishment before a
        # request leaves the lookahead) but can in a closed-loop system with
        # short queues and partial block transfers.
        negative = [q for q, count in enumerate(counters) if count < 0]
        if negative:
            return min(negative, key=lambda q: (counters[q], q))
        remaining = list(counters)
        for queue in lookahead:
            if queue is None:
                continue
            remaining[queue] -= 1
            if remaining[queue] < 0:
                return queue
        if not self.fallback_to_most_deficit:
            return None
        return self._most_deficit(counters, lookahead)

    @staticmethod
    def _most_deficit(counters: Sequence[int],
                      lookahead: Sequence[Optional[int]]) -> Optional[int]:
        """Queue with the largest (requests-in-lookahead - occupancy) margin.

        Only queues that actually appear in the lookahead are considered —
        replenishing an unrequested queue cannot help and may pollute the
        SRAM — and only if their demand actually exceeds their stock; fetching
        for a queue that already holds enough cells would needlessly inflate
        the SRAM occupancy.  Returns ``None`` when there is nothing useful to
        do.
        """
        demand = {}
        for queue in lookahead:
            if queue is None:
                continue
            demand[queue] = demand.get(queue, 0) + 1
        if not demand:
            return None
        best = max(demand, key=lambda q: (demand[q] - counters[q], -q))
        if demand[best] - counters[best] <= 0:
            return None
        return best
