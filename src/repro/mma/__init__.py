"""Memory Management Algorithms (MMAs) and their supporting registers.

The MMA is the piece of the hybrid buffer that decides, every granularity
period, which queue's block should be moved between DRAM and SRAM:

* the *tail* MMA evicts blocks from the tail SRAM to DRAM so the tail SRAM
  never overflows before the DRAM does;
* the *head* MMA prefetches blocks from DRAM into the head SRAM so the
  arbiter's requests never miss.

The paper (following Iyer et al. [13]) uses the Earliest Critical Queue First
(ECQF) policy for the head MMA together with a *lookahead* shift register that
delays requests long enough for the MMA to react.  This package provides:

* :class:`~repro.mma.shift_register.ShiftRegister` — the generic fixed-delay
  shift register used for the lookahead and for CFDS's latency register;
* :class:`~repro.mma.occupancy.OccupancyCounters` — the per-queue counters the
  MMA reasons about;
* :class:`~repro.mma.ecqf.ECQF` — the paper's head MMA;
* :class:`~repro.mma.mdqf.MDQF` — the most-deficit-queue-first variant
  (smaller lookahead, larger SRAM), included as the paper's reference point
  for the lookahead/SRAM trade-off;
* :class:`~repro.mma.tail_mma.ThresholdTailMMA` — the simple tail policy the
  paper describes ("transfer B cells to DRAM from any queue with occupancy
  >= B").
"""

from repro.mma.shift_register import ShiftRegister
from repro.mma.occupancy import OccupancyCounters
from repro.mma.base import HeadMMA
from repro.mma.ecqf import ECQF
from repro.mma.mdqf import MDQF
from repro.mma.tail_mma import ThresholdTailMMA

__all__ = [
    "ShiftRegister",
    "OccupancyCounters",
    "HeadMMA",
    "ECQF",
    "MDQF",
    "ThresholdTailMMA",
]
