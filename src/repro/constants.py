"""Physical and architectural constants shared across the packet-buffer models.

The paper (Garcia et al., MICRO-36 2003) fixes a small set of system-wide
assumptions in its Section 2 ("System assumptions"):

* packets are segmented into fixed 64-byte *cells*;
* the buffer operates synchronously in *slots*, one cell transmission time at
  the line rate;
* the packet buffer bandwidth is twice the line rate (input-queued router:
  every cell is written once and read once);
* commodity DRAM has a random access time of roughly 48 ns (the value the
  paper uses when deriving granularities B = 8 for OC-768 and B = 32 for
  OC-3072);
* the rule-of-thumb buffer capacity is ``round-trip time x line rate`` with a
  0.2 s round-trip time.

Everything in this module is a plain number or a tiny helper function so the
rest of the library can share a single source of truth for these assumptions.
"""

from __future__ import annotations

import math

#: Size of a cell (the fixed-length unit packets are segmented into), in bytes.
CELL_SIZE_BYTES: int = 64

#: Size of a cell in bits.
CELL_SIZE_BITS: int = CELL_SIZE_BYTES * 8

#: Default commodity DRAM random access ("random cycle") time used by the
#: paper when dimensioning granularities, in nanoseconds.
DEFAULT_DRAM_RANDOM_ACCESS_NS: float = 48.0

#: Default Internet round-trip-time estimate used to size the DRAM buffer, in
#: seconds (Section 2, "Buffer size").
DEFAULT_ROUND_TRIP_TIME_S: float = 0.2

#: Line rates (bits per second) for the SONET/SDH designations the paper uses.
OC_LINE_RATES_BPS: dict = {
    "OC-3": 155.52e6,
    "OC-12": 622.08e6,
    "OC-48": 2.48832e9,
    "OC-192": 10e9,
    "OC-768": 40e9,
    "OC-3072": 160e9,
}

#: Number of logical queues the paper assumes for each headline configuration.
PAPER_QUEUES = {
    "OC-768": 128,
    "OC-3072": 512,
}

#: RADS granularity (cells per DRAM access) the paper derives for each
#: headline configuration, assuming DEFAULT_DRAM_RANDOM_ACCESS_NS.
PAPER_GRANULARITY = {
    "OC-768": 8,
    "OC-3072": 32,
}

#: Number of DRAM banks assumed in the CFDS evaluation (Section 8.3).
PAPER_NUM_BANKS: int = 256

#: Access-time budget for the OC-3072 SRAM (one cell every 3.2 ns).
OC3072_ACCESS_TIME_BUDGET_NS: float = 3.2

#: Access-time budget for the OC-768 SRAM (one cell every 12.8 ns).
OC768_ACCESS_TIME_BUDGET_NS: float = 12.8


def slot_time_s(line_rate_bps: float) -> float:
    """Return the duration of one time slot (one cell time) in seconds.

    A slot is the transmission time of a 64-byte cell at the line rate; e.g.
    3.2 ns at OC-3072 and 12.8 ns at OC-768.
    """
    if line_rate_bps <= 0:
        raise ValueError(f"line rate must be positive, got {line_rate_bps}")
    return CELL_SIZE_BITS / line_rate_bps


def slot_time_ns(line_rate_bps: float) -> float:
    """Return the duration of one time slot in nanoseconds."""
    return slot_time_s(line_rate_bps) * 1e9


def required_buffer_bytes(line_rate_bps: float,
                          round_trip_time_s: float = DEFAULT_ROUND_TRIP_TIME_S) -> int:
    """Rule-of-thumb DRAM buffer capacity: RTT x line rate, in bytes."""
    if round_trip_time_s <= 0:
        raise ValueError("round trip time must be positive")
    return int(math.ceil(line_rate_bps * round_trip_time_s / 8.0))


def rads_granularity(line_rate_bps: float,
                     dram_random_access_ns: float = DEFAULT_DRAM_RANDOM_ACCESS_NS,
                     *,
                     round_to_power_of_two: bool = True) -> int:
    """Return the RADS granularity ``B`` (cells per DRAM access).

    The memory must serve one write and one read per slot (input-queued
    buffer: bandwidth is twice the line rate), so one DRAM access window is
    half a slot.  ``B`` is the number of cells that must be moved per random
    access to keep up:

        B = ceil(T_RC / (slot / 2))

    With T_RC = 48 ns this yields 8 at OC-768 (12.8 ns slots) and 32 at
    OC-3072 (3.2 ns slots), matching the paper (after rounding up to a power
    of two, which is what the paper's address-mapping hardware assumes).
    """
    if dram_random_access_ns <= 0:
        raise ValueError("DRAM random access time must be positive")
    slot_ns = slot_time_ns(line_rate_bps)
    raw = int(math.ceil(dram_random_access_ns / (slot_ns / 2.0)))
    raw = max(raw, 1)
    if round_to_power_of_two:
        return next_power_of_two(raw)
    return raw


def next_power_of_two(value: int) -> int:
    """Return the smallest power of two that is >= ``value`` (and >= 1)."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
