"""``python -m repro`` — reproduce the paper's tables and figures."""

import sys

from repro.runner.cli import main

if __name__ == "__main__":
    sys.exit(main())
