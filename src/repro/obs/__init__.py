"""Run observability: metrics registry, structured traces, perf trajectory.

An always-available, zero-overhead-when-disabled layer threaded through
every execution path:

* :mod:`repro.obs.metrics` — counters/gauges/timing accumulators engines,
  streaming, the switch fabric, the sweep runner and the result cache
  publish into; disabled by default, enabled by ``--metrics`` or
  :func:`enable_metrics`.
* :mod:`repro.obs.trace` — timestamped NDJSON run-trace events
  (``--trace-out trace.ndjson``) plus the ``repro trace summarize``
  inspector.
* :mod:`repro.obs.compare` — ``repro bench --compare`` snapshot diffing
  with a direction-aware ``--fail-on-regression`` gate.
* :mod:`repro.obs.profile` — cProfile hot-frame capture for
  ``repro bench --profile``.

The layer's hard invariant: enabling any of it never touches an RNG stream
and never changes a report — pinned by the differential fuzzer running with
metrics enabled.
"""

from repro.obs.compare import (
    BenchCompareError,
    compare_documents,
    load_bench_document,
    ratio_direction,
    ratio_regressions,
    render_compare,
)
from repro.obs.metrics import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    render_metrics,
    using_metrics,
)
from repro.obs.profile import profile_call, render_profile
from repro.obs.trace import (
    TraceWriter,
    emit,
    get_trace,
    read_events,
    render_trace_summary,
    set_trace,
    summarize_trace,
    using_trace,
)

__all__ = [
    "BenchCompareError",
    "MetricsRegistry",
    "TraceWriter",
    "compare_documents",
    "disable_metrics",
    "emit",
    "enable_metrics",
    "get_metrics",
    "get_trace",
    "load_bench_document",
    "profile_call",
    "ratio_direction",
    "ratio_regressions",
    "read_events",
    "render_compare",
    "render_metrics",
    "render_profile",
    "render_trace_summary",
    "set_trace",
    "summarize_trace",
    "using_metrics",
    "using_trace",
]
