"""The metrics registry: counters, gauges and timing accumulators.

Every execution path — the closed-loop engines, the streaming driver, the
switch fabric stage, the sweep runner, the result cache — publishes into the
*active* registry when one is installed.  When none is installed (the
default), every publish site short-circuits on a single ``None`` check, so
an uninstrumented run pays nothing measurable; and because instrumentation
sits at run/chunk/job granularity (never inside per-slot loops) an
*instrumented* run is within noise too.

The hard invariant of the whole observability layer: **enabling metrics
never touches an RNG stream and never changes a report**.  The registry
records plain numbers about work already decided; it draws no randomness and
feeds nothing back into any simulation.  The differential fuzzer runs with
metrics enabled to pin this.

Three metric kinds:

* **counters** — monotonically increasing numbers (``cache.hits``,
  ``stream.slots``).  Merged by addition.
* **gauges** — last-written value plus the running peak
  (``switch.fabric.peak_voq_backlog``).  Merged by keeping the later last
  value and the larger peak.
* **timers** — duration accumulators (``stream.chunk_s``): count, total,
  min, max seconds.  Merged field-wise.

Snapshots are plain JSON-serialisable dicts; :meth:`MetricsRegistry.restore`
merges a snapshot *into* a registry, which is what lets streaming checkpoint
state carry metric totals across a crash/resume (the snapshot rides inside
the checkpoint envelope) and lets per-session registries fold into the
global one.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Dict, Iterator, Mapping, Optional

__all__ = [
    "MetricsRegistry",
    "disable_metrics",
    "enable_metrics",
    "get_metrics",
    "render_metrics",
    "using_metrics",
]


class MetricsRegistry:
    """An in-process store of named counters, gauges and timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, Dict[str, float]] = {}
        self._timers: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record ``value`` as gauge ``name``'s last value; track the peak."""
        entry = self._gauges.get(name)
        if entry is None:
            self._gauges[name] = {"last": value, "peak": value}
        else:
            entry["last"] = value
            if value > entry["peak"]:
                entry["peak"] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample into timer ``name``."""
        entry = self._timers.get(name)
        if entry is None:
            self._timers[name] = {"count": 1, "total_s": seconds,
                                  "min_s": seconds, "max_s": seconds}
        else:
            entry["count"] += 1
            entry["total_s"] += seconds
            if seconds < entry["min_s"]:
                entry["min_s"] = seconds
            if seconds > entry["max_s"]:
                entry["max_s"] = seconds

    @contextlib.contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager timing its body into timer ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, float]:
        """All counters, copied."""
        return dict(self._counters)

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as one JSON-serialisable dict."""
        return {
            "counters": dict(self._counters),
            "gauges": {name: dict(entry)
                       for name, entry in self._gauges.items()},
            "timers": {name: dict(entry)
                       for name, entry in self._timers.items()},
        }

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._timers)

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Merge ``snapshot`` (from :meth:`snapshot`) into this registry.

        Counters add, gauge peaks take the maximum (the snapshot's last
        value wins as the newer write), timers merge field-wise — so
        restoring a checkpointed snapshot into a fresh registry reproduces
        cumulative totals.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, entry in snapshot.get("gauges", {}).items():
            current = self._gauges.get(name)
            if current is None:
                self._gauges[name] = {"last": entry["last"],
                                      "peak": entry["peak"]}
            else:
                current["last"] = entry["last"]
                if entry["peak"] > current["peak"]:
                    current["peak"] = entry["peak"]
        for name, entry in snapshot.get("timers", {}).items():
            current = self._timers.get(name)
            if current is None:
                self._timers[name] = dict(entry)
            else:
                current["count"] += entry["count"]
                current["total_s"] += entry["total_s"]
                if entry["min_s"] < current["min_s"]:
                    current["min_s"] = entry["min_s"]
                if entry["max_s"] > current["max_s"]:
                    current["max_s"] = entry["max_s"]

    def clear(self) -> None:
        """Drop every metric."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, timers={len(self._timers)})")


# --------------------------------------------------------------------- #
# The active registry
# --------------------------------------------------------------------- #

_active: Optional[MetricsRegistry] = None


def get_metrics() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when metrics are disabled.

    This is the only call instrumented code makes on the disabled path —
    one module-global read — which is what "zero overhead when disabled"
    means in practice.
    """
    return _active


def enable_metrics(registry: Optional[MetricsRegistry] = None
                   ) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable_metrics() -> Optional[MetricsRegistry]:
    """Deactivate metrics collection; returns the registry that was active."""
    global _active
    previous = _active
    _active = None
    return previous


@contextlib.contextmanager
def using_metrics(registry: Optional[MetricsRegistry] = None
                  ) -> Iterator[MetricsRegistry]:
    """Temporarily install a registry (context manager)."""
    global _active
    previous = _active
    installed = enable_metrics(registry)
    try:
        yield installed
    finally:
        _active = previous


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #

def render_metrics(snapshot: Mapping[str, Any],
                   title: str = "metrics") -> str:
    """Human-readable table of a registry snapshot (CLI ``--metrics``)."""
    lines = [f"== {title} =="]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    timers = snapshot.get("timers", {})
    if not (counters or gauges or timers):
        lines.append("(no metrics recorded)")
        return "\n".join(lines)
    for name in sorted(counters):
        value = counters[name]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{name} = {rendered}")
    for name in sorted(gauges):
        entry = gauges[name]
        lines.append(f"{name} last={entry['last']:g} peak={entry['peak']:g}")
    for name in sorted(timers):
        entry = timers[name]
        mean = entry["total_s"] / entry["count"] if entry["count"] else 0.0
        lines.append(
            f"{name} count={entry['count']:g} total={entry['total_s']:.4f}s "
            f"mean={mean * 1e3:.2f}ms min={entry['min_s'] * 1e3:.2f}ms "
            f"max={entry['max_s'] * 1e3:.2f}ms")
    return "\n".join(lines)
