"""Structured run traces: timestamped NDJSON events plus an inspector.

``--trace-out trace.ndjson`` on the CLI installs a :class:`TraceWriter` as
the *current writer*; instrumented code emits events through the
module-level :func:`emit`, which is a no-op (one ``None`` check) when no
writer is installed.  One event per line::

    {"ts": 1754640000.12, "elapsed_s": 0.0031, "event": "chunk",
     "start_slot": 0, "slots": 65536, "duration_s": 0.171, ...}

``ts`` is wall-clock (``time.time()``), ``elapsed_s`` is monotonic time
since the writer was opened, ``event`` names the event type; every other
field is event-specific.  The emitted event types:

=====================  =================================================
event                  emitted by
=====================  =================================================
``trace_open``         the writer itself, first line of every file
``run_start``          ``ClosedLoopSimulation.run`` (any engine)
``run_end``            ditto — includes the report's headline numbers
``chunk``              every streamed execution window
``stream_finish``      streaming epilogue — cumulative session counters
``checkpoint_saved``   ``StreamingSimulation.save_checkpoint``
``checkpoint_resumed`` ``StreamingSimulation.load_checkpoint``
``fabric_stage``       switch crossbar stage completion
``switch_run``         switch port-stage completion
``sweep_start``        ``SweepRunner.run`` entry (job counts)
``job_dispatched``     per cache-missing job before execution
``job_cached``         per cache-hit job
``pool_start``         worker fleet spin-up (workers, job count)
``job_retry``          per retry of a transiently-failed job
``job_timeout``        per job killed for exceeding ``--timeout``
``worker_death``       per worker process that died mid-job
``job_failed``         per job permanently quarantined as a failure
``sweep_end``          ``SweepRunner.run`` exit (counts, duration)
``sweep_abort``        ``SweepRunner.run`` raised (culprit tag, error)
``cache_quarantined``  per corrupt cache entry renamed ``*.bad``
``grid_point``         per compiled YAML grid point
``fuzz_start``         ``fuzz_many`` entry (seeds, master seed)
``fuzz_case``          per differential fuzz case
``fuzz_divergence``    per diverging fuzz *leg*
``fuzz_end``           ``fuzz_many`` exit (case/divergence counts)
``bench_start``        ``run_suite`` entry (mode, repeats, case count)
``bench_case``         per benchmark of ``repro bench``
``trace_close``        the writer itself, on close
=====================  =================================================

Events are flushed per line so a crashed run's trace is readable up to the
crash.  Writers are process-local: sweep worker processes do not inherit
the parent's writer (job lifecycle events are emitted parent-side).
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import TraceFormatError

__all__ = [
    "TraceWriter",
    "emit",
    "get_trace",
    "read_events",
    "render_trace_summary",
    "set_trace",
    "summarize_trace",
    "using_trace",
]


class TraceWriter:
    """Appends NDJSON events to an open file, one line per event."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = os.fspath(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._opened = time.perf_counter()
        self.events_written = 0
        self.emit("trace_open", pid=os.getpid())

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line (wall timestamp + monotonic elapsed)."""
        if self._handle is None:
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "elapsed_s": round(time.perf_counter() - self._opened, 6),
            "event": event,
        }
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=False,
                                      default=str) + "\n")
        self._handle.flush()
        self.events_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self.emit("trace_close", events=self.events_written)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------- #
# The current writer
# --------------------------------------------------------------------- #

_current: Optional[TraceWriter] = None


def get_trace() -> Optional[TraceWriter]:
    """The current writer, or ``None`` when tracing is off."""
    return _current


def set_trace(writer: Optional[TraceWriter]) -> Optional[TraceWriter]:
    """Install ``writer`` as the current writer (``None`` disables)."""
    global _current
    previous = _current
    _current = writer
    return previous


@contextlib.contextmanager
def using_trace(writer: TraceWriter) -> Iterator[TraceWriter]:
    """Temporarily install ``writer`` (context manager); does not close it."""
    previous = set_trace(writer)
    try:
        yield writer
    finally:
        set_trace(previous)


def emit(event: str, **fields: Any) -> None:
    """Emit through the current writer; a no-op when tracing is off."""
    writer = _current
    if writer is not None:
        writer.emit(event, **fields)


# --------------------------------------------------------------------- #
# The inspector (``repro trace summarize``)
# --------------------------------------------------------------------- #

def read_events(path: os.PathLike) -> List[Dict[str, Any]]:
    """Parse an NDJSON trace file into a list of event dicts.

    Raises ``OSError`` on unreadable files and ``ValueError`` when a line is
    not a JSON object with an ``event`` field (truncated final lines from a
    crashed writer are tolerated and skipped).
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A writer killed mid-line leaves one truncated record; the
                # events before it are still a valid trace.
                continue
            if not isinstance(record, dict) or "event" not in record:
                raise TraceFormatError(
                    f"{os.fspath(path)}:{number}: not a trace event")
            events.append(record)
    return events


def summarize_trace(path: os.PathLike) -> Dict[str, Any]:
    """Aggregate a trace file into headline numbers.

    Returns a dict with the event-type histogram, the wall-clock span, chunk
    throughput (from ``chunk`` events), checkpoint save/restore latencies,
    sweep cache hit/miss counts and any fuzz divergences.
    """
    events = read_events(path)
    by_type: Dict[str, int] = {}
    for event in events:
        by_type[event["event"]] = by_type.get(event["event"], 0) + 1
    summary: Dict[str, Any] = {
        "path": os.fspath(path),
        "events": len(events),
        "by_type": by_type,
        "span_s": (events[-1]["elapsed_s"] - events[0]["elapsed_s"]
                   if events else 0.0),
    }
    chunks = [e for e in events if e["event"] == "chunk"]
    if chunks:
        slots = sum(e.get("slots", 0) for e in chunks)
        busy = sum(e.get("duration_s", 0.0) for e in chunks)
        summary["chunk_slots_total"] = slots
        summary["chunk_time_s"] = round(busy, 6)
        if busy > 0:
            summary["chunk_kslots_per_s"] = round(slots / busy / 1e3, 2)
    saves = [e for e in events if e["event"] == "checkpoint_saved"]
    if saves:
        summary["checkpoints_saved"] = len(saves)
        summary["checkpoint_save_mean_s"] = round(
            sum(e.get("duration_s", 0.0) for e in saves) / len(saves), 6)
    resumes = [e for e in events if e["event"] == "checkpoint_resumed"]
    if resumes:
        summary["checkpoints_resumed"] = len(resumes)
        summary["resumed_from_slot"] = resumes[-1].get("slot")
    cached = by_type.get("job_cached", 0)
    dispatched = by_type.get("job_dispatched", 0)
    if cached or dispatched:
        summary["jobs_cached"] = cached
        summary["jobs_dispatched"] = dispatched
    divergences = [e for e in events if e["event"] == "fuzz_divergence"]
    if divergences:
        summary["fuzz_divergences"] = [
            {"index": e.get("index"), "leg": e.get("leg"),
             "field": e.get("field")}
            for e in divergences]
    runs = [e for e in events if e["event"] == "run_end"]
    if runs:
        summary["runs"] = len(runs)
        summary["slots_simulated"] = sum(e.get("slots", 0) for e in runs)
    return summary


def render_trace_summary(summary: Dict[str, Any]) -> str:
    """Human-readable form of :func:`summarize_trace`'s dict."""
    lines = [f"trace {summary['path']}: {summary['events']} events over "
             f"{summary['span_s']:.3f}s"]
    for name in sorted(summary["by_type"]):
        lines.append(f"  {name}: {summary['by_type'][name]}")
    if "chunk_slots_total" in summary:
        rate = summary.get("chunk_kslots_per_s")
        rate_text = f" ({rate} kslots/s)" if rate is not None else ""
        lines.append(f"chunks: {summary['by_type'].get('chunk', 0)} windows, "
                     f"{summary['chunk_slots_total']} slots in "
                     f"{summary['chunk_time_s']:.3f}s{rate_text}")
    if "checkpoints_saved" in summary:
        lines.append(f"checkpoints: {summary['checkpoints_saved']} saved, "
                     f"mean {summary['checkpoint_save_mean_s'] * 1e3:.1f}ms")
    if "checkpoints_resumed" in summary:
        lines.append(f"resumed: {summary['checkpoints_resumed']} time(s), "
                     f"last from slot {summary['resumed_from_slot']}")
    if "jobs_cached" in summary or "jobs_dispatched" in summary:
        lines.append(f"jobs: {summary.get('jobs_dispatched', 0)} dispatched, "
                     f"{summary.get('jobs_cached', 0)} served from cache")
    if "runs" in summary:
        lines.append(f"runs: {summary['runs']}, "
                     f"{summary['slots_simulated']} slots simulated")
    for div in summary.get("fuzz_divergences", []):
        lines.append(f"DIVERGENCE: case {div['index']} "
                     f"leg {div['leg']} ({div['field']})")
    return "\n".join(lines)
