"""Hot-frame capture: run a callable under :mod:`cProfile`, keep the top N.

``repro bench --profile`` runs every benchmark once more under the
profiler (separately from the timed repetitions — profiling overhead must
never pollute the recorded medians) and stores the hottest frames in the
output JSON, so speedup work is aimed at measured hot spots::

    "profile": [
      {"func": "repro/sim/array_engine.py:368(run_span)",
       "ncalls": 1, "tottime_s": 0.81, "cumtime_s": 0.93, "tottime_pct": 62.1},
      ...
    ]

Frames are ranked by ``tottime`` (self time — the optimisation target);
``cumtime`` is recorded alongside so callers-of-hot-callees remain visible.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from typing import Any, Callable, Dict, List

__all__ = ["profile_call", "render_profile"]

#: Frames recorded per profiled call.
DEFAULT_TOP = 10


def _frame_label(key) -> str:
    filename, line, name = key
    if filename == "~":
        # Builtins profile as ('~', 0, '<built-in ...>').
        return name
    short = os.sep.join(filename.split(os.sep)[-3:])
    return f"{short}:{line}({name})"


def profile_call(thunk: Callable[[], Any],
                 top: int = DEFAULT_TOP) -> List[Dict[str, Any]]:
    """Run ``thunk()`` under cProfile; return the top-``top`` hot frames."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        thunk()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    total = stats.total_tt or 1.0
    ranked = sorted(stats.stats.items(),
                    key=lambda item: item[1][2], reverse=True)
    frames: List[Dict[str, Any]] = []
    for key, (_cc, ncalls, tottime, cumtime, _callers) in ranked[:top]:
        frames.append({
            "func": _frame_label(key),
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
            "tottime_pct": round(tottime / total * 100.0, 1),
        })
    return frames


def render_profile(frames: List[Dict[str, Any]], limit: int = 5) -> str:
    """Indented one-line-per-frame rendering (the CLI's ``--profile`` echo)."""
    lines = []
    for frame in frames[:limit]:
        lines.append(
            f"    {frame['tottime_pct']:5.1f}%  {frame['tottime_s'] * 1e3:8.1f}ms "
            f"self  {frame['cumtime_s'] * 1e3:8.1f}ms cum  "
            f"x{frame['ncalls']}  {frame['func']}")
    return "\n".join(lines)
