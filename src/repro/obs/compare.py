"""Perf-trajectory comparison: diff two ``repro bench`` snapshots.

``repro bench --compare BENCH_N.json`` runs the suite and diffs the fresh
document against the committed baseline; ``--against CURRENT.json`` diffs
two existing snapshots without running anything (the CI perf-gate path).

Two kinds of rows:

* **per-benchmark deltas** — median seconds and kslots/s, side by side.
  Median deltas are only meaningful when both snapshots ran the same slot
  counts (full vs full, quick vs quick); throughput (kslots/s) stays
  comparable across modes, so it is always shown.
* **derived-ratio deltas** — the machine-independent trajectory numbers
  (array-vs-batched speedup, switch sharding scaling, checkpoint overhead).
  Each ratio has a *direction*: for a speedup, a regression is the ratio
  falling; for an overhead, a regression is the ratio rising.  Directions
  come from the snapshot's ``derived_directions`` table when present and
  fall back to a name heuristic (``overhead`` in the label means lower is
  better) for snapshots written before the table existed.

``--fail-on-regression PCT`` gates on the ratio rows only — absolute
timings move with the machine, ratios move with the code — and exits 1 when
any gated ratio regressed by more than ``PCT`` percent.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "BenchCompareError",
    "compare_documents",
    "load_bench_document",
    "ratio_direction",
    "ratio_regressions",
    "render_compare",
]

#: Direction labels used in bench documents and compare reports.
HIGHER_BETTER = "higher_better"
LOWER_BETTER = "lower_better"


class BenchCompareError(ReproError):
    """A snapshot could not be read or is not a bench document."""


def load_bench_document(path: os.PathLike) -> Dict[str, Any]:
    """Read one ``repro bench`` JSON snapshot, validated."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise BenchCompareError(f"cannot read bench snapshot: {exc}")
    except ValueError as exc:
        raise BenchCompareError(
            f"bench snapshot {path!r} is not valid JSON: {exc}")
    if not isinstance(document, dict) \
            or document.get("suite") != "repro-bench" \
            or not isinstance(document.get("benchmarks"), list):
        raise BenchCompareError(
            f"{path!r} is not a repro bench snapshot")
    document["_path"] = path
    return document


def ratio_direction(name: str,
                    *documents: Mapping[str, Any]) -> str:
    """The regression direction of derived ratio ``name``.

    Prefers the ``derived_directions`` table of any given document (current
    first); falls back to the name heuristic.
    """
    for document in documents:
        table = document.get("derived_directions")
        if isinstance(table, Mapping) and name in table:
            return table[name]
    return LOWER_BETTER if "overhead" in name else HIGHER_BETTER


def _pct(current: float, base: float) -> Optional[float]:
    if not base:
        return None
    return (current - base) / base * 100.0


def compare_documents(baseline: Mapping[str, Any],
                      current: Mapping[str, Any]) -> Dict[str, Any]:
    """Diff two bench documents into a JSON-serialisable compare report."""
    base_by_name = {b["name"]: b for b in baseline["benchmarks"]}
    cur_by_name = {b["name"]: b for b in current["benchmarks"]}

    rows: List[Dict[str, Any]] = []
    for name, cur in cur_by_name.items():
        base = base_by_name.get(name)
        if base is None:
            continue
        base_metrics = base.get("metrics", {})
        cur_metrics = cur.get("metrics", {})
        slots_match = (base_metrics.get("slots") == cur_metrics.get("slots"))
        row: Dict[str, Any] = {
            "name": name,
            "base_median_s": base["median_s"],
            "cur_median_s": cur["median_s"],
            "slots_match": slots_match,
            "median_delta_pct": (_pct(cur["median_s"], base["median_s"])
                                 if slots_match else None),
            "base_kslots": base_metrics.get("kslots_per_s"),
            "cur_kslots": cur_metrics.get("kslots_per_s"),
        }
        if row["base_kslots"] and row["cur_kslots"] is not None:
            row["kslots_delta_pct"] = _pct(row["cur_kslots"],
                                           row["base_kslots"])
        else:
            row["kslots_delta_pct"] = None
        rows.append(row)

    ratios: List[Dict[str, Any]] = []
    base_derived = baseline.get("derived", {})
    cur_derived = current.get("derived", {})
    for name, cur_value in cur_derived.items():
        if name not in base_derived:
            continue
        base_value = base_derived[name]
        direction = ratio_direction(name, current, baseline)
        delta = _pct(cur_value, base_value)
        if delta is None:
            regression = None
        elif direction == LOWER_BETTER:
            regression = max(0.0, delta)
        else:
            regression = max(0.0, -delta)
        ratios.append({
            "name": name,
            "base": base_value,
            "cur": cur_value,
            "delta_pct": delta,
            "direction": direction,
            "regression_pct": regression,
        })

    return {
        "baseline": _document_header(baseline),
        "current": _document_header(current),
        "benchmarks": rows,
        "ratios": ratios,
        "missing_in_current": sorted(set(base_by_name) - set(cur_by_name)),
        "missing_in_baseline": sorted(set(cur_by_name) - set(base_by_name)),
    }


def _document_header(document: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "path": document.get("_path"),
        "quick": document.get("quick"),
        "repeats": document.get("repeats"),
        # Snapshots written before the affinity-aware cpu count existed
        # (BENCH_3.json and earlier) have no "cpus" key; report the gap
        # instead of a bare null so downstream consumers need no guard.
        "cpus": document.get("cpus", "unknown"),
        "python": document.get("python"),
        "created_unix": document.get("created_unix"),
    }


def ratio_regressions(report: Mapping[str, Any], threshold_pct: float,
                      ratio_names: Optional[Sequence[str]] = None
                      ) -> List[Dict[str, Any]]:
    """The gated ratios that regressed beyond ``threshold_pct``.

    ``ratio_names`` restricts the gate to named ratios; naming a ratio the
    report does not contain is an error (a typo must not silently pass the
    gate).
    """
    by_name = {row["name"]: row for row in report["ratios"]}
    if ratio_names is None:
        gated = list(report["ratios"])
    else:
        gated = []
        for name in ratio_names:
            if name not in by_name:
                known = ", ".join(sorted(by_name)) or "none"
                raise BenchCompareError(
                    f"ratio {name!r} is not in the compare report "
                    f"(present: {known})")
            gated.append(by_name[name])
    return [row for row in gated
            if row["regression_pct"] is not None
            and row["regression_pct"] > threshold_pct]


def render_compare(report: Mapping[str, Any],
                   threshold_pct: Optional[float] = None,
                   ratio_names: Optional[Sequence[str]] = None,
                   failures: Optional[Sequence[Mapping[str, Any]]] = None
                   ) -> str:
    """Human-readable compare report (the ``--compare`` output)."""
    from repro.analysis.report import format_table

    base = report["baseline"]
    cur = report["current"]

    def fmt_pct(value: Optional[float]) -> str:
        if value is None:
            return "-"
        return f"{value:+.1f}%"

    rows = []
    for row in report["benchmarks"]:
        rows.append([
            row["name"],
            f"{row['base_median_s'] * 1e3:.1f}",
            f"{row['cur_median_s'] * 1e3:.1f}",
            fmt_pct(row["median_delta_pct"]),
            row["base_kslots"] if row["base_kslots"] is not None else "-",
            row["cur_kslots"] if row["cur_kslots"] is not None else "-",
            fmt_pct(row["kslots_delta_pct"]),
        ])
    def describe(header: Mapping[str, Any]) -> str:
        mode = "quick" if header.get("quick") else "full"
        cpus = header.get("cpus")
        if cpus in (None, "unknown"):
            return f"{mode}, cpus unknown"
        return f"{mode}, {cpus} cpu{'s' if cpus != 1 else ''}"

    table = format_table(
        ["benchmark", "base ms", "cur ms", "Δms", "base ks/s", "cur ks/s",
         "Δks/s"],
        rows,
        title=(f"bench compare — baseline {base.get('path')} "
               f"({describe(base)}) vs current ({describe(cur)})"))
    lines = [table]
    if not all(row["slots_match"] for row in report["benchmarks"]):
        lines.append("(Δms shown only where both snapshots ran the same "
                     "slot counts; throughput stays comparable)")
    for name in report["missing_in_current"]:
        lines.append(f"missing in current: {name}")
    for name in report["missing_in_baseline"]:
        lines.append(f"new in current: {name}")
    if report["ratios"]:
        lines.append("")
        lines.append("derived ratios (direction-aware; regression = change "
                     "in the bad direction):")
        gated_set = set(ratio_names) if ratio_names is not None else None
        failing = {row["name"] for row in (failures or ())}
        for row in report["ratios"]:
            arrow = ("lower is better" if row["direction"] == LOWER_BETTER
                     else "higher is better")
            marker = ""
            if row["name"] in failing:
                marker = "  << REGRESSION"
            elif gated_set is not None and row["name"] not in gated_set:
                marker = "  (not gated)"
            lines.append(
                f"  {row['name']}: {row['base']:.3f}x -> {row['cur']:.3f}x "
                f"({fmt_pct(row['delta_pct'])}, {arrow}, regression "
                f"{row['regression_pct']:.1f}%)"
                f"{marker}" if row["regression_pct"] is not None else
                f"  {row['name']}: {row['base']:.3f}x -> {row['cur']:.3f}x")
    if threshold_pct is not None:
        if failures:
            names = ", ".join(row["name"] for row in failures)
            lines.append(f"\nFAIL: {len(failures)} ratio(s) regressed more "
                         f"than {threshold_pct:g}%: {names}")
        else:
            lines.append(f"\nOK: no gated ratio regressed more than "
                         f"{threshold_pct:g}%")
    return "\n".join(lines)
