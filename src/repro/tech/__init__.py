"""Technology models used by the paper's evaluation (Sections 7 and 8).

The paper evaluates RADS and CFDS not by cycle simulation but by asking what
the required SRAM structures *cost* in a 0.13 um process — access time and
silicon area, estimated with CACTI 3.0 — and whether the DRAM-scheduler issue
logic is buildable (by analogy to the Alpha 21264 issue queue).  This package
provides the equivalents:

* :mod:`repro.tech.process` — the technology-process constants;
* :mod:`repro.tech.cacti` — a CACTI-style analytical access-time/area model
  for direct-mapped SRAM arrays and content-addressable memories, calibrated
  against the operating points the paper reports (see DESIGN.md for the
  substitution note);
* :mod:`repro.tech.sram_designs` — the two shared-buffer organisations of
  Section 7.1 (global CAM, time-multiplexed unified linked list) expressed as
  area/access-time models over a cell capacity;
* :mod:`repro.tech.line_rates` — OC line rates, slot times and access budgets;
* :mod:`repro.tech.dram_chips` — commodity DRAM parts and the guaranteed
  bandwidth analysis of the introduction;
* :mod:`repro.tech.issue_logic` — feasibility scaling of the Requests
  Register wake-up/select logic from the Alpha 21264 reference point.
"""

from repro.tech.process import TechnologyProcess
from repro.tech.cacti import CactiModel
from repro.tech.sram_designs import (
    SRAMBufferDesign,
    GlobalCAMDesign,
    UnifiedLinkedListDesign,
    best_design,
)
from repro.tech.line_rates import LineRate
from repro.tech.dram_chips import DRAMChip, COMMODITY_DRAM_CHIPS, guaranteed_buffer_bandwidth_gbps
from repro.tech.issue_logic import IssueLogicModel

__all__ = [
    "TechnologyProcess",
    "CactiModel",
    "SRAMBufferDesign",
    "GlobalCAMDesign",
    "UnifiedLinkedListDesign",
    "best_design",
    "LineRate",
    "DRAMChip",
    "COMMODITY_DRAM_CHIPS",
    "guaranteed_buffer_bandwidth_gbps",
    "IssueLogicModel",
]
