"""CACTI-style access-time and area model for SRAM arrays and CAMs.

This is the reproduction's substitute for CACTI 3.0 (see DESIGN.md).  Like
CACTI it is an *analytical* model: access time is the sum of a fixed term, a
decoder term growing with the logarithm of the array size, and a wire term
growing with the physical side length of the array (square-root of the bit
count); CAM search adds a search-line term that grows with the number of
entries and a priority-encoder term that grows with their logarithm.  Areas
come from bit-cell counts times per-cell area, times a periphery overhead,
with multi-port cells costing proportionally more in both time and area.

The coefficients live in :class:`repro.tech.process.TechnologyProcess` and are
calibrated against the operating points the paper reports, so the *shape* of
every curve in Figures 8, 10 and 11 (who meets the 3.2 ns OC-3072 budget, how
area compares between designs, where the optimum granularity lies) is
reproduced even though individual values are approximations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.tech.process import DEFAULT_PROCESS, TechnologyProcess


@dataclass(frozen=True)
class MemoryEstimate:
    """Result of one model evaluation."""

    access_time_ns: float
    area_cm2: float
    bits: int
    ports: int


class CactiModel:
    """Analytical access-time / area model."""

    def __init__(self, process: Optional[TechnologyProcess] = None) -> None:
        self.process = process if process is not None else DEFAULT_PROCESS

    # ------------------------------------------------------------------ #
    # Direct-mapped SRAM arrays
    # ------------------------------------------------------------------ #
    def sram_access_time_ns(self, capacity_bits: int, ports: int = 1) -> float:
        """Access time of a direct-mapped SRAM array."""
        self._check(capacity_bits, ports)
        p = self.process
        base = (p.t_fixed_ns
                + p.t_decode_ns_per_bit * math.log2(max(capacity_bits, 2))
                + p.t_wire_ns_per_sqrt_bit * math.sqrt(capacity_bits))
        return base * self._port_time_factor(ports)

    def sram_area_cm2(self, capacity_bits: int, ports: int = 1) -> float:
        """Silicon area of a direct-mapped SRAM array, in cm^2."""
        self._check(capacity_bits, ports)
        p = self.process
        cell_um2 = p.sram_cell_area_um2 * self._port_area_factor(ports)
        return capacity_bits * cell_um2 * p.periphery_overhead * 1e-8

    def sram_estimate(self, capacity_bits: int, ports: int = 1) -> MemoryEstimate:
        return MemoryEstimate(
            access_time_ns=self.sram_access_time_ns(capacity_bits, ports),
            area_cm2=self.sram_area_cm2(capacity_bits, ports),
            bits=capacity_bits, ports=ports)

    # ------------------------------------------------------------------ #
    # Content-addressable memories
    # ------------------------------------------------------------------ #
    def cam_access_time_ns(self, entries: int, tag_bits: int,
                           data_bits_per_entry: int, ports: int = 1) -> float:
        """Access time of a CAM: search-line drive across all entries,
        match-line evaluation over the tag and priority encoding.  The data
        read of the matched entry overlaps the tail of the priority encoding
        (its row is already selected), so it does not add a separate term.
        The calibration constants already describe a dual-ported (one read,
        one write) CAM cell, so the per-port penalty applies only to ports
        beyond the second."""
        if entries <= 0 or tag_bits <= 0 or data_bits_per_entry <= 0:
            raise ValueError("entries, tag_bits and data_bits_per_entry must be positive")
        self._check(entries * data_bits_per_entry, ports)
        p = self.process
        search = (p.t_cam_fixed_ns
                  + p.t_cam_encode_ns_per_bit * math.log2(max(entries, 2))
                  + p.t_cam_search_ns_per_entry * entries)
        return search * self._port_time_factor(max(ports - 1, 1))

    def cam_area_cm2(self, entries: int, tag_bits: int,
                     data_bits_per_entry: int, ports: int = 1) -> float:
        """Area of a CAM: tag bits in CAM cells, data bits in SRAM cells."""
        if entries <= 0 or tag_bits <= 0 or data_bits_per_entry <= 0:
            raise ValueError("entries, tag_bits and data_bits_per_entry must be positive")
        p = self.process
        tag_area = entries * tag_bits * p.cam_cell_area_um2
        data_area = entries * data_bits_per_entry * p.sram_cell_area_um2
        total_um2 = (tag_area + data_area) * self._port_area_factor(ports) * p.periphery_overhead
        return total_um2 * 1e-8

    def cam_estimate(self, entries: int, tag_bits: int,
                     data_bits_per_entry: int, ports: int = 1) -> MemoryEstimate:
        return MemoryEstimate(
            access_time_ns=self.cam_access_time_ns(entries, tag_bits,
                                                   data_bits_per_entry, ports),
            area_cm2=self.cam_area_cm2(entries, tag_bits, data_bits_per_entry, ports),
            bits=entries * (tag_bits + data_bits_per_entry), ports=ports)

    # ------------------------------------------------------------------ #
    def _port_time_factor(self, ports: int) -> float:
        return 1.0 + self.process.port_time_factor * (ports - 1)

    def _port_area_factor(self, ports: int) -> float:
        return 1.0 + self.process.port_area_factor * (ports - 1)

    @staticmethod
    def _check(capacity_bits: int, ports: int) -> None:
        if capacity_bits <= 0:
            raise ValueError("capacity_bits must be positive")
        if ports < 1:
            raise ValueError("ports must be at least 1")
