"""Commodity DRAM parts and the DRAM-only buffer bandwidth analysis.

The introduction of the paper motivates the hybrid design with a back-of-the-
envelope analysis of DRAM-only packet buffers: a single 16 Mb SDRAM chip with
a 16-bit interface at 100 MHz peaks at 1.6 Gb/s but only guarantees about
1.2 Gb/s once activate/precharge overhead is charged to every (worst-case
random) cell access, and widening the data path to 8 chips only reaches about
5.12 Gb/s because the fixed overhead is amortised over ever fewer data
transfer cycles.  This module reproduces that analysis and carries a small
catalog of the DRAM families the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.constants import CELL_SIZE_BYTES


@dataclass(frozen=True)
class DRAMChip:
    """A commodity DRAM part, reduced to the parameters the analysis needs.

    Attributes:
        name: part family.
        capacity_mbit: storage per chip.
        io_bits: data interface width.
        clock_mhz: interface clock (data transfers per second = clock x
            transfers_per_clock).
        transfers_per_clock: 1 for SDR, 2 for DDR-style interfaces.
        random_access_ns: worst-case random (row) cycle time.
        overhead_cycles: activate + precharge + CAS cycles charged to each
            worst-case random access at the interface clock.
    """

    name: str
    capacity_mbit: int
    io_bits: int
    clock_mhz: float
    transfers_per_clock: int
    random_access_ns: float
    overhead_cycles: int

    # ------------------------------------------------------------------ #
    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak interface bandwidth of one chip."""
        return self.io_bits * self.clock_mhz * 1e6 * self.transfers_per_clock / 1e9

    def guaranteed_bandwidth_gbps(self, num_chips: int = 1,
                                  access_bytes: int = CELL_SIZE_BYTES) -> float:
        """Worst-case (guaranteed) bandwidth of ``num_chips`` chips in parallel.

        Every ``access_bytes`` unit is charged the activate/precharge overhead
        on top of its data-transfer cycles; widening the data path shrinks the
        data-transfer cycles but not the overhead, which is why efficiency
        falls as chips are added.
        """
        if num_chips <= 0:
            raise ValueError("num_chips must be positive")
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        bits_per_access = access_bytes * 8
        bus_bits = self.io_bits * num_chips
        data_transfers = -(-bits_per_access // bus_bits)
        data_cycles = data_transfers / self.transfers_per_clock
        total_cycles = data_cycles + self.overhead_cycles
        cycle_s = 1.0 / (self.clock_mhz * 1e6)
        return bits_per_access / (total_cycles * cycle_s) / 1e9


#: Parts referenced in the paper (parameters from the cited data sheets /
#: typical values for the families; the SDRAM entry matches the Glykopoulos
#: single-chip study the introduction quotes).
COMMODITY_DRAM_CHIPS: Dict[str, DRAMChip] = {
    "sdram-16mb": DRAMChip(name="sdram-16mb", capacity_mbit=16, io_bits=16,
                           clock_mhz=100.0, transfers_per_clock=1,
                           random_access_ns=70.0, overhead_cycles=6),
    "sdram-166mhz": DRAMChip(name="sdram-166mhz", capacity_mbit=256, io_bits=16,
                             clock_mhz=166.0, transfers_per_clock=1,
                             random_access_ns=60.0, overhead_cycles=8),
    "ddr-sdram": DRAMChip(name="ddr-sdram", capacity_mbit=256, io_bits=16,
                          clock_mhz=166.0, transfers_per_clock=2,
                          random_access_ns=60.0, overhead_cycles=8),
    "drdram": DRAMChip(name="drdram", capacity_mbit=256, io_bits=16,
                       clock_mhz=400.0, transfers_per_clock=2,
                       random_access_ns=53.0, overhead_cycles=16),
    "fcram": DRAMChip(name="fcram", capacity_mbit=256, io_bits=16,
                      clock_mhz=200.0, transfers_per_clock=2,
                      random_access_ns=25.0, overhead_cycles=5),
    "rldram": DRAMChip(name="rldram", capacity_mbit=256, io_bits=16,
                       clock_mhz=300.0, transfers_per_clock=2,
                       random_access_ns=20.0, overhead_cycles=6),
}


def guaranteed_buffer_bandwidth_gbps(chip_name: str, num_chips: int,
                                     access_bytes: int = CELL_SIZE_BYTES) -> float:
    """Convenience wrapper over :meth:`DRAMChip.guaranteed_bandwidth_gbps`."""
    if chip_name not in COMMODITY_DRAM_CHIPS:
        raise ValueError(f"unknown DRAM chip {chip_name!r}; "
                         f"expected one of {sorted(COMMODITY_DRAM_CHIPS)}")
    return COMMODITY_DRAM_CHIPS[chip_name].guaranteed_bandwidth_gbps(
        num_chips, access_bytes)
