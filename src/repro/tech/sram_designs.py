"""Physical models of the two shared-SRAM buffer organisations (Section 7.1).

Both designs store a given number of 64-byte cells shared by ``Q`` queues and
must support one cell read towards the arbiter and one cell write from the
DRAM per slot.  They differ in how the "next cell of queue q" is located:

* **Global CAM** — every cell carries a ``(queue, order)`` tag; lookup is one
  associative search.  Fast (one access per slot and port) but the CAM cells
  and match logic cost area, and the search slows down as the number of
  entries grows.  This is the design "targeted at the shortest access time".
* **Unified linked list (time-multiplexed)** — one direct-mapped array holding
  ``cell + next-pointer`` entries plus a small head/tail pointer table.  A
  cell operation needs three array accesses (read entry, update pointer,
  update head/tail table); time-multiplexing them over one single-ported
  array minimises area at the cost of a 3x longer effective access time.
  This is the design "targeted at minimum area".  The CFDS variant keeps
  ``(B/b) x Q`` lists (out-of-order block arrival tolerance, Section 8.2),
  which only changes the size of the pointer table.

Each design exposes ``access_time_ns`` and ``area_cm2`` as functions of the
cell capacity, which is exactly what the Figure 8/10/11 sweeps need.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, List, Optional

from repro.constants import CELL_SIZE_BYTES
from repro.tech.cacti import CactiModel
from repro.tech.process import TechnologyProcess

#: Bits in one cell.
_CELL_BITS = CELL_SIZE_BYTES * 8


class SRAMBufferDesign(abc.ABC):
    """A physical organisation of the shared SRAM cell buffer."""

    #: Human-readable name used in reports and figure legends.
    name: str = "design"

    def __init__(self, num_queues: int,
                 process: Optional[TechnologyProcess] = None) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.num_queues = num_queues
        self.model = CactiModel(process)

    @abc.abstractmethod
    def access_time_ns(self, capacity_cells: int) -> float:
        """Worst-case time to perform one cell operation."""

    @abc.abstractmethod
    def area_cm2(self, capacity_cells: int) -> float:
        """Silicon area of the organisation."""

    def meets_budget(self, capacity_cells: int, budget_ns: float) -> bool:
        """True when one cell operation fits in ``budget_ns`` (one slot)."""
        return self.access_time_ns(capacity_cells) <= budget_ns

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_capacity(capacity_cells: int) -> None:
        if capacity_cells <= 0:
            raise ValueError("capacity_cells must be positive")


class GlobalCAMDesign(SRAMBufferDesign):
    """Fully associative shared buffer (the shortest-access-time design)."""

    name = "global-cam"

    def __init__(self, num_queues: int,
                 process: Optional[TechnologyProcess] = None,
                 order_bits: int = 16) -> None:
        super().__init__(num_queues, process)
        if order_bits <= 0:
            raise ValueError("order_bits must be positive")
        self.order_bits = order_bits

    def tag_bits(self) -> int:
        """Tag width: queue identifier plus relative order within the queue."""
        return max(1, math.ceil(math.log2(self.num_queues))) + self.order_bits

    def access_time_ns(self, capacity_cells: int) -> float:
        self._check_capacity(capacity_cells)
        return self.model.cam_access_time_ns(entries=capacity_cells,
                                             tag_bits=self.tag_bits(),
                                             data_bits_per_entry=_CELL_BITS,
                                             ports=2)

    def area_cm2(self, capacity_cells: int) -> float:
        self._check_capacity(capacity_cells)
        return self.model.cam_area_cm2(entries=capacity_cells,
                                       tag_bits=self.tag_bits(),
                                       data_bits_per_entry=_CELL_BITS,
                                       ports=2)


class UnifiedLinkedListDesign(SRAMBufferDesign):
    """Direct-mapped cell array with explicit linked lists (minimum-area
    design), accessed in a time-multiplexed fashion over a single port."""

    name = "unified-linked-list"

    #: Array accesses serialised per cell operation (entry, pointer, table).
    ACCESSES_PER_OPERATION = 3

    def __init__(self, num_queues: int,
                 process: Optional[TechnologyProcess] = None,
                 lists_per_queue: int = 1,
                 time_multiplexed: bool = True) -> None:
        super().__init__(num_queues, process)
        if lists_per_queue <= 0:
            raise ValueError("lists_per_queue must be positive")
        self.lists_per_queue = lists_per_queue
        self.time_multiplexed = time_multiplexed

    # ------------------------------------------------------------------ #
    def entry_bits(self, capacity_cells: int) -> int:
        """Bits per array entry: the cell plus a next pointer."""
        pointer_bits = max(1, math.ceil(math.log2(capacity_cells)))
        return _CELL_BITS + pointer_bits

    def array_bits(self, capacity_cells: int) -> int:
        return capacity_cells * self.entry_bits(capacity_cells)

    def pointer_table_bits(self, capacity_cells: int) -> int:
        """Head + tail pointer per (queue, sub-list)."""
        pointer_bits = max(1, math.ceil(math.log2(capacity_cells)))
        return self.num_queues * self.lists_per_queue * 2 * pointer_bits

    # ------------------------------------------------------------------ #
    def access_time_ns(self, capacity_cells: int) -> float:
        self._check_capacity(capacity_cells)
        ports = 1 if self.time_multiplexed else 3
        single = self.model.sram_access_time_ns(self.array_bits(capacity_cells), ports=ports)
        if self.time_multiplexed:
            return single * self.ACCESSES_PER_OPERATION
        return single

    def area_cm2(self, capacity_cells: int) -> float:
        self._check_capacity(capacity_cells)
        ports = 1 if self.time_multiplexed else 3
        array = self.model.sram_area_cm2(self.array_bits(capacity_cells), ports=ports)
        # The pointer table needs an extra write port either way.
        table = self.model.sram_area_cm2(self.pointer_table_bits(capacity_cells), ports=2)
        return array + table


def best_design(designs: Iterable[SRAMBufferDesign],
                capacity_cells: int,
                budget_ns: Optional[float] = None) -> Optional[SRAMBufferDesign]:
    """Return the fastest design at the given capacity (optionally requiring
    it to meet an access-time budget); ``None`` if no design qualifies."""
    qualifying: List[SRAMBufferDesign] = []
    for design in designs:
        time_ns = design.access_time_ns(capacity_cells)
        if budget_ns is None or time_ns <= budget_ns:
            qualifying.append(design)
    if not qualifying:
        return None
    return min(qualifying, key=lambda d: d.access_time_ns(capacity_cells))
