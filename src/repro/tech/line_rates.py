"""Line-rate descriptors: slot times, access budgets and RADS granularities."""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    DEFAULT_DRAM_RANDOM_ACCESS_NS,
    OC_LINE_RATES_BPS,
    rads_granularity,
    required_buffer_bytes,
    slot_time_ns,
)


@dataclass(frozen=True)
class LineRate:
    """One SONET/SDH line rate and the buffer parameters it implies."""

    name: str
    bits_per_second: float

    @classmethod
    def from_name(cls, name: str) -> "LineRate":
        if name not in OC_LINE_RATES_BPS:
            raise ValueError(f"unknown line rate {name!r}; "
                             f"expected one of {sorted(OC_LINE_RATES_BPS)}")
        return cls(name=name, bits_per_second=OC_LINE_RATES_BPS[name])

    # ------------------------------------------------------------------ #
    @property
    def slot_ns(self) -> float:
        """Transmission time of one 64-byte cell (the basic time slot)."""
        return slot_time_ns(self.bits_per_second)

    @property
    def sram_access_budget_ns(self) -> float:
        """The SRAM must serve one cell per slot, so its access time budget is
        the slot time (3.2 ns at OC-3072, 12.8 ns at OC-768)."""
        return self.slot_ns

    @property
    def buffer_bandwidth_gbps(self) -> float:
        """Required packet-buffer bandwidth: twice the line rate."""
        return 2 * self.bits_per_second / 1e9

    def rads_granularity(self,
                         dram_random_access_ns: float = DEFAULT_DRAM_RANDOM_ACCESS_NS) -> int:
        """The RADS granularity ``B`` this line rate forces."""
        return rads_granularity(self.bits_per_second, dram_random_access_ns)

    def buffer_size_bytes(self, round_trip_time_s: float = 0.2) -> int:
        """Rule-of-thumb DRAM buffer size (RTT x line rate)."""
        return required_buffer_bytes(self.bits_per_second, round_trip_time_s)


#: The two line rates the paper evaluates.
OC768 = LineRate.from_name("OC-768")
OC3072 = LineRate.from_name("OC-3072")
