"""Technology-process constants for the area/timing models.

The reference process is the 0.13 um node the paper uses with CACTI 3.0.  The
coefficients below are *calibrated*, not derived from first principles: they
are chosen so that the resulting access-time and area curves pass through the
operating points the paper reports (OC-768 RADS SRAM of 300 kB / 64 kB, the
~7 ns best access time of the OC-3072 RADS SRAM at maximum lookahead, the
2 cm^2-class area of the OC-3072 RADS SRAM pair, and the sub-3.2 ns access of
the CFDS b=8 SRAM).  Scaling to other nodes is provided through a simple
linear-dimension factor so sensitivity studies can be run, but all headline
results use the default node.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyProcess:
    """Process node parameters used by :class:`repro.tech.cacti.CactiModel`.

    Attributes:
        feature_um: drawn feature size in micrometres.
        sram_cell_area_um2: area of one 6T SRAM bit cell.
        cam_cell_area_um2: area of one CAM bit cell (storage + comparator).
        periphery_overhead: multiplicative overhead for decoders, sense
            amplifiers and wiring.
        port_area_factor: extra area per additional port, as a fraction of the
            single-port cell.
        port_time_factor: extra delay per additional port (longer word/bit
            lines), as a fraction of the single-port delay.
        t_fixed_ns / t_decode_ns_per_bit / t_wire_ns_per_sqrt_bit: delay model
            coefficients for direct-mapped arrays.
        t_cam_fixed_ns / t_cam_encode_ns_per_bit / t_cam_search_ns_per_entry:
            delay model coefficients for the CAM search path.
    """

    feature_um: float = 0.13
    sram_cell_area_um2: float = 3.5
    cam_cell_area_um2: float = 7.0
    periphery_overhead: float = 1.3
    port_area_factor: float = 0.6
    port_time_factor: float = 0.35
    t_fixed_ns: float = 0.30
    t_decode_ns_per_bit: float = 0.05
    t_wire_ns_per_sqrt_bit: float = 0.0004
    t_cam_fixed_ns: float = 0.70
    t_cam_encode_ns_per_bit: float = 0.08
    t_cam_search_ns_per_entry: float = 0.0003

    def __post_init__(self) -> None:
        if self.feature_um <= 0:
            raise ValueError("feature_um must be positive")

    def scaled_to(self, feature_um: float) -> "TechnologyProcess":
        """Return a process scaled to another feature size.

        Areas scale with the square of the linear shrink, delays scale
        linearly with it (a deliberately simple constant-field model; good
        enough for the sensitivity studies in the ablation benchmarks).
        """
        if feature_um <= 0:
            raise ValueError("feature_um must be positive")
        ratio = feature_um / self.feature_um
        return TechnologyProcess(
            feature_um=feature_um,
            sram_cell_area_um2=self.sram_cell_area_um2 * ratio ** 2,
            cam_cell_area_um2=self.cam_cell_area_um2 * ratio ** 2,
            periphery_overhead=self.periphery_overhead,
            port_area_factor=self.port_area_factor,
            port_time_factor=self.port_time_factor,
            t_fixed_ns=self.t_fixed_ns * ratio,
            t_decode_ns_per_bit=self.t_decode_ns_per_bit * ratio,
            t_wire_ns_per_sqrt_bit=self.t_wire_ns_per_sqrt_bit * ratio,
            t_cam_fixed_ns=self.t_cam_fixed_ns * ratio,
            t_cam_encode_ns_per_bit=self.t_cam_encode_ns_per_bit * ratio,
            t_cam_search_ns_per_entry=self.t_cam_search_ns_per_entry * ratio,
        )


#: The default 0.13 um process used throughout the evaluation.
DEFAULT_PROCESS = TechnologyProcess()
