"""Feasibility model for the Requests Register wake-up/select logic.

Section 8.1 argues the Requests Register is buildable by analogy with
superscalar issue queues: the Alpha 21264, in a 0.35 um process, selects up to
four instructions out of a 20-entry issue queue in about 1 ns using about
0.05 cm^2.  We scale that reference point to other register sizes and process
nodes to decide whether a given (RR size, available scheduling time) pair is
feasible — which is how the paper concludes that the OC-3072 b=1
configuration "is certainly of difficult viability" while everything else is
attainable.

Scaling model (documented, deliberately simple):

* select latency grows with the logarithm of the number of entries (the
  selection tree depth) plus a wake-up term linear in the number of entries
  (tag broadcast across the queue);
* both terms shrink linearly with the feature size;
* area grows linearly with the number of entries and quadratically with the
  linear shrink.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class IssueLogicModel:
    """Scaled issue-queue (wake-up + select) timing/area model.

    The wake-up term is linear in the number of entries (tag broadcast load),
    the select term logarithmic (selection-tree depth); the per-entry and
    per-level coefficients are chosen so the model reproduces both the Alpha
    21264 reference point (about 1 ns for 20 entries at 0.35 um) and the
    paper's own feasibility verdicts for Table 2 (trivial for OC-768 and for
    OC-3072 with b >= 4, aggressive-but-possible for b = 2, of difficult
    viability for b = 1).
    """

    #: Reference design: Alpha 21264 integer issue queue.
    reference_entries: int = 20
    reference_area_cm2: float = 0.05
    reference_feature_um: float = 0.35
    #: Wake-up broadcast cost per entry, at the reference feature size.
    wakeup_ns_per_entry: float = 0.0107
    #: Selection-tree cost per level (log2 of the entry count), at the
    #: reference feature size.
    select_ns_per_level: float = 0.25
    #: Target process node (the paper's 0.13 um).
    feature_um: float = 0.13

    # ------------------------------------------------------------------ #
    @property
    def reference_latency_ns(self) -> float:
        """Model prediction for the reference design at its own node."""
        return (self.wakeup_ns_per_entry * self.reference_entries
                + self.select_ns_per_level * math.log2(self.reference_entries))

    def scheduling_latency_ns(self, entries: int) -> float:
        """Estimated time to wake up and select one request from ``entries``."""
        if entries <= 0:
            return 0.0
        shrink = self.feature_um / self.reference_feature_um
        wakeup = self.wakeup_ns_per_entry * entries
        select = self.select_ns_per_level * math.log2(max(entries, 2))
        return (wakeup + select) * shrink

    def area_cm2(self, entries: int) -> float:
        """Estimated area of the Requests Register scheduling logic."""
        if entries <= 0:
            return 0.0
        shrink = self.feature_um / self.reference_feature_um
        return self.reference_area_cm2 * (entries / self.reference_entries) * shrink ** 2

    def is_feasible(self, entries: int, available_ns: float) -> bool:
        """True when a request can be scheduled within ``available_ns``."""
        if entries <= 0:
            return True
        return self.scheduling_latency_ns(entries) <= available_ns

    def feasibility_label(self, entries: int, available_ns: float) -> str:
        """Three-way label mirroring the paper's discussion: "trivial" when
        the latency fits in half the budget, "aggressive" when it fits at all,
        "infeasible" otherwise."""
        if entries <= 0:
            return "not needed"
        latency = self.scheduling_latency_ns(entries)
        if latency <= available_ns / 2:
            return "trivial"
        if latency <= available_ns:
            return "aggressive"
        return "infeasible"
