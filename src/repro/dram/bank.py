"""A single DRAM bank with strict conflict detection."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BankConflictError


@dataclass
class DRAMBank:
    """One independently addressable DRAM bank.

    A bank can hold exactly one access in flight.  Starting an access while a
    previous one has not completed is a *bank conflict* — in a real packet
    buffer this would stall the pipeline and break the worst-case bandwidth
    guarantee, so the model treats it as a hard error (unless the caller opts
    into recording mode via ``strict=False`` on :meth:`begin_access`).

    Attributes:
        index: absolute bank number.
        random_access_slots: how many slots the bank stays busy per access.
    """

    index: int
    random_access_slots: int
    _busy_until: int = field(default=0, init=False)
    _accesses: int = field(default=0, init=False)
    _conflicts: int = field(default=0, init=False)

    def is_busy(self, slot: int) -> bool:
        """Return True if the bank is still executing an access at ``slot``."""
        return slot < self._busy_until

    def busy_until(self) -> int:
        """First slot at which the bank is free again."""
        return self._busy_until

    def begin_access(self, slot: int, *, strict: bool = True) -> int:
        """Start an access at ``slot``; return the slot at which it completes.

        Raises :class:`BankConflictError` when the bank is still busy and
        ``strict`` is True; otherwise the conflict is counted and the access
        is serialised after the previous one (modelling a stall).
        """
        if self.is_busy(slot):
            self._conflicts += 1
            if strict:
                raise BankConflictError(self.index, slot, self._busy_until)
            start = self._busy_until
        else:
            start = slot
        self._busy_until = start + self.random_access_slots
        self._accesses += 1
        return self._busy_until

    @property
    def access_count(self) -> int:
        """Total accesses started on this bank."""
        return self._accesses

    @property
    def conflict_count(self) -> int:
        """Number of conflicting (overlapping) access attempts observed."""
        return self._conflicts

    def reset(self) -> None:
        """Forget all state (used when re-running a simulation)."""
        self._busy_until = 0
        self._accesses = 0
        self._conflicts = 0
