"""DRAM timing parameters used by the slot-level models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    DEFAULT_DRAM_RANDOM_ACCESS_NS,
    slot_time_ns,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DRAMTiming:
    """Timing of the DRAM array, expressed in cell slots.

    Attributes:
        random_access_slots: number of cell slots a bank remains busy after an
            access is initiated (the paper's ``B`` for RADS: a new access to
            the *same* bank may only start this many slots later).
        num_banks: number of independently accessible banks (``M``).
        address_bus_slots: minimum number of slots between initiating two
            accesses to *any* banks (the address-bus limit discussed in
            Section 4).  CFDS initiates one access every ``b`` slots, so this
            must be <= b for a configuration to be feasible.
    """

    random_access_slots: int
    num_banks: int = 1
    address_bus_slots: int = 1

    def __post_init__(self) -> None:
        if self.random_access_slots <= 0:
            raise ConfigurationError("random_access_slots must be positive")
        if self.num_banks <= 0:
            raise ConfigurationError("num_banks must be positive")
        if self.address_bus_slots <= 0:
            raise ConfigurationError("address_bus_slots must be positive")

    @classmethod
    def from_physical(cls,
                      line_rate_bps: float,
                      random_access_ns: float = DEFAULT_DRAM_RANDOM_ACCESS_NS,
                      num_banks: int = 1,
                      address_bus_ns: float = 0.0) -> "DRAMTiming":
        """Build a timing object from physical parameters.

        ``random_access_ns`` is converted to slots at the given line rate,
        rounding up (a partially elapsed slot cannot be used).
        """
        slot_ns = slot_time_ns(line_rate_bps)
        ras = max(1, -(-int(random_access_ns * 1000) // int(slot_ns * 1000)))
        bus = max(1, -(-int(address_bus_ns * 1000) // int(slot_ns * 1000))) if address_bus_ns > 0 else 1
        return cls(random_access_slots=ras, num_banks=num_banks, address_bus_slots=bus)
