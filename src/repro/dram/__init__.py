"""Banked DRAM substrate.

This package models the commodity DRAM the packet buffer sits on top of:

* :mod:`repro.dram.timing` — the timing parameters that matter for the paper
  (random access time in slots, number of banks);
* :mod:`repro.dram.bank` — a single bank with busy/locked-until tracking and
  strict conflict detection;
* :mod:`repro.dram.dram` — the array of banks with an address->bank view;
* :mod:`repro.dram.store` — the logical per-queue FIFO content store (what
  data actually lives in DRAM, independent of which bank holds it).

The timing model is deliberately slot-accurate rather than command-accurate
(no explicit RAS/CAS/precharge): the paper's worst-case arguments are made in
terms of the *random access time* of a bank measured in cell slots, so that is
the granularity the guarantees must be checked at.
"""

from repro.dram.timing import DRAMTiming
from repro.dram.bank import DRAMBank
from repro.dram.dram import BankedDRAM
from repro.dram.store import DRAMQueueStore

__all__ = [
    "DRAMTiming",
    "DRAMBank",
    "BankedDRAM",
    "DRAMQueueStore",
]
