"""Logical per-queue FIFO content of the DRAM.

The banked timing model (:mod:`repro.dram.dram`) tracks *when* banks are busy;
this module tracks *what* the DRAM holds: for each physical queue, the FIFO of
cells that have been evicted from the tail SRAM and not yet fetched into the
head SRAM.  Separating content from timing keeps both halves simple and lets
the RADS and CFDS front-ends share the same storage code.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.errors import BufferOverflowError, QueueEmptyError
from repro.types import Cell


class DRAMQueueStore:
    """Per-queue FIFO storage with an optional global capacity limit.

    The store also supports an *infinite backlog* mode used for head-side-only
    analyses: when a queue is marked as backlogged, popping from it fabricates
    fresh cells with increasing sequence numbers instead of draining real
    content.  This mirrors the assumption in the paper's head-MMA analysis
    that the DRAM always has cells available for any queue the arbiter may
    request.
    """

    def __init__(self, num_queues: int, capacity_cells: Optional[int] = None) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.num_queues = num_queues
        self.capacity_cells = capacity_cells
        self._queues: Dict[int, Deque[Cell]] = {q: deque() for q in range(num_queues)}
        self._backlogged: Dict[int, int] = {}
        self._occupancy = 0
        self._peak_occupancy = 0

    # ------------------------------------------------------------------ #
    # Backlog mode
    # ------------------------------------------------------------------ #
    def mark_backlogged(self, queues: Iterable[int]) -> None:
        """Treat ``queues`` as having an unbounded supply of cells.

        Synthetic cells continue the queue's sequence-number stream after any
        real content already stored, so in-order delivery checks keep working.
        """
        for q in queues:
            self._check_queue(q)
            if q in self._backlogged:
                continue
            fifo = self._queues[q]
            self._backlogged[q] = fifo[-1].seqno + 1 if fifo else 0

    def is_backlogged(self, queue: int) -> bool:
        return queue in self._backlogged

    # ------------------------------------------------------------------ #
    # FIFO operations
    # ------------------------------------------------------------------ #
    def push(self, cell: Cell) -> None:
        """Append ``cell`` to the tail of its queue."""
        self._check_queue(cell.queue)
        if self.capacity_cells is not None and self._occupancy >= self.capacity_cells:
            raise BufferOverflowError("DRAM", self.capacity_cells, self._occupancy + 1)
        self._queues[cell.queue].append(cell)
        self._occupancy += 1
        self._peak_occupancy = max(self._peak_occupancy, self._occupancy)

    def push_many(self, cells: Iterable[Cell]) -> None:
        for cell in cells:
            self.push(cell)

    def pop_block(self, queue: int, count: int) -> List[Cell]:
        """Remove and return up to ``count`` cells from the head of ``queue``.

        For a backlogged queue, missing cells are synthesised.  For a regular
        queue, fewer than ``count`` cells may be returned if the queue drains
        (the MMA tolerates short blocks at the end of a queue).
        """
        self._check_queue(queue)
        if count <= 0:
            raise ValueError("count must be positive")
        out: List[Cell] = []
        fifo = self._queues[queue]
        while fifo and len(out) < count:
            out.append(fifo.popleft())
            self._occupancy -= 1
        if queue in self._backlogged:
            next_seq = self._backlogged[queue]
            while len(out) < count:
                out.append(Cell(queue=queue, seqno=next_seq))
                next_seq += 1
            self._backlogged[queue] = next_seq
        return out

    def occupancy(self, queue: Optional[int] = None) -> int:
        """Number of cells stored (for one queue, or in total)."""
        if queue is None:
            return self._occupancy
        self._check_queue(queue)
        return len(self._queues[queue])

    @property
    def peak_occupancy(self) -> int:
        return self._peak_occupancy

    def has_cells(self, queue: int) -> bool:
        self._check_queue(queue)
        return bool(self._queues[queue]) or queue in self._backlogged

    def peek(self, queue: int) -> Cell:
        """Return (without removing) the head cell of ``queue``."""
        self._check_queue(queue)
        fifo = self._queues[queue]
        if not fifo:
            if queue in self._backlogged:
                return Cell(queue=queue, seqno=self._backlogged[queue])
            raise QueueEmptyError(queue)
        return fifo[0]

    def _check_queue(self, queue: int) -> None:
        if not 0 <= queue < self.num_queues:
            raise ValueError(f"queue {queue} out of range (0..{self.num_queues - 1})")
