"""The banked DRAM array: a collection of banks plus access bookkeeping."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.bank import DRAMBank
from repro.dram.timing import DRAMTiming
from repro.errors import ConfigurationError
from repro.types import ReplenishRequest, TransferJob


class BankedDRAM:
    """An array of :class:`DRAMBank` with slot-level access tracking.

    The object does not know about queues or interleaving policy — that
    knowledge lives in :mod:`repro.core.mapping` (CFDS) or is absent (RADS,
    which treats the DRAM as a single resource).  It only enforces the
    physical constraint: a bank can serve one access per random access time.
    """

    def __init__(self, timing: DRAMTiming, *, strict: bool = True) -> None:
        self.timing = timing
        self.strict = strict
        self._banks: List[DRAMBank] = [
            DRAMBank(index=i, random_access_slots=timing.random_access_slots)
            for i in range(timing.num_banks)
        ]
        self._in_flight: List[TransferJob] = []
        self._completed_jobs = 0
        self._last_issue_slot: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Access initiation and completion
    # ------------------------------------------------------------------ #
    def start_access(self, request: ReplenishRequest, bank: int, slot: int) -> TransferJob:
        """Initiate an access for ``request`` on ``bank`` at ``slot``.

        Returns the :class:`TransferJob` tracking the in-flight access.  The
        job completes (data available) at ``slot + random_access_slots``.
        """
        if not 0 <= bank < len(self._banks):
            raise ConfigurationError(
                f"bank index {bank} out of range (0..{len(self._banks) - 1})")
        if (self._last_issue_slot is not None
                and slot - self._last_issue_slot < self.timing.address_bus_slots
                and slot != self._last_issue_slot):
            # Address-bus constraint: modelled as a configuration error since
            # RADS/CFDS never violate it when correctly dimensioned.
            raise ConfigurationError(
                f"address bus violation: accesses at slots {self._last_issue_slot} and {slot} "
                f"are closer than {self.timing.address_bus_slots} slots")
        finish = self._banks[bank].begin_access(slot, strict=self.strict)
        job = TransferJob(request=request, bank=bank, start_slot=slot, finish_slot=finish)
        self._in_flight.append(job)
        self._last_issue_slot = slot
        return job

    def pop_completed(self, slot: int) -> List[TransferJob]:
        """Return (and remove) jobs whose data is available at ``slot``."""
        done = [job for job in self._in_flight if job.finish_slot <= slot]
        if done:
            self._in_flight = [job for job in self._in_flight if job.finish_slot > slot]
            self._completed_jobs += len(done)
        return done

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def bank(self, index: int) -> DRAMBank:
        """Return the bank object at ``index``."""
        return self._banks[index]

    @property
    def num_banks(self) -> int:
        return len(self._banks)

    def busy_banks(self, slot: int) -> List[int]:
        """Indices of banks still executing an access at ``slot``."""
        return [b.index for b in self._banks if b.is_busy(slot)]

    def is_bank_busy(self, bank: int, slot: int) -> bool:
        return self._banks[bank].is_busy(slot)

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    @property
    def completed_count(self) -> int:
        return self._completed_jobs

    @property
    def total_conflicts(self) -> int:
        """Sum of conflicting access attempts across all banks."""
        return sum(b.conflict_count for b in self._banks)

    def access_histogram(self) -> Dict[int, int]:
        """Map of bank index -> number of accesses started (load-balance view)."""
        return {b.index: b.access_count for b in self._banks}

    def reset(self) -> None:
        for b in self._banks:
            b.reset()
        self._in_flight.clear()
        self._completed_jobs = 0
        self._last_issue_slot = None
