"""Worst-case adversary simulations packaged as runner jobs.

The Section 5 correctness claims (zero head-SRAM misses, zero bank conflicts,
reordering structures inside the analytical bounds) are checked by driving a
head buffer with the round-robin adversary for tens of thousands of slots.
These runs are the only genuinely slow sweeps in the repository, so this
module exposes them as module-level functions with JSON-serialisable
arguments and a compact, JSON-serialisable result — exactly what
:class:`~repro.runner.sweep.SweepRunner` needs to fan them out over worker
processes and cache the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CFDSConfig
from repro.core.head_buffer import CFDSHeadBuffer
from repro.rads.config import RADSConfig
from repro.rads.head_buffer import RADSHeadBuffer
from repro.traffic.arbiters import RoundRobinAdversary


@dataclass(frozen=True)
class WorstCaseSummary:
    """The outcome of one worst-case adversary run, reduced to the numbers
    the paper's claims are stated in."""

    scheme: str
    num_queues: int
    granularity: int
    slots: int
    cells_out: int
    miss_count: int
    bank_conflicts: int
    max_head_sram_occupancy: int
    max_request_register_occupancy: int
    head_sram_bound: int
    request_register_bound: int
    extra_latency_slots: int

    @property
    def zero_miss(self) -> bool:
        return self.miss_count == 0


def run_rads_worst_case(num_queues: int = 32,
                        granularity: int = 8,
                        slots: int = 20_000) -> WorstCaseSummary:
    """Drive a RADS head buffer with the round-robin adversary."""
    config = RADSConfig(num_queues=num_queues, granularity=granularity)
    buffer = RADSHeadBuffer(config)
    adversary = RoundRobinAdversary(config.num_queues)
    unbounded = [10 ** 9] * config.num_queues
    result = buffer.run(adversary.next_request(s, unbounded)
                        for s in range(slots))
    return WorstCaseSummary(
        scheme="RADS",
        num_queues=config.num_queues,
        granularity=config.granularity,
        slots=slots,
        cells_out=result.cells_out,
        miss_count=result.miss_count,
        bank_conflicts=result.bank_conflicts,
        max_head_sram_occupancy=result.max_head_sram_occupancy,
        max_request_register_occupancy=result.max_request_register_occupancy,
        head_sram_bound=config.effective_head_sram_cells,
        request_register_bound=0,
        extra_latency_slots=0,
    )


def run_cfds_worst_case(num_queues: int = 32,
                        dram_access_slots: int = 8,
                        granularity: int = 2,
                        num_banks: int = 64,
                        slots: int = 20_000) -> WorstCaseSummary:
    """Drive a CFDS head buffer with the round-robin adversary."""
    config = CFDSConfig(num_queues=num_queues,
                        dram_access_slots=dram_access_slots,
                        granularity=granularity, num_banks=num_banks)
    buffer = CFDSHeadBuffer(config)
    adversary = RoundRobinAdversary(config.num_queues)
    unbounded = [10 ** 9] * config.num_queues
    result = buffer.run(adversary.next_request(s, unbounded)
                        for s in range(slots))
    return WorstCaseSummary(
        scheme="CFDS",
        num_queues=config.num_queues,
        granularity=config.granularity,
        slots=slots,
        cells_out=result.cells_out,
        miss_count=result.miss_count,
        bank_conflicts=result.bank_conflicts,
        max_head_sram_occupancy=result.max_head_sram_occupancy,
        max_request_register_occupancy=result.max_request_register_occupancy,
        head_sram_bound=config.effective_head_sram_cells,
        request_register_bound=config.effective_rr_capacity,
        extra_latency_slots=config.effective_latency,
    )
