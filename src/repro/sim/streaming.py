"""Long-horizon streaming execution: chunking, warmup, checkpoint/resume.

The monolithic engines materialise the full arrival plan (and, when
recording, the full trace) before the loop, so a run is capped by memory and
a crash loses everything.  This module runs the *same machines* in bounded
chunks:

* **Chunked arrival plans** — each chunk asks the arrival process for just
  its window (:meth:`~repro.traffic.arrivals.ArrivalProcess.arrivals_slice`),
  so peak memory is ``O(chunk_slots)``, independent of the horizon.  The
  chunk concatenation is stream-identical to one monolithic plan, so with
  ``warmup_slots=0`` a streamed run's report is **bit-identical** to
  :meth:`~repro.sim.engine.ClosedLoopSimulation.run` on the same engine, for
  every chunk size (asserted by the differential suite).
* **Warmup discard** — the first ``warmup_slots`` slots run normally (the
  machine state evolves exactly as always) but the measurement collectors
  (latency histogram, throughput counters, drop count) restart at the warmup
  boundary, so the report describes steady state rather than the fill
  transient.  The engineering counters in ``buffer_result`` (peak
  occupancies, misses, DRAM accesses) keep covering the whole run on every
  engine.  The boundary lands at exactly ``warmup_slots`` regardless of
  chunking, so warmup reports are chunk-invariant too.
* **Checkpoint/resume** — every ``checkpoint_every`` slots the complete
  simulation state (buffer, arrival/arbiter RNG streams, partial latency
  histogram, engine core) is serialised to a versioned snapshot file,
  atomically.  :func:`resume_stream` continues a run from its snapshot and
  produces a report bit-identical to the uninterrupted run — pickling
  round-trips ``random.Random`` state, ints and floats exactly.

Checkpoint files are JSON envelopes (format name, version, run geometry, a
SHA-256 of the state blob) around a base64 pickle payload.  Like any pickle,
a snapshot must only be loaded from a trusted source; the digest guards
against truncation and corruption, not against tampering.

Open-ended *feed* sessions (``num_slots=None``) accept externally generated
arrival chunks via :meth:`StreamingSimulation.feed` — that is how the switch
layer streams per-egress fabric traces straight into port simulations
without ever materialising them.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import time
from typing import Any, Callable, Dict, List, Optional

import repro
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    StaleSimulationError,
)
from repro.faults import get_injector
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import emit as trace_emit
from repro.sim.stats import LatencyStats, ThroughputStats

#: Default chunk size: big enough that per-chunk overhead vanishes, small
#: enough that a chunk's arrival plan is a few hundred kilobytes.
DEFAULT_CHUNK_SLOTS = 65536

#: Checkpoint envelope identification.
CHECKPOINT_FORMAT = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 1


class StreamingSimulation:
    """Chunked, checkpointable execution of a ``ClosedLoopSimulation``.

    Args:
        sim: the simulation to drive (same object
            :meth:`~repro.sim.engine.ClosedLoopSimulation.run` would run).
        num_slots: total arrival/request slots, or ``None`` for an
            open-ended session driven by :meth:`feed`.
        engine: ``"reference"``, ``"batched"`` (default) or ``"array"``.
        drain: run the drain window in :meth:`finish`.
        chunk_slots: window size of chunked execution.
        warmup_slots: slots to discard from the measurement statistics.
        checkpoint_every: slots between checkpoint snapshots (requires
            ``checkpoint_path``); ``None`` disables checkpointing.
        checkpoint_path: snapshot file path.
        label: free-form run identity recorded in the checkpoint envelope
            (``Scenario.run_stream`` stores the scenario name) so a resume
            can detect a snapshot that belongs to a different run.
        progress: heartbeat callback for long runs; called from :meth:`run`
            every ``progress_every`` chunks with a dict of ``slot``,
            ``num_slots``, ``chunks``, ``elapsed_s``, ``slots_per_s`` and
            ``eta_s`` (the CLI's ``--progress`` prints it to stderr).
        progress_every: chunks between ``progress`` calls.

    Every session also keeps a private :class:`~repro.obs.metrics.\
MetricsRegistry` of what it did — chunks executed, slots processed,
    checkpoint save counts and latencies.  The snapshot rides inside the
    checkpoint envelope and is restored on resume, so a resumed run reports
    *cumulative* totals identical to the uninterrupted run; :meth:`finish`
    folds the session registry into the globally enabled one (when metrics
    are on) and emits it with the ``stream_finish`` trace event.

    Note that ``record_trace`` keeps the full event list in memory — a
    streamed run with trace recording is still O(``num_slots``).
    """

    def __init__(self, sim, num_slots: Optional[int] = None, *,
                 engine: Optional[str] = None,
                 drain: bool = True,
                 chunk_slots: Optional[int] = None,
                 warmup_slots: int = 0,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_path: Optional[os.PathLike] = None,
                 label: Optional[str] = None,
                 progress: Optional[Callable[[Dict[str, Any]], None]] = None,
                 progress_every: int = 1) -> None:
        from repro.sim.array_engine import ENGINES, build_array_core

        if engine is None:
            engine = "batched"
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r} (known: {', '.join(ENGINES)})")
        if num_slots is not None and num_slots < 0:
            raise ConfigurationError("num_slots must be non-negative")
        if chunk_slots is None:
            chunk_slots = DEFAULT_CHUNK_SLOTS
        if chunk_slots <= 0:
            raise ConfigurationError("chunk_slots must be positive")
        if warmup_slots < 0:
            raise ConfigurationError("warmup_slots must be non-negative")
        if num_slots is not None and warmup_slots > num_slots:
            raise ConfigurationError(
                f"warmup_slots ({warmup_slots}) cannot exceed num_slots "
                f"({num_slots})")
        if checkpoint_every is not None:
            if checkpoint_every <= 0:
                raise ConfigurationError("checkpoint_every must be positive")
            if checkpoint_path is None:
                raise ConfigurationError(
                    "checkpoint_every needs a checkpoint_path to write to")
        if progress_every < 1:
            raise ConfigurationError("progress_every must be at least 1")
        self.sim = sim
        self.engine = engine
        self.num_slots = num_slots
        self.drain = drain
        self.chunk_slots = chunk_slots
        self.warmup_slots = warmup_slots
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.label = label
        self.progress = progress
        self.progress_every = progress_every
        # Per-session observability state (always on: a handful of dict
        # operations per *chunk*, invisible next to a 64k-slot window).
        self._obs = MetricsRegistry()
        # The array/numpy core carries the machine state between chunks (and
        # enforces the freshly-built-buffer contract up front).
        if engine == "array":
            self._core = build_array_core(sim)
        elif engine == "numpy":
            from repro.sim.numpy_engine import build_numpy_core

            self._core = build_numpy_core(sim)
        else:
            self._core = None
        self.slot = 0                    # arrival/request slots completed
        self._warmup_done = warmup_slots == 0
        self._measured_from = 0          # slot measurement started at
        self._drops_baseline = 0         # buffer drops before measurement
        self._finished = False

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #
    def run(self):
        """Run to completion (resuming from wherever :attr:`slot` stands)
        and return the :class:`~repro.sim.engine.SimulationReport`."""
        if self.num_slots is None:
            raise ConfigurationError(
                "run() needs num_slots; open-ended sessions are driven with "
                "feed() and closed with finish()")
        arrivals = self.sim.arrivals
        next_mark = None
        if self.checkpoint_every is not None:
            # The first mark strictly ahead of the current position, so a
            # resumed run never immediately rewrites the snapshot it loaded.
            done = self.slot // self.checkpoint_every
            next_mark = (done + 1) * self.checkpoint_every
        run_started = time.perf_counter()
        start_slot = self.slot
        chunks_done = 0
        while self.slot < self.num_slots:
            stop = min(self.slot + self.chunk_slots, self.num_slots)
            if next_mark is not None and next_mark < stop:
                stop = next_mark
            count = stop - self.slot
            if arrivals is not None:
                window = arrivals.arrivals_slice(self.slot, count)
                plan = window if isinstance(window, list) else list(window)
            else:
                plan = [None] * count
            self._execute(plan)
            chunks_done += 1
            if (self.progress is not None
                    and chunks_done % self.progress_every == 0):
                self._heartbeat(run_started, start_slot, chunks_done)
            if next_mark is not None and self.slot >= next_mark:
                if self.slot < self.num_slots:
                    self.save_checkpoint(self.checkpoint_path)
                next_mark += self.checkpoint_every
        return self.finish()

    def _heartbeat(self, started: float, start_slot: int,
                   chunks_done: int) -> None:
        """Hand the progress callback one snapshot of where the run stands."""
        elapsed = time.perf_counter() - started
        done = self.slot - start_slot
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = ((self.num_slots - self.slot)
                     if self.num_slots is not None else 0)
        self.progress({
            "slot": self.slot,
            "num_slots": self.num_slots,
            "chunks": chunks_done,
            "elapsed_s": elapsed,
            "slots_per_s": rate,
            "eta_s": remaining / rate if rate > 0 else None,
        })

    def feed(self, plan: List[Optional[int]]) -> None:
        """Advance ``len(plan)`` slots with externally supplied arrivals.

        Only valid on open-ended sessions (``num_slots=None``); the warmup
        boundary is honoured even when it falls inside a fed chunk.
        """
        if self.num_slots is not None:
            raise ConfigurationError(
                "feed() is for open-ended sessions; this one has num_slots "
                f"= {self.num_slots}")
        self._execute(plan if isinstance(plan, list) else list(plan))

    def _execute(self, plan: List[Optional[int]]) -> None:
        """Advance over ``plan``, splitting it at the warmup boundary so the
        measurement reset lands at exactly ``warmup_slots`` for any
        chunking."""
        count = len(plan)
        if (not self._warmup_done
                and self.slot < self.warmup_slots <= self.slot + count):
            cut = self.warmup_slots - self.slot
            self._span(plan[:cut])
            self._reset_measurement()
            self._warmup_done = True
            plan = plan[cut:]
        self._span(plan)

    def _span(self, plan: List[Optional[int]]) -> None:
        if self._finished:
            raise StaleSimulationError(
                "this streaming session already produced its report")
        count = len(plan)
        if count == 0:
            return
        start_slot = self.slot
        started = time.perf_counter()
        if self._core is not None:
            self._core.run_span(plan, count)
        elif self.engine == "batched":
            self.sim._run_fast(count, start_slot=self.slot, plan=plan)
        else:
            self.sim._run_slots(count, start_slot=self.slot, plan=plan)
        self.slot += count
        duration = time.perf_counter() - started
        self._obs.inc("stream.chunks")
        self._obs.inc("stream.slots", count)
        self._obs.observe("stream.chunk_s", duration)
        trace_emit("chunk", start_slot=start_slot, slots=count,
                   duration_s=round(duration, 6), engine=self.engine)

    def _reset_measurement(self) -> None:
        """Restart the measurement collectors at the warmup boundary."""
        sim = self.sim
        sim.latency = LatencyStats()
        sim.throughput = ThroughputStats()
        self._measured_from = self.slot
        self._drops_baseline = sim.buffer.dropped_cells
        if self._core is not None:
            self._core.reset_measurement()

    # ------------------------------------------------------------------ #
    # Finishing
    # ------------------------------------------------------------------ #
    def finish(self):
        """Run the drain window and assemble the report.

        With ``warmup_slots=0`` this matches the monolithic ``run()``
        epilogue bit for bit; with warmup, ``throughput.slots`` counts only
        the measured window and drops are measured from the warmup boundary.
        """
        from repro.sim.engine import SimulationReport

        if self._finished:
            # Identical on every engine: without this guard the non-core
            # path would re-run the drain window and return inflated slot
            # counts (the array core raises on its own, via the same check).
            raise StaleSimulationError(
                "this streaming session already produced its report")
        if self.num_slots is not None and self.slot < self.num_slots:
            raise ConfigurationError(
                f"cannot finish at slot {self.slot}: the run is configured "
                f"for {self.num_slots} slots")
        if not self._warmup_done:
            raise ConfigurationError(
                f"only {self.slot} slots were fed, but warmup_slots is "
                f"{self.warmup_slots}")
        sim = self.sim
        if self._core is not None:
            report = self._core.finish(drain=self.drain)
        else:
            buffer = sim.buffer
            if self.drain:
                for cell in buffer.drain():
                    sim.throughput.departures += 1
                    sim.latency.record(cell.arrival_slot, buffer.slot)
            sim.throughput.slots = buffer.slot
            sim.throughput.drops = (buffer.dropped_cells
                                    - self._drops_baseline)
            report = SimulationReport(throughput=sim.throughput,
                                      latency=sim.latency,
                                      buffer_result=buffer.combined_result(),
                                      trace=sim.trace)
        report.throughput.slots -= self._measured_from
        self._finished = True
        # Cumulative session totals: across a checkpoint/resume these are
        # identical to the uninterrupted run's, because the restored
        # snapshot carried the pre-crash state.
        snapshot = self._obs.snapshot()
        active = get_metrics()
        if active is not None and active is not self._obs:
            active.restore(snapshot)
        trace_emit("stream_finish", slot=self.slot,
                   measured_from=self._measured_from,
                   engine=self.engine, label=self.label,
                   counters=snapshot["counters"])
        return report

    def metrics_snapshot(self) -> Dict[str, Any]:
        """This session's cumulative observability state (counters of
        chunks/slots/checkpoints plus chunk and checkpoint timers)."""
        return self._obs.snapshot()

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def save_checkpoint(self, path: os.PathLike) -> None:
        """Serialise the complete run state to ``path``, atomically.

        The payload pickles the simulation and the engine core *together*,
        so state they share (the buffer's scheduler, occupancy tables, RNG
        streams) stays shared after a reload.
        """
        if path is None:
            raise ConfigurationError("save_checkpoint needs a path")
        started = time.perf_counter()
        # Counted before the snapshot is taken so the envelope's own metric
        # state includes this save — that is what makes resumed totals
        # cumulative rather than off by the save they were loaded from.
        self._obs.inc("stream.checkpoints_saved")
        blob = pickle.dumps({
            "sim": self.sim,
            "core": self._core,
            "slot": self.slot,
            "warmup_done": self._warmup_done,
            "measured_from": self._measured_from,
            "drops_baseline": self._drops_baseline,
            "obs": self._obs.snapshot(),
        }, protocol=pickle.HIGHEST_PROTOCOL)
        document = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "repro_version": repro.__version__,
            "label": self.label,
            "engine": self.engine,
            "slot": self.slot,
            "num_slots": self.num_slots,
            "warmup_slots": self.warmup_slots,
            "chunk_slots": self.chunk_slots,
            "checkpoint_every": self.checkpoint_every,
            "drain": self.drain,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "state_b64": base64.b64encode(blob).decode("ascii"),
        }
        path = os.fspath(path)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(tmp, path)
            injector = get_injector()
            if injector is not None:
                # Chaos harness: the plan may tear or bit-flip the envelope
                # we just committed; the resume path must detect it through
                # the digest check and fall back to a clean recompute.
                injector.corrupt_file(
                    path, f"checkpoint-save:{self.label}:{self.slot}")
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        duration = time.perf_counter() - started
        self._obs.observe("stream.checkpoint_save_s", duration)
        trace_emit("checkpoint_saved", path=path, slot=self.slot,
                   bytes=len(blob), duration_s=round(duration, 6))

    @classmethod
    def load_checkpoint(cls, path: os.PathLike, *,
                        checkpoint_every: Optional[int] = None,
                        checkpoint_path: Optional[os.PathLike] = None,
                        progress: Optional[Callable[[Dict[str, Any]], None]]
                        = None,
                        progress_every: int = 1) -> "StreamingSimulation":
        """Reconstruct a session from a snapshot written by
        :meth:`save_checkpoint`.

        The run geometry (slots, warmup, chunking, engine) comes from the
        snapshot; ``checkpoint_every``/``checkpoint_path`` may be overridden
        so a resumed run keeps checkpointing (by default it continues with
        the snapshot's own settings, writing back to ``path``).  The metric
        state saved in the envelope is restored too, so the resumed session
        reports cumulative totals.
        """
        started = time.perf_counter()
        document = read_checkpoint(path)
        try:
            blob = base64.b64decode(document["state_b64"],
                                    validate=True)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {os.fspath(path)!r} is corrupt: state payload "
                f"is not valid base64 ({exc})")
        if hashlib.sha256(blob).hexdigest() != document["sha256"]:
            raise CheckpointError(
                f"checkpoint {os.fspath(path)!r} is corrupt: state digest "
                "mismatch")
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {os.fspath(path)!r} state cannot be "
                f"unpickled: {exc}")
        session = object.__new__(cls)
        session.sim = payload["sim"]
        session.engine = document["engine"]
        session.num_slots = document["num_slots"]
        session.drain = document["drain"]
        session.chunk_slots = document["chunk_slots"]
        session.warmup_slots = document["warmup_slots"]
        session.checkpoint_every = (checkpoint_every
                                    if checkpoint_every is not None
                                    else document.get("checkpoint_every"))
        session.checkpoint_path = (checkpoint_path
                                   if checkpoint_path is not None
                                   else os.fspath(path))
        session.label = document.get("label")
        session.progress = progress
        session.progress_every = progress_every
        session._core = payload["core"]
        session.slot = payload["slot"]
        session._warmup_done = payload["warmup_done"]
        session._measured_from = payload["measured_from"]
        session._drops_baseline = payload["drops_baseline"]
        session._finished = False
        session._obs = MetricsRegistry()
        session._obs.restore(payload.get("obs", {}))
        session._obs.inc("stream.checkpoints_resumed")
        duration = time.perf_counter() - started
        session._obs.observe("stream.checkpoint_restore_s", duration)
        trace_emit("checkpoint_resumed", path=os.fspath(path),
                   slot=session.slot, num_slots=session.num_slots,
                   duration_s=round(duration, 6))
        return session


# --------------------------------------------------------------------- #
# Module-level conveniences
# --------------------------------------------------------------------- #

def run_stream(sim, num_slots: int, *,
               engine: Optional[str] = None,
               drain: bool = True,
               chunk_slots: Optional[int] = None,
               warmup_slots: int = 0,
               checkpoint_every: Optional[int] = None,
               checkpoint_path: Optional[os.PathLike] = None,
               label: Optional[str] = None,
               progress: Optional[Callable[[Dict[str, Any]], None]] = None,
               progress_every: int = 1):
    """One-call streaming run; see :class:`StreamingSimulation`."""
    return StreamingSimulation(sim, num_slots, engine=engine, drain=drain,
                               chunk_slots=chunk_slots,
                               warmup_slots=warmup_slots,
                               checkpoint_every=checkpoint_every,
                               checkpoint_path=checkpoint_path,
                               label=label, progress=progress,
                               progress_every=progress_every).run()


def resume_stream(path: os.PathLike, *,
                  checkpoint_every: Optional[int] = None,
                  checkpoint_path: Optional[os.PathLike] = None,
                  progress: Optional[Callable[[Dict[str, Any]], None]] = None,
                  progress_every: int = 1):
    """Resume a checkpointed run to completion and return its report.

    The continuation is bit-identical to the uninterrupted run: the snapshot
    carries every RNG stream, queue, pipeline register and partial histogram,
    and chunked execution is chunk-invariant, so only wall-clock time is
    lost to the crash.
    """
    injector = get_injector()
    if injector is not None:
        # Chaos harness: the plan may corrupt the snapshot *before* the load
        # reads it — the digest check must turn that into a CheckpointError
        # the caller handles by recomputing from scratch.
        injector.corrupt_file(path, f"checkpoint-resume:{os.fspath(path)}")
    return StreamingSimulation.load_checkpoint(
        path, checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path, progress=progress,
        progress_every=progress_every).run()


def read_checkpoint(path: os.PathLike) -> dict:
    """Read and validate a checkpoint envelope (without unpickling state).

    Returns the JSON document; raises
    :class:`~repro.errors.CheckpointError` when the file is missing, not a
    checkpoint, or from an incompatible format version.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint: {exc}")
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} is not valid JSON: {exc}")
    if not isinstance(document, dict) \
            or document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{os.fspath(path)!r} is not a repro streaming checkpoint")
    version = document.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} has format version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}")
    for key in ("engine", "slot", "num_slots", "warmup_slots", "chunk_slots",
                "drain", "sha256", "state_b64"):
        if key not in document:
            raise CheckpointError(
                f"checkpoint {os.fspath(path)!r} is missing field {key!r}")
    return document


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "DEFAULT_CHUNK_SLOTS",
    "StreamingSimulation",
    "read_checkpoint",
    "resume_stream",
    "run_stream",
]
