"""Closed-loop, slot-level simulation harness.

The buffers in :mod:`repro.rads` and :mod:`repro.core` are stepped one slot at
a time; this package provides the loop that drives a buffer with an arrival
process and an arbiter, enforces admissibility, and gathers the statistics the
examples and benchmarks report (throughput, delays, SRAM occupancies, zero-miss
verdicts).
"""

from repro.sim.stats import LatencyStats, ThroughputStats
from repro.sim.engine import ClosedLoopSimulation, SimulationReport

__all__ = [
    "LatencyStats",
    "ThroughputStats",
    "ClosedLoopSimulation",
    "SimulationReport",
]
