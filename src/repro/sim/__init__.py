"""Closed-loop, slot-level simulation harness.

The buffers in :mod:`repro.rads` and :mod:`repro.core` are stepped one slot at
a time; this package provides the loop that drives a buffer with an arrival
process and an arbiter, enforces admissibility, and gathers the statistics the
examples and benchmarks report (throughput, delays, SRAM occupancies, zero-miss
verdicts).
"""

from repro.sim.stats import LatencyStats, ThroughputStats
from repro.sim.engine import ClosedLoopSimulation, SimulationReport
from repro.sim.array_engine import ENGINES, build_array_core, run_array
from repro.sim.numpy_engine import (
    NUMPY_AVAILABLE,
    build_numpy_core,
    run_numpy,
)
from repro.sim.ring import IntRing
from repro.sim.streaming import (
    StreamingSimulation,
    read_checkpoint,
    resume_stream,
    run_stream,
)
from repro.sim.worstcase import (
    WorstCaseSummary,
    run_cfds_worst_case,
    run_rads_worst_case,
)

__all__ = [
    "LatencyStats",
    "ThroughputStats",
    "ClosedLoopSimulation",
    "SimulationReport",
    "ENGINES",
    "build_array_core",
    "run_array",
    "NUMPY_AVAILABLE",
    "build_numpy_core",
    "run_numpy",
    "IntRing",
    "StreamingSimulation",
    "read_checkpoint",
    "resume_stream",
    "run_stream",
    "WorstCaseSummary",
    "run_rads_worst_case",
    "run_cfds_worst_case",
]
