"""Optional compiled span kernel for the numpy engine's RADS fast path.

:mod:`repro.sim.numpy_engine` precomputes the RNG streams and runs a fused
python slot loop; that loop's ceiling is CPython's bytecode dispatch.  This
module removes it *without adding a dependency*: the bundled C99 source
``_spankernel.c`` is compiled on first use with the system compiler
(``cc -O2 -march=native -shared -fPIC``, falling back to plain ``-O2``),
cached under the user's private cache directory (``$XDG_CACHE_HOME`` or
``~/.cache``, created ``0o700`` and ownership-verified before every load)
keyed by a hash of the source and the interpreter/platform tags, and loaded
through :mod:`ctypes` — no ``Python.h``, no build backend, no wheels.

The kernel executes whole spans natively: it resumes the arbiter's (and,
for monolithic Bernoulli runs, the arrival process's) Mersenne Twister from
the ``random.Random`` state, runs the exact RADS slot loop on flat copies
of the core's state, and hands back the mutated state plus the final RNG
words, which are applied to the python core only on success.  Failure at
any stage — no compiler, compile error, load error, strict-mode aborts
inside the span, or the ``REPRO_SPAN_KERNEL=0`` kill switch — falls back
to the fused python loop on the untouched state, so the kernel is a pure
accelerator: every result it produces is bit-identical to the scalar
reference loop (asserted by ``tests/sim/test_numpy_engine.py``, which runs
the suite through both paths).

Sanitizer-hardened builds
-------------------------
Setting ``REPRO_SPAN_KERNEL_SANITIZE=1`` switches the build to
``-g -O1 -fsanitize=address,undefined -fno-sanitize-recover=all`` so any
out-of-bounds write or undefined behaviour in the C source aborts the
process instead of silently corrupting state (the bug class PR 9's
bounds-checked writebacks defend against).  The sanitized ``.so`` is cached
under its own tag, never mixed with production builds.  Loading it into a
stock CPython requires the sanitizer runtimes to be preloaded and real
``malloc`` in use::

    LD_PRELOAD="$(gcc -print-file-name=libasan.so) \\
                $(gcc -print-file-name=libubsan.so)" \\
    PYTHONMALLOC=malloc ASAN_OPTIONS=detect_leaks=0 \\
    REPRO_SPAN_KERNEL_SANITIZE=1 python -m pytest tests/sim/

(``PYTHONMALLOC=malloc`` matters: pymalloc arenas carry no ASan redzones,
so overflows on Python-allocated buffers would go unseen.)  The
``benchmarks/kernel_sanitize_check.py`` harness sets all of this up and
replays the PR 9 backlog-migration overflow stressor; CI runs it in the
``kernel-sanitize`` job.  Without the preload, ``CDLL`` fails and the
engine falls back to the fused python loop as usual.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import sysconfig
import tempfile
import threading
import weakref
from collections import deque
from itertools import chain
from pathlib import Path
from typing import List, Optional

from repro.obs.metrics import get_metrics
from repro.sim.array_engine import _INF
from repro.sim.ring import IntRing
from repro.types import MissRecord

#: Environment kill switch: set to ``0``/``off``/``false`` to disable the
#: compiled kernel (the fused python loop still runs; results identical).
KERNEL_ENV = "REPRO_SPAN_KERNEL"

#: Set to ``1``/``on`` to compile the kernel with ASan+UBSan (abort on any
#: memory error or UB).  See the module docstring for the required runtime
#: environment; results remain bit-identical to the production build.
SANITIZE_ENV = "REPRO_SPAN_KERNEL_SANITIZE"

#: Spans shorter than this stay on the fused python loop — the per-span
#: state marshalling is O(state), so tiny chunks would pay more moving
#: state than simulating it.
MIN_KERNEL_SLOTS = 192

_SOURCE = Path(__file__).with_name("_spankernel.c")

_ERR_OK = 0

_CRIT_INF = (1 << 63) - 1  # INT64_MAX, the C marker for "no critical entry"

_lock = threading.Lock()
_kernel = None
_kernel_tried = False

#: Per-core cache of the ``_bl8`` shift table as an ndarray.  Deliberately
#: NOT an attribute on the core: streaming checkpoints pickle the core
#: verbatim, and an embedded ndarray would make the snapshot unloadable on
#: a host without numpy (the documented no-numpy resume path).
_bl8_arrays: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class KCfg(ctypes.Structure):
    """Mirror of ``kcfg`` in ``_spankernel.c`` (field order is the ABI)."""

    _fields_ = [(n, ctypes.c_int64) for n in (
        "num_queues", "granularity", "strict", "tail_cap",
        "dram_cap", "sram_cap", "la_len", "num_slots", "start_slot",
        "is_main", "arb_tint", "plan_mode", "bern_tint")] + [
        ("bern_total", ctypes.c_double)] + [
        (n, ctypes.c_int64) for n in (
            "tail_total", "dram_total", "sram_total", "la_pos", "negatives",
            "cells_in", "cells_out", "dram_reads", "dram_writes", "dropped",
            "max_tail", "max_head", "crit_len", "pending_len",
            "eligible_len", "ecqf_fallback",
            "n_delays", "n_head_miss", "n_tail_miss", "n_drained",
            "arrivals_seen", "grants", "pend_head_out", "pend_flat_off_out",
            "drain_slots",
            "tail_ocap", "dram_ocap", "sram_ocap", "req_ocap", "arr_ocap",
            "pend_cap", "pend_flat_cap", "crit_cap")]


_U32P = ctypes.POINTER(ctypes.c_uint32)
_I64P = ctypes.POINTER(ctypes.c_int64)
_F64P = ctypes.POINTER(ctypes.c_double)
_U8P = ctypes.POINTER(ctypes.c_uint8)


class KPtrs(ctypes.Structure):
    """Mirror of ``kptrs`` in ``_spankernel.c`` (field order is the ABI)."""

    _fields_ = [
        ("arb_key", _U32P), ("arb_meta", _I64P),
        ("bern_key", _U32P), ("bern_meta", _I64P),
        ("cum_weights", _F64P), ("plan", _U8P), ("bl8", _I64P),
        ("backlog", _I64P), ("next_seqno", _I64P), ("delivered", _I64P),
        ("counters", _I64P), ("req_count", _I64P),
        ("tail_occ", _I64P), ("dram_occ", _I64P), ("crit_cache", _I64P),
        ("eligible", _I64P),
        ("sram_icnt", _I64P), ("arr_icnt", _I64P),
        ("tail_iflat", _I64P), ("dram_iflat", _I64P), ("sram_iflat", _I64P),
        ("req_iflat", _I64P), ("arr_iflat", _I64P),
        ("sram_ocnt", _I64P), ("arr_ocnt", _I64P),
        ("tail_oflat", _I64P), ("dram_oflat", _I64P), ("sram_oflat", _I64P),
        ("req_oflat", _I64P), ("arr_oflat", _I64P),
        ("la_ring", _I64P), ("crit_heap", _I64P),
        ("pending_fin", _I64P), ("pending_q", _I64P),
        ("pending_cnt", _I64P), ("pending_flat", _I64P),
        ("delays", _I64P),
        ("head_miss_q", _I64P), ("head_miss_slot", _I64P),
        ("drained", _I64P),
    ]


def kernel_enabled() -> bool:
    """False when the ``REPRO_SPAN_KERNEL`` kill switch is set."""
    return os.environ.get(KERNEL_ENV, "").strip().lower() not in (
        "0", "off", "false", "no")


def sanitize_enabled() -> bool:
    """True when ``REPRO_SPAN_KERNEL_SANITIZE`` asks for an ASan/UBSan
    build."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in (
        "1", "on", "true", "yes")


def sanitizer_preload() -> Optional[str]:
    """The ``LD_PRELOAD`` value a sanitized kernel needs, or ``None``.

    ``CDLL`` on an ASan-instrumented ``.so`` only works when the sanitizer
    runtimes are already in the process image; the harness spawns a child
    with this preload set.  Returns ``None`` when no compiler is available
    or it cannot name the runtime libraries (non-GNU toolchains).
    """
    cc = _compiler()
    if cc is None:
        return None
    libs = []
    for lib in ("libasan.so", "libubsan.so"):
        try:
            proc = subprocess.run([cc, f"-print-file-name={lib}"],
                                  capture_output=True, text=True, timeout=30)
        except (OSError, subprocess.SubprocessError):
            return None
        name = proc.stdout.strip()
        # An unresolved name is echoed back verbatim; a resolved one is an
        # absolute path.
        if proc.returncode != 0 or not name or not os.path.isabs(name):
            return None
        libs.append(name)
    return " ".join(libs)


def _cache_dir() -> Path:
    """User-private cache directory for the compiled kernel.

    Never a world-shared location: on a multi-user host a shared temp
    directory would let another local user pre-plant a ``.so`` under a
    predictable name (the tag is computable from public data) that we
    would then ``CDLL`` — arbitrary code execution.  XDG_CACHE_HOME (or
    ``~/.cache``) is user-owned; the sticky-bit tempdir fallback for
    homeless environments is defused by :func:`_trusted`, which refuses
    anything we do not exclusively own.
    """
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    if xdg:
        return Path(xdg) / "repro" / "spankernel"
    try:
        home = Path.home()
    except (RuntimeError, OSError):
        home = None
    if home is not None and str(home) not in ("", "/"):
        return home / ".cache" / "repro" / "spankernel"
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-spankernel-{uid}"


def _trusted(path: Path, want_dir: bool = False) -> bool:
    """True when ``path`` is exclusively ours: owned by the current uid,
    not writable by group/other, and of the expected type (``lstat`` — a
    planted symlink is never followed).  Non-POSIX platforms have no
    shared-tempdir exposure and no ``getuid``; trust the path there."""
    if not hasattr(os, "getuid"):  # pragma: no cover - POSIX-only repo CI
        return True
    import stat

    try:
        st = os.lstat(path)
    except OSError:
        return False
    if st.st_uid != os.getuid() or st.st_mode & (stat.S_IWGRP | stat.S_IWOTH):
        return False
    return stat.S_ISDIR(st.st_mode) if want_dir else stat.S_ISREG(st.st_mode)


def _cache_path() -> Path:
    digest = hashlib.sha256()
    digest.update(_SOURCE.read_bytes())
    digest.update(sys.implementation.cache_tag.encode())
    digest.update(sysconfig.get_platform().encode())
    if sanitize_enabled():
        # A sanitized .so must never be picked up by a production run (it
        # would fail to load without the preload) nor vice versa.
        digest.update(b"asan-ubsan")
        suffix = "-sanitize"
    else:
        suffix = ""
    tag = digest.hexdigest()[:20]
    return _cache_dir() / f"spankernel-{tag}{suffix}.so"


def _compiler() -> Optional[str]:
    from shutil import which

    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and which(cand):
            return cand
    return None


def _compile(path: Path) -> bool:
    cc = _compiler()
    if cc is None:
        return False
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        if hasattr(os, "getuid"):
            os.chmod(path.parent, 0o700)  # mkdir mode is umask-clipped
    except OSError:
        return False
    if not _trusted(path.parent, want_dir=True):
        return False
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    # Never -ffast-math: the kernel reproduces CPython's exact IEEE-754
    # double expressions for random() and choices().  -march=native is safe
    # (the cache directory is per-machine and the kernel's floating point is
    # isolated multiplies, nothing contraction-sensitive) but not guaranteed
    # to be supported, so fall back to plain -O2.  Sanitized builds trade
    # speed for checking: -O1 keeps line info honest and -fno-sanitize-
    # recover turns every finding into an abort.
    if sanitize_enabled():
        flag_sets = (
            ["-g", "-O1", "-fsanitize=address,undefined",
             "-fno-sanitize-recover=all"],
        )
    else:
        flag_sets = (["-O2", "-march=native"], ["-O2"])
    for extra in flag_sets:
        cmd = [cc, *extra, "-shared", "-fPIC", "-o", str(tmp), str(_SOURCE)]
        try:
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL, timeout=120)
            if proc.returncode == 0:
                if hasattr(os, "getuid"):
                    os.chmod(tmp, 0o700)
                os.replace(tmp, path)
                return True
        except (OSError, subprocess.SubprocessError):
            return False
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
    return False


def load_kernel():
    """The loaded kernel's ``rads_run_span`` or ``None`` (cached; a failed
    attempt is not retried within the process)."""
    global _kernel, _kernel_tried
    if _kernel_tried:
        return _kernel
    with _lock:
        if _kernel_tried:
            return _kernel
        fn = None
        try:
            if kernel_enabled() and _SOURCE.is_file():
                path = _cache_path()
                # Load nothing we do not exclusively own: a pre-planted
                # cache dir or .so (wrong owner, group/other-writable, or
                # a symlink) is skipped, not trusted — the engine falls
                # back to the fused python loop.
                if ((path.is_file() or _compile(path))
                        and _trusted(path.parent, want_dir=True)
                        and _trusted(path)):
                    lib = ctypes.CDLL(str(path))
                    fn = lib.rads_run_span
                    fn.restype = ctypes.c_int64
                    fn.argtypes = [ctypes.POINTER(KCfg),
                                   ctypes.POINTER(KPtrs)]
        except OSError:
            fn = None
        _kernel = fn
        _kernel_tried = True
        obs = get_metrics()
        if obs is not None:
            obs.inc("engine.numpy.kernel_loaded" if fn is not None
                    else "engine.numpy.kernel_unavailable")
        return _kernel


def _ptr_i64(arr):
    return arr.ctypes.data_as(_I64P)


def run_span_kernel(core, aplan, num_slots: int, main: bool = True,
                    bern=None, drain_slots: int = 0) -> bool:
    """Run one span on the compiled kernel; ``True`` on success.

    ``aplan`` is the plan ``bytes`` (255 = no arrival) or ``None``;
    ``bern = (rng, tint, cum_weights, total)`` makes the kernel draw the
    Bernoulli arrival plan natively instead.  ``drain_slots`` appends that
    many drain-mode slots after the main window in the *same* call (the
    monolithic fused path: one marshal instead of two).  On any failure
    (kernel unavailable, strict-mode abort inside the span, allocation
    failure) the python core is left untouched and the caller falls back
    to the fused python loop, which reproduces the exact outcome —
    including the exception and the post-raise state.
    """
    fn = load_kernel()
    if fn is None:
        return False
    import numpy as np

    nq = core.num_queues
    g = core.granularity
    i64 = np.int64

    cfg = KCfg()
    cfg.num_queues = nq
    cfg.granularity = g
    cfg.strict = 1 if core.strict else 0
    cfg.tail_cap = core.tail_cap
    cfg.dram_cap = -1 if core.dram_cap is None else core.dram_cap
    cfg.sram_cap = -1 if core.sram_cap is None else core.sram_cap
    cfg.la_len = core.la_len
    cfg.num_slots = num_slots
    cfg.start_slot = core.slot
    cfg.is_main = 1 if main else 0
    cfg.ecqf_fallback = 1 if core.ecqf_fallback else 0
    cfg.drain_slots = drain_slots
    # Out buffers are sized for the whole call, drain window included.
    total_slots = num_slots + drain_slots

    ptr = KPtrs()
    keep = []  # keeps every backing array alive across the C call

    def i64arr(values, size=None):
        arr = np.array(values, dtype=i64)
        if size is not None and len(arr) < size:
            arr = np.concatenate([arr, np.zeros(size - len(arr), dtype=i64)])
        keep.append(arr)
        return arr

    def out_i64(size):
        arr = np.empty(max(size, 1), dtype=i64)
        keep.append(arr)
        return arr

    # -- RNG states -----------------------------------------------------
    rng = core.sim.arbiter._rng if main else None
    if main:
        from repro.sim.numpy_engine import _gate_threshold

        arb_state = rng.getstate()
        arb_key = np.array(arb_state[1][:624], dtype=np.uint32)
        arb_meta = i64arr([arb_state[1][624], 0])
        cfg.arb_tint = _gate_threshold(core.sim.arbiter.load)
    else:
        arb_state = None
        arb_key = np.zeros(624, dtype=np.uint32)
        arb_meta = i64arr([0, 0])
        cfg.arb_tint = 0
    keep.append(arb_key)
    ptr.arb_key = arb_key.ctypes.data_as(_U32P)
    ptr.arb_meta = _ptr_i64(arb_meta)

    if bern is not None:
        bern_rng, bern_tint, cum_weights, total = bern
        bern_state = bern_rng.getstate()
        bern_key = np.array(bern_state[1][:624], dtype=np.uint32)
        bern_meta = i64arr([bern_state[1][624], 0])
        cw = np.array(cum_weights, dtype=np.float64)
        keep.extend([bern_key, cw])
        cfg.plan_mode = 1
        cfg.bern_tint = bern_tint
        cfg.bern_total = total
        ptr.bern_key = bern_key.ctypes.data_as(_U32P)
        ptr.bern_meta = _ptr_i64(bern_meta)
        ptr.cum_weights = cw.ctypes.data_as(_F64P)
        plan_arr = None
    else:
        bern_rng = bern_state = bern_key = bern_meta = None
        cfg.plan_mode = 0 if (main and aplan is not None) else 2
        cfg.bern_tint = 0
        cfg.bern_total = 0.0
        if cfg.plan_mode == 0:
            plan_arr = np.frombuffer(bytes(aplan), dtype=np.uint8)
            keep.append(plan_arr)
            ptr.plan = plan_arr.ctypes.data_as(_U8P)
        else:
            plan_arr = None

    bl8 = _bl8_arrays.get(core)
    if bl8 is None:
        bl8 = _bl8_arrays[core] = np.array(core._bl8, dtype=i64)
    ptr.bl8 = _ptr_i64(bl8)

    # -- per-queue scalars ----------------------------------------------
    backlog = i64arr(core.backlog)
    next_seqno = i64arr(core.next_seqno)
    delivered = i64arr(core.delivered)
    counters = i64arr(core.counters)
    req_count = i64arr(core.req_count)
    tail_occ = i64arr(core.tail_occ)
    dram_occ = i64arr(core.dram_occ)
    crit_cache = i64arr([_CRIT_INF if v == _INF else v
                         for v in core.crit_cache])
    eligible = i64arr(core.eligible, size=nq)
    for name, arr in (("backlog", backlog), ("next_seqno", next_seqno),
                      ("delivered", delivered), ("counters", counters),
                      ("req_count", req_count), ("tail_occ", tail_occ),
                      ("dram_occ", dram_occ), ("crit_cache", crit_cache),
                      ("eligible", eligible)):
        setattr(ptr, name, _ptr_i64(arr))
    cfg.eligible_len = len(core.eligible)

    # -- per-queue contents (live windows, flattened) --------------------
    sram_icnt = i64arr([len(h) for h in core.sram_heap])
    arr_windows = [core.arr_slots[q][core.delivered[q] - core.arr_base[q]:]
                   for q in range(nq)]
    arr_icnt = i64arr([len(w) for w in arr_windows])
    tail_iflat = i64arr(list(chain.from_iterable(core.tail_fifo)))
    dram_iflat = i64arr(list(chain.from_iterable(core.dram_fifo)))
    sram_iflat = i64arr(list(chain.from_iterable(core.sram_heap)))
    req_iflat = i64arr(list(chain.from_iterable(
        core.req_slots[q][core.req_head[q]:] for q in range(nq))))
    arr_iflat = i64arr(list(chain.from_iterable(arr_windows)))
    ptr.sram_icnt = _ptr_i64(sram_icnt)
    ptr.arr_icnt = _ptr_i64(arr_icnt)
    ptr.tail_iflat = _ptr_i64(tail_iflat)
    ptr.dram_iflat = _ptr_i64(dram_iflat)
    ptr.sram_iflat = _ptr_i64(sram_iflat)
    ptr.req_iflat = _ptr_i64(req_iflat)
    ptr.arr_iflat = _ptr_i64(arr_iflat)

    sram_ocnt = out_i64(nq)
    arr_ocnt = out_i64(nq)
    # Worst-case out sizes: cells only enter the machine as arrivals (at
    # most one per main slot), but existing backlog migrates freely — the
    # tail MMA can push the whole tail backlog into DRAM, and replenish can
    # land tail+DRAM backlog (plus in-flight pending cells) in head SRAM.
    # The kernel additionally verifies every out capacity (cfg.*_ocap)
    # before writing and aborts with ERR_CAP, so a formula gap degrades to
    # the scalar-loop fallback, never an out-of-bounds write.
    backlog_cells = core.tail_total + core.dram_total
    tail_oflat = out_i64(core.tail_total + total_slots + 8)
    dram_oflat = out_i64(backlog_cells + total_slots + 8)
    pending_cells = sum(len(seqs) for _, _, seqs in core.pending)
    sram_oflat = out_i64(core.sram_total + pending_cells + backlog_cells
                         + total_slots + 8)
    req_oflat = out_i64(len(req_iflat) + total_slots + 8)
    arr_oflat = out_i64(len(arr_iflat) + total_slots + 8)
    ptr.sram_ocnt = _ptr_i64(sram_ocnt)
    ptr.arr_ocnt = _ptr_i64(arr_ocnt)
    ptr.tail_oflat = _ptr_i64(tail_oflat)
    ptr.dram_oflat = _ptr_i64(dram_oflat)
    ptr.sram_oflat = _ptr_i64(sram_oflat)
    ptr.req_oflat = _ptr_i64(req_oflat)
    ptr.arr_oflat = _ptr_i64(arr_oflat)
    cfg.tail_ocap = len(tail_oflat)
    cfg.dram_ocap = len(dram_oflat)
    cfg.sram_ocap = len(sram_oflat)
    cfg.req_ocap = len(req_oflat)
    cfg.arr_ocap = len(arr_oflat)

    la_ring = i64arr([-1 if v is None else v for v in core.lookahead])
    ptr.la_ring = _ptr_i64(la_ring)
    cfg.la_pos = core.la_pos

    crit_heap = i64arr([(entered << 16) | queue
                        for entered, queue in core.crit_heap],
                       size=len(core.crit_heap) + 3 * total_slots + 16)
    ptr.crit_heap = _ptr_i64(crit_heap)
    cfg.crit_len = len(core.crit_heap)
    cfg.crit_cap = len(crit_heap)

    pend_cap = len(core.pending) + total_slots // g + 4
    pending_fin = i64arr([fin for fin, _, _ in core.pending], size=pend_cap)
    pending_q = i64arr([q for _, q, _ in core.pending], size=pend_cap)
    pending_cnt = i64arr([len(seqs) for _, _, seqs in core.pending],
                         size=pend_cap)
    pending_flat = i64arr(list(chain.from_iterable(
        seqs for _, _, seqs in core.pending)),
        size=pending_cells + total_slots + g + 8)
    ptr.pending_fin = _ptr_i64(pending_fin)
    ptr.pending_q = _ptr_i64(pending_q)
    ptr.pending_cnt = _ptr_i64(pending_cnt)
    ptr.pending_flat = _ptr_i64(pending_flat)
    cfg.pending_len = len(core.pending)
    cfg.pend_cap = len(pending_fin)
    cfg.pend_flat_cap = len(pending_flat)

    delays = out_i64(num_slots)
    head_miss_q = out_i64(total_slots)
    head_miss_slot = out_i64(total_slots)
    drained = out_i64(total_slots)
    ptr.delays = _ptr_i64(delays)
    ptr.head_miss_q = _ptr_i64(head_miss_q)
    ptr.head_miss_slot = _ptr_i64(head_miss_slot)
    ptr.drained = _ptr_i64(drained)

    # -- remaining scalars ----------------------------------------------
    cfg.tail_total = core.tail_total
    cfg.dram_total = core.dram_total
    cfg.sram_total = core.sram_total
    cfg.negatives = core.negatives
    cfg.cells_in = core.cells_in
    cfg.cells_out = core.cells_out
    cfg.dram_reads = core.dram_reads
    cfg.dram_writes = core.dram_writes
    cfg.dropped = core.dropped
    cfg.max_tail = core.max_tail
    cfg.max_head = core.max_head

    rc = fn(ctypes.byref(cfg), ctypes.byref(ptr))
    obs = get_metrics()
    if rc != _ERR_OK:
        # Nothing was written back: the arrays above are copies, the python
        # core is untouched — the caller's fused loop replays the span and
        # raises (or recovers) with the exact reference state.
        if obs is not None:
            obs.inc("engine.numpy.kernel_aborts")
        return False

    # -- apply the kernel's state to the python core ---------------------
    if obs is not None:
        obs.inc("engine.numpy.kernel_spans")
        obs.inc("engine.numpy.kernel_slots", total_slots)
    core.backlog[:] = backlog.tolist()
    core.next_seqno[:] = next_seqno.tolist()
    new_delivered = delivered.tolist()
    core.delivered[:] = new_delivered
    core.counters[:] = counters.tolist()
    core.req_count[:] = req_count.tolist()
    new_tail_occ = tail_occ.tolist()
    core.tail_occ[:] = new_tail_occ
    new_dram_occ = dram_occ.tolist()
    core.dram_occ[:] = new_dram_occ
    core.crit_cache[:] = [_INF if v == _CRIT_INF else v
                          for v in crit_cache.tolist()]
    core.eligible[:] = eligible[:cfg.eligible_len].tolist()

    def split(flat, counts):
        # tolist only the used prefix — the out buffers are over-allocated
        # to worst case and converting the slack would dominate the apply.
        segs = []
        off = 0
        used = flat[:sum(counts)].tolist()
        for cnt in counts:
            segs.append(used[off:off + cnt])
            off += cnt
        return segs

    new_sram_cnt = sram_ocnt.tolist()
    new_arr_cnt = arr_ocnt.tolist()
    tail_segs = split(tail_oflat, new_tail_occ)
    dram_segs = split(dram_oflat, new_dram_occ)
    sram_segs = split(sram_oflat, new_sram_cnt)
    req_segs = split(req_oflat, req_count.tolist())
    arr_segs = split(arr_oflat, new_arr_cnt)

    def refill(ring: IntRing, values: List[int]) -> None:
        ring.clear()
        for value in values:
            ring.push(value)

    for q in range(nq):
        if new_tail_occ[q] or core.tail_fifo[q]:
            refill(core.tail_fifo[q], tail_segs[q])
        if new_dram_occ[q] or core.dram_fifo[q]:
            refill(core.dram_fifo[q], dram_segs[q])
        core.sram_heap[q][:] = sram_segs[q]   # valid heap, identical pops
        core.req_slots[q][:] = req_segs[q]
        core.req_head[q] = 0
        core.arr_slots[q][:] = arr_segs[q]
        core.arr_base[q] = new_delivered[q]

    core.lookahead[:] = [None if v < 0 else v for v in la_ring.tolist()]
    core.la_pos = cfg.la_pos
    core.crit_heap[:] = [(key >> 16, key & 0xFFFF)
                         for key in crit_heap[:cfg.crit_len].tolist()]
    pend_lo = cfg.pend_head_out
    pend_hi = pend_lo + cfg.pending_len
    pend_segs = split(pending_flat[cfg.pend_flat_off_out:],
                      pending_cnt[pend_lo:pend_hi].tolist())
    core.pending = deque(zip(pending_fin[pend_lo:pend_hi].tolist(),
                             pending_q[pend_lo:pend_hi].tolist(),
                             pend_segs))

    core.tail_total = cfg.tail_total
    core.dram_total = cfg.dram_total
    core.sram_total = cfg.sram_total
    core.negatives = cfg.negatives
    core.cells_in = cfg.cells_in
    core.cells_out = cfg.cells_out
    core.dram_reads = cfg.dram_reads
    core.dram_writes = cfg.dram_writes
    core.dropped = cfg.dropped
    core.max_tail = cfg.max_tail
    core.max_head = cfg.max_head

    if cfg.n_delays:
        hist = core.hist
        values, counts = np.unique(delays[:cfg.n_delays],
                                   return_counts=True)
        for delay, count in zip(values.tolist(), counts.tolist()):
            hist[delay] = hist.get(delay, 0) + count
    if cfg.n_drained:
        core.drained.extend(drained[:cfg.n_drained].tolist())
    if cfg.n_head_miss:
        core.head_misses.extend(
            MissRecord(queue=q, slot=s)
            for q, s in zip(head_miss_q[:cfg.n_head_miss].tolist(),
                            head_miss_slot[:cfg.n_head_miss].tolist()))
    if cfg.n_tail_miss:
        core.tail_misses.extend([None] * cfg.n_tail_miss)

    core.slot += total_slots
    if main:
        core.main_slots += num_slots
        core.arrivals_count += cfg.arrivals_seen
        core.departures += cfg.n_delays
        core.idle_requests += num_slots - cfg.grants
        rng.setstate((3, tuple(arb_key.tolist()) + (int(arb_meta[0]),),
                      arb_state[2]))
    if bern_rng is not None:
        bern_rng.setstate((3, tuple(bern_key.tolist())
                           + (int(bern_meta[0]),), bern_state[2]))
    del keep
    return True
