"""Growable integer ring buffer — the queue primitive of the array engine.

The struct-of-arrays simulation core (:mod:`repro.sim.array_engine`) keeps
every per-queue FIFO (tail SRAM content, DRAM content, arrival-slot store) as
plain integers in a ring buffer: a preallocated Python list indexed by head
and tail cursors.  Pushing and popping move the cursors; no node objects, no
per-element allocation beyond the stored ``int`` itself.  When a ring fills
up, its storage doubles (amortised O(1) push), so a single ring serves both
the shallow tail-SRAM FIFOs and an unbounded DRAM backlog.
"""

from __future__ import annotations

from typing import Iterator, List

#: Initial storage slots of a fresh ring (power of two so the capacity stays
#: a power of two under doubling and the index mask stays cheap).
_INITIAL_CAPACITY = 8


class IntRing:
    """A FIFO of integers backed by a preallocated, doubling ring buffer.

    Operations::

        ring = IntRing()
        ring.push(seqno)        # append at the tail
        ring.peekleft()         # oldest element (head), without removing
        ring.popleft()          # remove and return the head
        len(ring)               # current element count

    ``popleft``/``peekleft`` on an empty ring raise :class:`IndexError`, the
    same contract as :class:`collections.deque`.
    """

    __slots__ = ("_buf", "_mask", "_head", "_size")

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        size = _INITIAL_CAPACITY
        while size < capacity:
            size <<= 1
        self._buf: List[int] = [0] * size
        self._mask = size - 1
        self._head = 0
        self._size = 0

    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Current storage slots (grows by doubling, never shrinks)."""
        return self._mask + 1

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, value: int) -> None:
        """Append ``value`` at the tail of the FIFO."""
        if self._size > self._mask:
            self._grow()
        self._buf[(self._head + self._size) & self._mask] = value
        self._size += 1

    def popleft(self) -> int:
        """Remove and return the oldest element."""
        if self._size == 0:
            # Deliberate deque parity: popleft on empty mirrors
            # collections.deque, which callers already handle.
            raise IndexError(  # repro-lint: disable=error-taxonomy
                "pop from an empty IntRing")
        value = self._buf[self._head]
        self._head = (self._head + 1) & self._mask
        self._size -= 1
        return value

    def peekleft(self) -> int:
        """Return the oldest element without removing it."""
        if self._size == 0:
            # Deliberate deque parity (see popleft).
            raise IndexError(  # repro-lint: disable=error-taxonomy
                "peek into an empty IntRing")
        return self._buf[self._head]

    def pop_block(self, count: int, out: List[int]) -> None:
        """Remove up to ``count`` elements from the head, appending them to
        ``out`` (the block-transfer path: one call per DRAM access, not one
        per cell).  A non-positive ``count`` is a no-op."""
        take = count if count < self._size else self._size
        if take <= 0:
            return
        buf, mask, head = self._buf, self._mask, self._head
        for i in range(take):
            out.append(buf[(head + i) & mask])
        self._head = (head + take) & mask
        self._size -= take

    def clear(self) -> None:
        self._head = 0
        self._size = 0

    def __iter__(self) -> Iterator[int]:
        """Head-to-tail iteration (oldest first), without consuming."""
        buf, mask, head = self._buf, self._mask, self._head
        for i in range(self._size):
            yield buf[(head + i) & mask]

    def __repr__(self) -> str:
        return f"IntRing({list(self)!r})"

    # ------------------------------------------------------------------ #
    def _grow(self) -> None:
        old, mask, head, size = self._buf, self._mask, self._head, self._size
        new = [0] * (len(old) * 2)
        for i in range(size):
            new[i] = old[(head + i) & mask]
        self._buf = new
        self._mask = len(new) - 1
        self._head = 0
