"""Struct-of-arrays simulation core — the ``engine="array"`` fast path.

The object model (``RADSPacketBuffer``/``CFDSPacketBuffer`` driven by
:class:`~repro.sim.engine.ClosedLoopSimulation`) allocates a ``Cell``
dataclass per arrival, keeps every FIFO as a deque of cell objects and every
SRAM as a heap of ``(seqno, id, cell)`` tuples, and walks half a dozen
attribute chains per slot.  That per-slot object traffic is what dominates
long closed-loop runs.  This module re-implements the *same machine* on flat
integer state:

* a cell is identified by its ``(queue, seqno)`` pair; per-queue seqnos are
  dense, so the cell's ``arrival_slot`` lives in a compacting cursor list
  indexed by seqno — no cell objects exist at all;
* the tail-SRAM and DRAM per-queue FIFOs are :class:`~repro.sim.ring.IntRing`
  ring buffers of seqnos; occupancies are flat ``int`` lists updated in the
  loop;
* the head SRAM is a per-queue min-heap of bare seqnos (out-of-order block
  delivery in CFDS still yields in-order service);
* the lookahead and latency shift registers are preallocated lists with a
  rotating cursor;
* the latency histogram is accumulated as a plain dict of ints and folded
  into :class:`~repro.sim.stats.LatencyStats` once, after the loop.

Policy decisions are never approximated.  Custom MMA or arbiter objects are
invoked with exactly the views the object model hands them; for the stock
policies the engine substitutes *algebraically identical* incremental forms:

* **ECQF** — the O(lookahead) walk ("first queue whose bookkeeping occupancy
  would go negative") always selects the queue whose ``(counter+1)``-th
  outstanding request entered the pipeline earliest.  The engine keeps each
  queue's request entry-slots in a cursor list and tracks that *critical
  entry slot* per queue in a lazily invalidated min-heap.  The tracked value
  only changes when a request enters the pipeline or the queue's counter is
  credited — a request leaving the pipeline moves the counter and the cursor
  together, cancelling out — so maintenance is O(log Q) per event and a
  selection is an O(1) amortised heap peek instead of a 400-entry walk.
* **ThresholdTailMMA** — inlined occupancy max-scan, skipped entirely while
  the tail SRAM holds less than one block.
* **RandomArbiter** — the per-slot "list the backlogged queues" rebuild is
  replaced by an incrementally maintained sorted list (the engine already
  knows every backlog transition); the RNG draw sequence is unchanged, so the
  request stream is bit-identical.

For CFDS, the issue-period machinery — the DRAM scheduler subsystem (request
register, banked-DRAM timing), the renaming table and the bank mapping — is
borrowed from the buffer object itself, so scheduling decisions cannot
diverge either.  The resulting :class:`~repro.sim.engine.SimulationReport`
(throughput, latency histogram, buffer statistics) is asserted bit-identical
to the reference loop for every registered scenario by
``tests/sim/test_array_engine.py``.

The engine consumes a *freshly built* buffer: it reads the configuration and
the issue-period machinery off the buffer object but keeps all per-cell state
in its own arrays, so the buffer instance itself is not stepped.  Running an
already-run (or hand-stepped) simulation on the array engine raises
:class:`~repro.errors.StaleSimulationError`.

**Chunked execution.**  The engine state lives in a core object
(:func:`build_array_core`) whose :meth:`run_span` method simulates any
number of slots and can be called repeatedly — that is what the streaming
path (:mod:`repro.sim.streaming`) uses to run arbitrarily long horizons on
bounded memory and to checkpoint mid-run: a core holds only plain data
(lists, rings, dicts, ints) plus references to the simulation and buffer
objects, so pickling the core captures the complete machine state.
:func:`run_array` is the monolithic convenience wrapper: one main span, one
drain span, one report.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from heapq import heappop, heappush
from typing import List, Optional

from repro.errors import (
    ArbiterContractError,
    BufferOverflowError,
    CacheMissError,
    ConfigurationError,
    RenamingError,
    StaleSimulationError,
)
from repro.mma.ecqf import ECQF
from repro.mma.tail_mma import ThresholdTailMMA
from repro.obs.metrics import get_metrics
from repro.sim.ring import IntRing
from repro.traffic.arbiters import RandomArbiter
from repro.types import MissRecord, ReplenishRequest, SimulationResult, TransferDirection

#: Engine names accepted by ``ClosedLoopSimulation.run(engine=...)``.
#: ``numpy`` needs the optional numpy extra at run time; selecting it
#: without numpy raises a ConfigurationError naming the extra.
ENGINE_REFERENCE = "reference"
ENGINE_BATCHED = "batched"
ENGINE_ARRAY = "array"
ENGINE_NUMPY = "numpy"
ENGINES = (ENGINE_REFERENCE, ENGINE_BATCHED, ENGINE_ARRAY, ENGINE_NUMPY)

#: "No critical entry" marker in the per-queue critical-slot cache.
_INF = float("inf")

#: Compaction threshold of the cursor lists (amortised O(1): at least half
#: of the storage is reclaimed whenever a deletion is triggered).
_COMPACT = 8192


def run_array(sim, num_slots: int, drain: bool = True):
    """Run ``sim`` for ``num_slots`` slots on the struct-of-arrays core.

    Args:
        sim: a :class:`~repro.sim.engine.ClosedLoopSimulation` whose buffer
            has not been stepped yet (``buffer.slot == 0``).
        num_slots: slots to simulate before the optional drain.
        drain: run the buffer's drain window after the main loop, exactly as
            :meth:`ClosedLoopSimulation.run` does.

    Returns:
        The same :class:`~repro.sim.engine.SimulationReport` the object-model
        loops produce, bit for bit.
    """
    if num_slots < 0:
        raise ConfigurationError("num_slots must be non-negative")
    core = build_array_core(sim)
    core.run_span(_arrival_plan(sim, num_slots), num_slots)
    return core.finish(drain=drain)


def build_array_core(sim):
    """Build the struct-of-arrays core for ``sim``'s buffer scheme.

    Raises :class:`~repro.errors.StaleSimulationError` unless the simulation
    is freshly built (the array engine replays a run from slot 0 on its own
    state arrays, so a pre-stepped buffer or an already-run simulation would
    silently produce a wrong report).
    """
    from repro.core.buffer import CFDSPacketBuffer
    from repro.rads.buffer import RADSPacketBuffer

    buffer = sim.buffer
    # The engine keeps per-cell state in its own arrays and never steps the
    # buffer object, so ``buffer.slot`` alone cannot detect a previous array
    # run — ``throughput.slots`` (set by every run that simulated anything)
    # catches that case.
    if buffer.slot != 0 or sim.throughput.slots != 0:
        raise StaleSimulationError(
            "the array engine replays a run from slot 0 and requires a "
            "freshly built simulation (build a new buffer for every run)")
    obs = get_metrics()
    if obs is not None:
        obs.inc("engine.array.cores_built")
    if isinstance(buffer, RADSPacketBuffer):
        return _RADSCore(sim, buffer)
    if isinstance(buffer, CFDSPacketBuffer):
        return _CFDSCore(sim, buffer)
    raise ConfigurationError(
        "the array engine supports RADSPacketBuffer and CFDSPacketBuffer, "
        f"got {type(buffer).__name__}")


def _arrival_plan(sim, num_slots: int) -> Optional[List[Optional[int]]]:
    """Pre-generate the arrival array (arrival processes never observe the
    buffer, so batching them is exact); ``None`` for a drain-only run."""
    if sim.arrivals is None:
        return None
    plan = sim.arrivals.arrivals(num_slots)
    return plan if isinstance(plan, list) else list(plan)


# --------------------------------------------------------------------- #
# Incremental ECQF
# --------------------------------------------------------------------- #

def _ecqf_select(counters: List[int], negatives: int, req_count: List[int],
                 crit_heap: List, crit_cache: List, fallback: bool
                 ) -> Optional[int]:
    """ECQF's selection from the incrementally maintained critical view.

    Identical, case by case, to :meth:`repro.mma.ecqf.ECQF.select`:

    * any queue with a negative bookkeeping counter wins (lowest counter,
      then lowest index) — the walk's early-negative branch;
    * otherwise the walk marks a queue critical at its ``(counter+1)``-th
      pending request, so the winner is the queue whose critical request
      entered the pipeline earliest — the top of the lazy min-heap (entry
      slots are unique, so there are no ties to break);
    * otherwise the most-deficit fallback: largest ``pending - counter``
      among queues with pending requests (ties to the lowest index), only if
      that deficit is positive.
    """
    if negatives:
        best_queue = -1
        best_counter = 0
        for queue, counter in enumerate(counters):
            if counter < 0 and (best_queue < 0 or counter < best_counter):
                best_counter = counter
                best_queue = queue
        return best_queue
    while crit_heap:
        entered, queue = crit_heap[0]
        if crit_cache[queue] == entered:
            return queue
        heappop(crit_heap)
    if not fallback:
        return None
    best_queue = -1
    best_deficit = 0
    queue = 0
    for counter, pending in zip(counters, req_count):
        if pending:
            deficit = pending - counter
            if best_queue < 0 or deficit > best_deficit:
                best_deficit = deficit
                best_queue = queue
        queue += 1
    if best_queue < 0 or best_deficit <= 0:
        return None
    return best_queue


# --------------------------------------------------------------------- #
# Shared core scaffolding
# --------------------------------------------------------------------- #

class _ArrayCoreBase:
    """State shared by the RADS and CFDS struct-of-arrays cores.

    A core holds *only plain data* (lists, rings, deques, dicts, ints) plus
    references to the simulation and buffer objects — policy callables and
    RNG method handles are re-derived at the top of every :meth:`run_span`,
    never stored — so pickling a core (together with its simulation, in one
    payload) captures the complete machine state for checkpoint/resume.
    """

    def __init__(self, sim, buffer) -> None:
        self.sim = sim
        self.buffer = buffer
        config = buffer.config
        self.num_queues = config.num_queues
        self.granularity = config.granularity
        self.strict = config.strict
        self.tail_cap = config.effective_tail_sram_cells
        self.la_len = config.effective_lookahead
        tail_mma = buffer.tail.mma
        head_mma = buffer.head.mma
        # Exact-type checks: a subclass may override the policy, in which
        # case the generic (object-invoking) path is used instead.
        self.fast_tail = (type(tail_mma) is ThresholdTailMMA
                          and tail_mma.granularity == self.granularity)
        self.fast_ecqf = type(head_mma) is ECQF
        self.ecqf_fallback = (self.fast_ecqf
                              and head_mma.fallback_to_most_deficit)
        self.fast_random = type(sim.arbiter) is RandomArbiter
        self.eligible: List[int] = []  # ascending queues with backlog > 0

        num_queues = self.num_queues
        self.slot = 0                  # next slot to simulate
        self.main_slots = 0            # arrival/request slots executed so far
        self.finished = False
        self.backlog = [0] * num_queues
        self.next_seqno = [0] * num_queues
        self.delivered = [0] * num_queues
        self.arr_slots: List[List[int]] = [[] for _ in range(num_queues)]
        self.arr_base = [0] * num_queues
        self.tail_fifo = [IntRing() for _ in range(num_queues)]
        self.tail_occ = [0] * num_queues
        self.tail_total = 0
        self.dram_fifo = [IntRing() for _ in range(num_queues)]
        self.dram_occ = [0] * num_queues
        self.dram_total = 0
        self.sram_heap: List[List[int]] = [[] for _ in range(num_queues)]
        self.sram_total = 0
        self.counters = [0] * num_queues
        self.lookahead: List[Optional[int]] = [None] * self.la_len
        self.la_pos = 0
        # Incremental ECQF view (maintained only when the stock policy
        # runs): per-queue entry slots of the requests currently in the
        # pipeline (cursor lists), the per-queue pending count, the number
        # of queues with a negative counter, and the lazy heap of critical
        # entry slots.
        self.req_slots: List[List[int]] = [[] for _ in range(num_queues)]
        self.req_head = [0] * num_queues
        self.req_count = [0] * num_queues
        self.negatives = 0
        self.crit_cache: List = [_INF] * num_queues
        self.crit_heap: List = []

        self.arrivals_count = 0
        self.departures = 0
        self.idle_requests = 0
        self.cells_in = 0
        self.cells_out = 0
        self.dram_reads = 0
        self.dram_writes = 0
        self.dropped = 0
        self.max_tail = 0
        self.max_head = 0
        self.head_misses: List[MissRecord] = []
        self.tail_misses: List[None] = []
        self.hist = {}
        self.drained: List[int] = []

    # ------------------------------------------------------------------ #
    def reset_measurement(self) -> None:
        """Zero the *measurement* counters at a warmup boundary.

        The machine state (queues, pipelines, RNG-facing structures) is
        untouched — only what feeds ``ThroughputStats`` and the latency
        histogram restarts, matching the reference/batched warmup semantics
        (engineering counters in the buffer result keep covering the whole
        run).
        """
        self.arrivals_count = 0
        self.departures = 0
        self.idle_requests = 0
        self.dropped = 0
        self.hist = {}

    def _check_not_finished(self) -> None:
        if self.finished:
            raise StaleSimulationError(
                "this array core already produced its report; build a new "
                "simulation for another run")

    def finish(self, drain: bool = True):
        """Run the drain window (if requested) and assemble the report.

        Mirrors ``ClosedLoopSimulation.run``'s epilogue: fold the flat
        counters into the simulation's stats objects, stamp drain-window
        departures with the final slot, and attach the buffer-side result.
        """
        from repro.sim.engine import SimulationReport

        self._check_not_finished()
        if drain:
            self.run_span(None, self._drain_slots(), main=False)
        self.finished = True
        sim = self.sim
        final_slot = self.slot
        throughput = sim.throughput
        throughput.arrivals += self.arrivals_count
        throughput.departures += self.departures + len(self.drained)
        throughput.idle_request_slots += self.idle_requests
        latency = sim.latency
        for delay, count in self.hist.items():
            latency.record_delay(delay, count)
        # Cells served during the drain window are stamped with the final
        # slot, exactly as the object model's ``drain()`` epilogue does.
        for arrival_slot in self.drained:
            latency.record_delay(final_slot - arrival_slot)
        throughput.slots = final_slot
        throughput.drops = self.dropped
        return SimulationReport(throughput=throughput, latency=latency,
                                buffer_result=self._result(final_slot),
                                trace=sim.trace)


# --------------------------------------------------------------------- #
# RADS
# --------------------------------------------------------------------- #

class _RADSCore(_ArrayCoreBase):
    """Struct-of-arrays machine for :class:`~repro.rads.buffer.RADSPacketBuffer`."""

    def __init__(self, sim, buffer) -> None:
        super().__init__(sim, buffer)
        self.dram_cap = buffer.dram.capacity_cells
        self.sram_cap = buffer.head.sram.capacity_cells
        self.pending = deque()  # (finish_slot, queue, [seqnos]) DRAM->SRAM

    def _drain_slots(self) -> int:
        return self.la_len + self.granularity

    # ------------------------------------------------------------------ #
    def run_span(self, plan: Optional[List[Optional[int]]], num_slots: int,
                 main: bool = True) -> None:
        """Simulate ``num_slots`` slots starting at ``self.slot``.

        ``plan`` is the arrival plan for exactly this window (``None`` for a
        drain-only span); ``main=False`` runs drain slots (no arrivals, no
        requests, departures recorded for final-slot stamping).
        """
        self._check_not_finished()
        obs = get_metrics()
        if obs is not None:
            obs.inc("engine.array.spans")
            obs.inc("engine.array.span_slots", num_slots)
        buffer = self.buffer
        sim = self.sim
        num_queues = self.num_queues
        granularity = self.granularity
        strict = self.strict
        tail_cap = self.tail_cap
        dram_cap = self.dram_cap
        sram_cap = self.sram_cap
        la_len = self.la_len
        tail_select = buffer.tail.mma.select
        head_select = buffer.head.mma.select
        fast_tail = self.fast_tail
        fast_ecqf = self.fast_ecqf
        ecqf_fallback = self.ecqf_fallback

        arbiter = sim.arbiter
        fast_random = self.fast_random
        if main and fast_random:
            # RandomArbiter, verbatim: one uniform draw for the load gate,
            # one choice() over the ascending backlogged-queue list
            # (maintained incrementally below).
            arb_random = arbiter._rng.random
            arb_randbelow = arbiter._rng._randbelow
            arb_load = arbiter.load
            eligible = self.eligible
            next_request = None
        else:
            next_request = (arbiter.next_request
                            if main and arbiter is not None else None)
            eligible = self.eligible
        trace_events = (sim.trace.events
                        if main and sim.trace is not None else None)

        # Flat per-queue state (see the class docstrings for the layout).
        backlog = self.backlog
        next_seqno = self.next_seqno
        delivered = self.delivered
        arr_slots = self.arr_slots
        arr_base = self.arr_base
        tail_fifo = self.tail_fifo
        tail_occ = self.tail_occ
        tail_total = self.tail_total
        dram_fifo = self.dram_fifo
        dram_occ = self.dram_occ
        dram_total = self.dram_total
        sram_heap = self.sram_heap
        sram_total = self.sram_total
        counters = self.counters
        lookahead = self.lookahead
        la_pos = self.la_pos
        pending = self.pending
        req_slots = self.req_slots
        req_head = self.req_head
        req_count = self.req_count
        negatives = self.negatives
        crit_cache = self.crit_cache
        crit_heap = self.crit_heap

        arrivals_count = self.arrivals_count
        departures = self.departures
        idle_requests = self.idle_requests
        cells_in = self.cells_in
        cells_out = self.cells_out
        dram_reads = self.dram_reads
        dram_writes = self.dram_writes
        dropped = self.dropped
        max_tail = self.max_tail
        max_head = self.max_head
        head_misses = self.head_misses
        tail_misses = self.tail_misses
        hist = self.hist
        drained = self.drained

        start = self.slot
        for slot in range(start, start + num_slots):
            if main:
                arrival = plan[slot - start] if plan is not None else None
                if fast_random:
                    if arb_random() >= arb_load or not eligible:
                        request = None
                    else:
                        request = eligible[arb_randbelow(len(eligible))]
                elif next_request is not None:
                    request = next_request(slot, backlog)
                    if request is not None:
                        if type(request) is int and 0 <= request < num_queues:
                            if backlog[request] <= 0:
                                request = None
                        else:
                            raise ArbiterContractError(request, num_queues,
                                                       slot)
                else:
                    request = None
                if trace_events is not None:
                    trace_events.append((arrival, request))
            else:
                arrival = None
                request = None

            # -- arrival: assign the seqno; cut through to the head SRAM
            #    when the queue's whole backlog lives on-chip, else enqueue
            #    for the tail.
            tail_seqno = -1
            if arrival is not None:
                seqno = next_seqno[arrival]
                next_seqno[arrival] = seqno + 1
                arr_slots[arrival].append(slot)
                if (dram_occ[arrival] == 0 and tail_occ[arrival] == 0
                        and len(sram_heap[arrival]) < granularity):
                    sram_total += 1
                    if sram_cap is not None and sram_total > sram_cap:
                        raise BufferOverflowError("SRAM", sram_cap, sram_total)
                    heappush(sram_heap[arrival], seqno)
                    count = counters[arrival] + 1
                    counters[arrival] = count
                    if fast_ecqf:
                        if count == 0:
                            negatives -= 1
                        if 0 <= count < req_count[arrival]:
                            entered = req_slots[arrival][req_head[arrival] + count]
                            crit_cache[arrival] = entered
                            heappush(crit_heap, (entered, arrival))
                        else:
                            crit_cache[arrival] = _INF
                else:
                    tail_seqno = seqno

            # -- tail subsystem (t-SRAM accept + threshold MMA eviction).
            if tail_seqno >= 0:
                if tail_total + 1 > tail_cap:
                    tail_misses.append(None)
                    if strict:
                        raise BufferOverflowError("tail SRAM", tail_cap,
                                                  tail_total + 1)
                else:
                    tail_fifo[arrival].push(tail_seqno)
                    tail_occ[arrival] += 1
                    tail_total += 1
                    cells_in += 1
            if slot % granularity == 0:
                if fast_tail:
                    selection = None
                    if tail_total >= granularity:
                        best_occ = granularity - 1
                        for queue, occ in enumerate(tail_occ):
                            if occ > best_occ:
                                best_occ = occ
                                selection = queue
                else:
                    selection = tail_select(tail_occ)
                if selection is not None:
                    block: List[int] = []
                    tail_fifo[selection].pop_block(granularity, block)
                    evicted = len(block)
                    tail_occ[selection] -= evicted
                    tail_total -= evicted
                    if block:
                        stored = evicted
                        if dram_cap is not None and not strict:
                            room = dram_cap - dram_total
                            if room < stored:
                                keep = room if room > 0 else 0
                                dropped += stored - keep
                                del block[keep:]
                                stored = keep
                        if stored:
                            fifo = dram_fifo[selection]
                            for seq in block:
                                if dram_cap is not None and dram_total >= dram_cap:
                                    raise BufferOverflowError("DRAM", dram_cap,
                                                              dram_total + 1)
                                fifo.push(seq)
                                dram_total += 1
                            dram_occ[selection] += stored
                        dram_writes += 1
            if tail_total > max_tail:
                max_tail = tail_total

            # -- head subsystem: lookahead shift, transfer landings, ECQF,
            #    serve.
            if la_len:
                leaving = lookahead[la_pos]
                lookahead[la_pos] = request
                la_pos += 1
                if la_pos == la_len:
                    la_pos = 0
            else:
                leaving = request
            if fast_ecqf:
                if request is not None:
                    req_slots[request].append(slot)
                    count = req_count[request]
                    req_count[request] = count + 1
                    if counters[request] == count:
                        # The request just appended is the critical one.
                        crit_cache[request] = slot
                        heappush(crit_heap, (slot, request))
                if leaving is not None:
                    # Counter and pipeline head advance together, so the
                    # critical entry slot is unchanged — unless the counter
                    # goes negative.
                    count = counters[leaving] - 1
                    counters[leaving] = count
                    if count == -1:
                        negatives += 1
                        crit_cache[leaving] = _INF
                    head = req_head[leaving] + 1
                    pipeline = req_slots[leaving]
                    if head == len(pipeline):
                        pipeline.clear()
                        head = 0
                    elif head >= _COMPACT and head * 2 >= len(pipeline):
                        del pipeline[:head]
                        head = 0
                    req_head[leaving] = head
                    req_count[leaving] -= 1
            elif leaving is not None:
                counters[leaving] -= 1
            while pending and pending[0][0] <= slot:
                _, landing_queue, seqs = pending.popleft()
                heap = sram_heap[landing_queue]
                for seq in seqs:
                    sram_total += 1
                    if sram_cap is not None and sram_total > sram_cap:
                        raise BufferOverflowError("SRAM", sram_cap, sram_total)
                    heappush(heap, seq)
            if slot % granularity == 0:
                if fast_ecqf:
                    selection = _ecqf_select(counters, negatives, req_count,
                                             crit_heap, crit_cache,
                                             ecqf_fallback)
                else:
                    contents = (lookahead[la_pos:] + lookahead[:la_pos]
                                if la_len else [])
                    selection = head_select(list(counters), contents)
                if selection is not None:
                    seqs = []
                    if dram_occ[selection]:
                        dram_fifo[selection].pop_block(granularity, seqs)
                        got = len(seqs)
                        dram_occ[selection] -= got
                        dram_total -= got
                    else:
                        got = 0
                    if got < granularity:
                        # Cut-through: the rest of the block never reached
                        # DRAM.
                        tail_fifo[selection].pop_block(granularity - got, seqs)
                        extra = len(seqs) - got
                        tail_occ[selection] -= extra
                        tail_total -= extra
                    if seqs:
                        count = counters[selection] + len(seqs)
                        counters[selection] = count
                        if fast_ecqf:
                            if count >= 0 and count - len(seqs) < 0:
                                negatives -= 1
                            if 0 <= count < req_count[selection]:
                                entered = req_slots[selection][
                                    req_head[selection] + count]
                                crit_cache[selection] = entered
                                heappush(crit_heap, (entered, selection))
                            else:
                                crit_cache[selection] = _INF
                        pending.append((slot + granularity, selection, seqs))
                        dram_reads += 1
            if leaving is not None:
                expected = delivered[leaving]
                heap = sram_heap[leaving]
                if heap and heap[0] == expected:
                    heappop(heap)
                    sram_total -= 1
                elif tail_occ[leaving] and tail_fifo[leaving].peekleft() == expected:
                    # Tail bypass: the in-order cell never left the tail SRAM.
                    tail_fifo[leaving].popleft()
                    tail_occ[leaving] -= 1
                    tail_total -= 1
                else:
                    head_misses.append(MissRecord(queue=leaving, slot=slot))
                    if strict:
                        raise CacheMissError(leaving, slot)
                    expected = None
                if expected is not None:
                    delivered[leaving] = expected + 1
                    cells_out += 1
                    store = arr_slots[leaving]
                    head = expected - arr_base[leaving]
                    arrival_slot = store[head]
                    if head >= _COMPACT - 1 and (head + 1) * 2 >= len(store):
                        del store[:head + 1]
                        arr_base[leaving] = expected + 1
                    if main:
                        departures += 1
                        delay = slot + 1 - arrival_slot
                        hist[delay] = hist.get(delay, 0) + 1
                    else:
                        drained.append(arrival_slot)
            if sram_total > max_head:
                max_head = sram_total

            if main:
                if arrival is not None:
                    arrivals_count += 1
                    count = backlog[arrival] + 1
                    backlog[arrival] = count
                    if fast_random and count == 1:
                        insort(eligible, arrival)
                if request is None:
                    idle_requests += 1
                else:
                    count = backlog[request] - 1
                    backlog[request] = count
                    if fast_random and count == 0:
                        del eligible[bisect_left(eligible, request)]

        # Write the loop-local scalars back (the container state mutated in
        # place and needs no copy-back).
        self.slot = start + num_slots
        if main:
            self.main_slots += num_slots
        self.tail_total = tail_total
        self.dram_total = dram_total
        self.sram_total = sram_total
        self.la_pos = la_pos
        self.negatives = negatives
        self.arrivals_count = arrivals_count
        self.departures = departures
        self.idle_requests = idle_requests
        self.cells_in = cells_in
        self.cells_out = cells_out
        self.dram_reads = dram_reads
        self.dram_writes = dram_writes
        self.dropped = dropped
        self.max_tail = max_tail
        self.max_head = max_head

    # ------------------------------------------------------------------ #
    def _result(self, final_slot: int) -> SimulationResult:
        return SimulationResult(
            slots_simulated=final_slot,
            cells_in=self.cells_in,
            cells_out=self.cells_out,
            dram_reads=self.dram_reads,
            dram_writes=self.dram_writes,
            misses=self.head_misses + self.tail_misses,
            max_head_sram_occupancy=self.max_head,
            max_tail_sram_occupancy=self.max_tail,
        )


# --------------------------------------------------------------------- #
# CFDS
# --------------------------------------------------------------------- #

class _CFDSCore(_ArrayCoreBase):
    """Struct-of-arrays machine for :class:`~repro.core.buffer.CFDSPacketBuffer`.

    The issue-period machinery is borrowed from the buffer itself: the DSS
    (request register + banked-DRAM timing), the renaming table and the bank
    mapping make the exact decisions the object model makes.  Those objects
    travel with the buffer through a checkpoint pickle, so a resumed core
    sees the same shared state.
    """

    def __init__(self, sim, buffer) -> None:
        super().__init__(sim, buffer)
        config = buffer.config
        self.dram_cap = config.dram_cells
        self.sram_cap = buffer.head.sram.capacity_cells
        self.lat_len = config.effective_latency
        self.dram_access_slots = config.dram_access_slots
        self.latency_reg: List[Optional[int]] = [None] * self.lat_len
        self.lat_pos = 0

    def _drain_slots(self) -> int:
        return (self.la_len + self.lat_len + self.dram_access_slots
                + self.granularity)

    # ------------------------------------------------------------------ #
    def run_span(self, plan: Optional[List[Optional[int]]], num_slots: int,
                 main: bool = True) -> None:
        """Simulate ``num_slots`` slots starting at ``self.slot``; see
        :meth:`_RADSCore.run_span`."""
        self._check_not_finished()
        obs = get_metrics()
        if obs is not None:
            obs.inc("engine.array.spans")
            obs.inc("engine.array.span_slots", num_slots)
        buffer = self.buffer
        sim = self.sim
        num_queues = self.num_queues
        granularity = self.granularity  # the reduced granularity b
        strict = self.strict
        tail_cap = self.tail_cap
        dram_cap = self.dram_cap
        sram_cap = self.sram_cap
        la_len = self.la_len
        lat_len = self.lat_len
        tail_select = buffer.tail.mma.select
        head_select = buffer.head.mma.select
        fast_tail = self.fast_tail
        fast_ecqf = self.fast_ecqf
        ecqf_fallback = self.ecqf_fallback
        scheduler = buffer.scheduler
        renaming = buffer.renaming
        mapping = buffer.mapping
        group_cap = buffer.group_capacity_cells
        group_occ = buffer._group_occupancy
        block_locations = buffer._block_locations
        write_count = buffer._physical_write_count
        read_dir = TransferDirection.READ
        write_dir = TransferDirection.WRITE

        arbiter = sim.arbiter
        fast_random = self.fast_random
        if main and fast_random:
            arb_random = arbiter._rng.random
            arb_randbelow = arbiter._rng._randbelow
            arb_load = arbiter.load
            eligible = self.eligible
            next_request = None
        else:
            next_request = (arbiter.next_request
                            if main and arbiter is not None else None)
            eligible = self.eligible
        trace_events = (sim.trace.events
                        if main and sim.trace is not None else None)

        backlog = self.backlog
        next_seqno = self.next_seqno
        delivered = self.delivered
        arr_slots = self.arr_slots
        arr_base = self.arr_base
        tail_fifo = self.tail_fifo
        tail_occ = self.tail_occ
        tail_total = self.tail_total
        dram_fifo = self.dram_fifo
        dram_occ = self.dram_occ
        dram_total = self.dram_total
        sram_heap = self.sram_heap
        sram_total = self.sram_total
        counters = self.counters
        lookahead = self.lookahead
        la_pos = self.la_pos
        latency_reg = self.latency_reg
        lat_pos = self.lat_pos
        req_slots = self.req_slots
        req_head = self.req_head
        req_count = self.req_count
        negatives = self.negatives
        crit_cache = self.crit_cache
        crit_heap = self.crit_heap

        arrivals_count = self.arrivals_count
        departures = self.departures
        idle_requests = self.idle_requests
        cells_in = self.cells_in
        cells_out = self.cells_out
        dram_reads = self.dram_reads
        dram_writes = self.dram_writes
        dropped = self.dropped
        max_tail = self.max_tail
        max_head = self.max_head
        head_misses = self.head_misses
        tail_misses = self.tail_misses
        hist = self.hist
        drained = self.drained

        start = self.slot
        for slot in range(start, start + num_slots):
            if main:
                arrival = plan[slot - start] if plan is not None else None
                if fast_random:
                    if arb_random() >= arb_load or not eligible:
                        request = None
                    else:
                        request = eligible[arb_randbelow(len(eligible))]
                elif next_request is not None:
                    request = next_request(slot, backlog)
                    if request is not None:
                        if type(request) is int and 0 <= request < num_queues:
                            if backlog[request] <= 0:
                                request = None
                        else:
                            raise ArbiterContractError(request, num_queues,
                                                       slot)
                else:
                    request = None
                if trace_events is not None:
                    trace_events.append((arrival, request))
            else:
                arrival = None
                request = None

            # -- arrival with cut-through routing.
            tail_seqno = -1
            if arrival is not None:
                seqno = next_seqno[arrival]
                next_seqno[arrival] = seqno + 1
                arr_slots[arrival].append(slot)
                if (dram_occ[arrival] == 0 and tail_occ[arrival] == 0
                        and len(sram_heap[arrival]) < granularity):
                    sram_total += 1
                    if sram_cap is not None and sram_total > sram_cap:
                        raise BufferOverflowError("SRAM", sram_cap, sram_total)
                    heappush(sram_heap[arrival], seqno)
                    count = counters[arrival] + 1
                    counters[arrival] = count
                    if fast_ecqf:
                        if count == 0:
                            negatives -= 1
                        if 0 <= count < req_count[arrival]:
                            entered = req_slots[arrival][req_head[arrival] + count]
                            crit_cache[arrival] = entered
                            heappush(crit_heap, (entered, arrival))
                        else:
                            crit_cache[arrival] = _INF
                else:
                    tail_seqno = seqno

            # -- tail subsystem: accept + threshold MMA eviction through the
            #    DSS.
            if tail_seqno >= 0:
                if tail_total + 1 > tail_cap:
                    tail_misses.append(None)
                    if strict:
                        raise BufferOverflowError("tail SRAM", tail_cap,
                                                  tail_total + 1)
                else:
                    tail_fifo[arrival].push(tail_seqno)
                    tail_occ[arrival] += 1
                    tail_total += 1
                    cells_in += 1
            if slot % granularity == 0:
                if fast_tail:
                    selection = None
                    if tail_total >= granularity:
                        best_occ = granularity - 1
                        for queue, occ in enumerate(tail_occ):
                            if occ > best_occ:
                                best_occ = occ
                                selection = queue
                else:
                    selection = tail_select(tail_occ)
                if selection is not None:
                    block: List[int] = []
                    tail_fifo[selection].pop_block(granularity, block)
                    evicted = len(block)
                    tail_occ[selection] -= evicted
                    tail_total -= evicted
                    if block:
                        # Place the block: renaming translation, or the
                        # static per-group accounting when renaming is
                        # disabled.
                        if renaming is not None:
                            try:
                                physical = renaming.translate_write(selection,
                                                                    evicted)
                            except RenamingError:
                                physical = None
                        else:
                            physical = selection
                            group = mapping.group_of(physical)
                            if (group_cap is not None
                                    and group_occ[group] + evicted > group_cap):
                                physical = None
                            else:
                                group_occ[group] += evicted
                        if physical is None:
                            dropped += evicted
                        else:
                            index = write_count.get(physical, 0)
                            write_count[physical] = index + 1
                            fifo = dram_fifo[selection]
                            for seq in block:
                                if dram_cap is not None and dram_total >= dram_cap:
                                    raise BufferOverflowError("DRAM", dram_cap,
                                                              dram_total + 1)
                                fifo.push(seq)
                                dram_total += 1
                            dram_occ[selection] += evicted
                            block_locations[selection].append((physical, index))
                            scheduler.submit(ReplenishRequest(
                                queue=physical, direction=write_dir,
                                cells=evicted, issue_slot=slot,
                                block_index=index))
                            dram_writes += 1
            if tail_total > max_tail:
                max_tail = tail_total

            # -- head subsystem: lookahead -> latency register -> MMA -> DSS
            #    tick -> serve (same phasing as CFDSHeadBuffer.step).
            if la_len:
                leaving = lookahead[la_pos]
                lookahead[la_pos] = request
                la_pos += 1
                if la_pos == la_len:
                    la_pos = 0
            else:
                leaving = request
            if lat_len:
                due = latency_reg[lat_pos]
                latency_reg[lat_pos] = leaving
                lat_pos += 1
                if lat_pos == lat_len:
                    lat_pos = 0
            else:
                due = leaving
            if fast_ecqf:
                if request is not None:
                    req_slots[request].append(slot)
                    count = req_count[request]
                    req_count[request] = count + 1
                    if counters[request] == count:
                        crit_cache[request] = slot
                        heappush(crit_heap, (slot, request))
                if due is not None:
                    count = counters[due] - 1
                    counters[due] = count
                    if count == -1:
                        negatives += 1
                        crit_cache[due] = _INF
                    head = req_head[due] + 1
                    pipeline = req_slots[due]
                    if head == len(pipeline):
                        pipeline.clear()
                        head = 0
                    elif head >= _COMPACT and head * 2 >= len(pipeline):
                        del pipeline[:head]
                        head = 0
                    req_head[due] = head
                    req_count[due] -= 1
            elif due is not None:
                counters[due] -= 1
            if slot % granularity == 0:
                if fast_ecqf:
                    selection = _ecqf_select(counters, negatives, req_count,
                                             crit_heap, crit_cache,
                                             ecqf_fallback)
                else:
                    # The MMA reasons over every promised-but-unserved
                    # request in service order: latency register first, then
                    # the lookahead.
                    pending_view = (latency_reg[lat_pos:] + latency_reg[:lat_pos]
                                    if lat_len else [])
                    if la_len:
                        pending_view = (pending_view + lookahead[la_pos:]
                                        + lookahead[:la_pos])
                    selection = head_select(list(counters), pending_view)
                if selection is not None:
                    seqs: List[int] = []
                    if dram_occ[selection] > 0:
                        dram_fifo[selection].pop_block(granularity, seqs)
                        got = len(seqs)
                        dram_occ[selection] -= got
                        dram_total -= got
                        physical, block_index = block_locations[selection].popleft()
                        if renaming is not None:
                            renaming.translate_read(selection, got)
                        else:
                            group_occ[mapping.group_of(physical)] -= got
                        fetch_request = ReplenishRequest(
                            queue=physical, direction=read_dir, cells=got,
                            issue_slot=slot, block_index=block_index)
                    else:
                        tail_fifo[selection].pop_block(granularity, seqs)
                        got = len(seqs)
                        tail_occ[selection] -= got
                        tail_total -= got
                        fetch_request = None
                    if seqs:
                        count = counters[selection] + got
                        counters[selection] = count
                        if fast_ecqf:
                            if count >= 0 and count - got < 0:
                                negatives -= 1
                            if 0 <= count < req_count[selection]:
                                entered = req_slots[selection][
                                    req_head[selection] + count]
                                crit_cache[selection] = entered
                                heappush(crit_heap, (entered, selection))
                            else:
                                crit_cache[selection] = _INF
                        if fetch_request is None:
                            # Cut-through: available to the head SRAM
                            # immediately.
                            heap = sram_heap[selection]
                            for seq in seqs:
                                sram_total += 1
                                if sram_cap is not None and sram_total > sram_cap:
                                    raise BufferOverflowError("SRAM", sram_cap,
                                                              sram_total)
                                heappush(heap, seq)
                        else:
                            scheduler.submit(fetch_request,
                                             payload=(selection, seqs))
                            dram_reads += 1
            for transfer in scheduler.tick(slot):
                payload = transfer.payload
                if transfer.request.direction is read_dir and payload:
                    landing_queue, seqs = payload
                    heap = sram_heap[landing_queue]
                    for seq in seqs:
                        sram_total += 1
                        if sram_cap is not None and sram_total > sram_cap:
                            raise BufferOverflowError("SRAM", sram_cap,
                                                      sram_total)
                        heappush(heap, seq)
            if due is not None:
                expected = delivered[due]
                heap = sram_heap[due]
                if heap and heap[0] == expected:
                    heappop(heap)
                    sram_total -= 1
                elif tail_occ[due] and tail_fifo[due].peekleft() == expected:
                    tail_fifo[due].popleft()
                    tail_occ[due] -= 1
                    tail_total -= 1
                else:
                    head_misses.append(MissRecord(queue=due, slot=slot))
                    if strict:
                        raise CacheMissError(due, slot)
                    expected = None
                if expected is not None:
                    delivered[due] = expected + 1
                    cells_out += 1
                    store = arr_slots[due]
                    head = expected - arr_base[due]
                    arrival_slot = store[head]
                    if head >= _COMPACT - 1 and (head + 1) * 2 >= len(store):
                        del store[:head + 1]
                        arr_base[due] = expected + 1
                    if main:
                        departures += 1
                        delay = slot + 1 - arrival_slot
                        hist[delay] = hist.get(delay, 0) + 1
                    else:
                        drained.append(arrival_slot)
            if sram_total > max_head:
                max_head = sram_total

            if main:
                if arrival is not None:
                    arrivals_count += 1
                    count = backlog[arrival] + 1
                    backlog[arrival] = count
                    if fast_random and count == 1:
                        insort(eligible, arrival)
                if request is None:
                    idle_requests += 1
                else:
                    count = backlog[request] - 1
                    backlog[request] = count
                    if fast_random and count == 0:
                        del eligible[bisect_left(eligible, request)]

        self.slot = start + num_slots
        if main:
            self.main_slots += num_slots
        self.tail_total = tail_total
        self.dram_total = dram_total
        self.sram_total = sram_total
        self.la_pos = la_pos
        self.lat_pos = lat_pos
        self.negatives = negatives
        self.arrivals_count = arrivals_count
        self.departures = departures
        self.idle_requests = idle_requests
        self.cells_in = cells_in
        self.cells_out = cells_out
        self.dram_reads = dram_reads
        self.dram_writes = dram_writes
        self.dropped = dropped
        self.max_tail = max_tail
        self.max_head = max_head

    # ------------------------------------------------------------------ #
    def _result(self, final_slot: int) -> SimulationResult:
        scheduler = self.buffer.scheduler
        return SimulationResult(
            slots_simulated=final_slot,
            cells_in=self.cells_in,
            cells_out=self.cells_out,
            dram_reads=self.dram_reads,
            dram_writes=self.dram_writes,
            misses=self.head_misses + self.tail_misses,
            max_head_sram_occupancy=self.max_head,
            max_tail_sram_occupancy=self.max_tail,
            max_request_register_occupancy=scheduler.peak_rr_occupancy,
            max_reorder_delay_slots=scheduler.max_total_delay_slots,
            bank_conflicts=scheduler.bank_conflicts,
        )
