"""Numpy-batched simulation core — the ``engine="numpy"`` fast path.

The struct-of-arrays engine (:mod:`repro.sim.array_engine`) already removed
the per-cell object traffic; what dominates its profile on long closed-loop
runs is the *RNG-facing* per-slot work — two method calls into
``random.Random`` per slot for the arbiter's load gate and ``_randbelow``
draw, plus the arrival process's own per-slot draws.  This module batches
exactly that:

* **Arbiter draws are precomputed per span.**  ``random.Random`` is a
  Mersenne Twister; its 624-word state converts losslessly to
  ``numpy.random.MT19937``, whose ``random_raw`` emits the identical 32-bit
  word stream in bulk.  ``random() < load`` is decided for *every word
  position at once* with one vectorized integer compare (``random()``
  returns ``comb / 2**53`` with ``comb`` assembled from two words, and
  ``load * 2**53`` is exact — a float in [0, 1] only has its exponent
  shifted — so ``comb < ceil(load * 2**53)`` is the bit-exact gate).
  ``_randbelow(m)`` for ``m ≤ 255`` reads the top ``m.bit_length()`` bits of
  one word per try, so the whole rejection chain decodes from a
  precomputed top-byte table.  The slot loop then consumes plain ``bytes``
  — no RNG calls, no object boxing — and the number of words actually
  consumed is written back to the ``Random`` instance afterwards, leaving
  the RNG state bit-identical to the scalar run's.
* **Arrival plans are vectorized.**  ``BernoulliArrivals`` consumes one
  gate draw per slot plus one ``choices()`` draw per arrival; the gate
  outcomes decode in one vectorized compare, the pair-consumption parse is
  a tight byte scan, and the weighted choice is one ``searchsorted`` over
  the same cumulative-weight list (clamped exactly like the scalar
  ``bisect``).  The process RNG is advanced by exactly the words the
  scalar loop would have consumed.
* **Measurement is deferred.**  Latency samples accumulate in a flat list
  folded through ``collections.Counter`` once per span; arrivals and idle
  request slots are recovered by counting the plan, not per slot; the
  tail-MMA max-scan is gated on an incrementally maintained count of
  queues at/above one block (the scan fires iff that count is non-zero —
  algebraically the same selection).

The core subclasses the array engine's RADS core, so the machine state
layout, checkpoint pickling, drain window, warmup discard and report
assembly are all shared; every span that the fused loop does not cover —
drain spans, custom policies/arbiters, traced runs, ``num_queues > 254``,
zero-length lookahead, or numpy missing at resume time — runs on the
inherited scalar loop, which keeps resumed checkpoints and CFDS exact:
**CFDS falls back to the array core per span** (the issue-period machinery
is borrowed from the buffer object and is not vectorized yet).

Bit-identity of the resulting reports against the reference loop is
asserted by ``tests/sim/test_numpy_engine.py`` and the cross-engine
differential fuzzer.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import Counter
from heapq import heappop, heappush
from itertools import accumulate
from typing import List, Optional

try:  # The numpy extra is optional: gate, never hard-fail at import.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

from repro.errors import (
    BufferOverflowError,
    CacheMissError,
    ConfigurationError,
    StaleSimulationError,
)
from repro.obs.metrics import get_metrics
from repro.sim.array_engine import (
    _COMPACT,
    _INF,
    _RADSCore,
    _arrival_plan,
    _ecqf_select,
    build_array_core,
)
from repro.traffic.arrivals import BernoulliArrivals
from repro.types import MissRecord

#: True when the optional numpy dependency is importable.
NUMPY_AVAILABLE = _np is not None

#: 2**53 — ``Random.random()`` returns ``comb / 2**53``.
_F53 = 9007199254740992

#: Words generated per stream refill (and per mid-slot extension).
_RAW_CHUNK = 16384

#: Unconsumed words guaranteed at every slot top (2 gate words + slack for
#: the rejection chain; the chain re-checks against the true end anyway).
_MARGIN = 80

#: "No pending landing" sentinel (compares greater than any slot).
_NEVER = 1 << 62

#: Plan byte meaning "no arrival this slot" (queues are 0..253).
_NO_ARRIVAL = 255

if NUMPY_AVAILABLE:
    _U5 = _np.uint64(5)
    _U6 = _np.uint64(6)
    _U24 = _np.uint64(24)
    _U26 = _np.uint64(26)


def require_numpy(feature: str = 'engine="numpy"') -> None:
    """Raise :class:`~repro.errors.ConfigurationError` naming the extra
    when numpy is unavailable (mirrors the PyYAML gating of spec files)."""
    if _np is None:
        raise ConfigurationError(
            f"{feature} requires the optional numpy dependency; install it "
            "with `pip install repro-packet-buffers[numpy]` (or `pip "
            "install numpy`), or use one of the pure-python engines: "
            "reference, batched, array")


# --------------------------------------------------------------------- #
# Mersenne Twister stream sync
# --------------------------------------------------------------------- #

def _bitgen_from(state):
    """A ``numpy.random.MT19937`` positioned exactly at ``state`` (a
    ``random.Random.getstate()`` tuple) — both sides are the reference
    32-bit Mersenne Twister, so the raw word streams coincide."""
    internal = state[1]
    bg = _np.random.MT19937()
    bg.state = {"bit_generator": "MT19937",
                "state": {"key": _np.array(internal[:624], dtype=_np.uint32),
                          "pos": internal[624]}}
    return bg


def _writeback(rng, start_state, consumed: int) -> None:
    """Advance ``rng`` to exactly ``consumed`` 32-bit words past
    ``start_state`` — the state the scalar loop would have left behind
    (``random()``/``getrandbits`` do not touch the gauss cache, which is
    preserved verbatim)."""
    bg = _bitgen_from(start_state)
    if consumed:
        bg.random_raw(consumed)
    inner = bg.state["state"]
    rng.setstate((3, tuple(int(k) for k in inner["key"]) + (int(inner["pos"]),),
                  start_state[2]))


def _gate_threshold(load: float) -> int:
    # ``load * 2**53`` is exact for any float in [0, 1] (the mantissa is
    # only shifted), so ``u < load  <=>  comb < ceil(load * 2**53)`` with
    # ``comb`` the 53-bit integer behind ``random()``.
    return math.ceil(load * float(_F53))


# --------------------------------------------------------------------- #
# Vectorized arrival plans
# --------------------------------------------------------------------- #

def _plan_bernoulli(proc, num_slots: int):
    """``BernoulliArrivals.arrivals(num_slots)``, vectorized and bit-exact.

    Returns the plan as ``bytes`` (255 = no arrival) when every queue id
    fits a byte, a plain ``Optional[int]`` list otherwise, or ``None`` to
    defer to the scalar path (degenerate all-zero weights).
    """
    cum_weights = list(accumulate(proc.weights))
    total = cum_weights[-1] + 0.0
    if total <= 0.0:
        return None
    rng = proc._rng
    state = rng.getstate()
    bg = _bitgen_from(state)
    tint = _np.uint64(_gate_threshold(proc.load))
    # Pair space: every draw is two words; a slot consumes the gate draw
    # plus, when it passes, one choice draw — at most two pairs per slot.
    w = bg.random_raw(4 * num_slots + 2)
    comb = (w >> _U5) << _U26
    comb[:-1] |= w[1:] >> _U6
    comb = comb[::2][:2 * num_slots + 1]          # draw k uses words 2k, 2k+1
    passed = (comb < tint).tobytes()
    gates: List[int] = []
    gapp = gates.append
    j = 0
    for _ in range(num_slots):
        if passed[j]:
            gapp(j)
            j += 2
        else:
            j += 1
    _writeback(rng, state, 2 * j)
    wide = proc.num_queues > 254
    if not gates:
        return [None] * num_slots if wide else b"\xff" * num_slots
    g = _np.array(gates, dtype=_np.int64)
    # random.choices inline: queue = bisect(cum_weights, u * total, 0, hi).
    u = comb[g + 1].astype(_np.float64) * (1.0 / _F53)
    hi = proc.num_queues - 1
    idx = _np.searchsorted(_np.array(cum_weights[:hi], dtype=_np.float64),
                           u * total, side="right")
    # The k-th passing gate sits k pairs past its slot index.
    slots = g - _np.arange(len(gates), dtype=_np.int64)
    if wide:
        out: List[Optional[int]] = [None] * num_slots
        for s, q in zip(slots.tolist(), idx.tolist()):
            out[s] = q
        return out
    plan = _np.full(num_slots, _NO_ARRIVAL, dtype=_np.uint8)
    plan[slots] = idx.astype(_np.uint8)
    return plan.tobytes()


class _DeferredPlan:
    """A Bernoulli arrival plan that has not been drawn yet.

    Monolithic runs hand this to :meth:`_NumpyRADSCore.run_span` so the
    compiled span kernel can draw the plan natively (same words, same
    doubles); any path that needs the materialized plan calls
    :meth:`materialize`, which advances the process RNG exactly as the
    scalar ``arrivals()`` call would have at this point.
    """

    __slots__ = ("proc", "num_slots", "tint", "cum_weights", "total")

    def __init__(self, proc, num_slots: int) -> None:
        self.proc = proc
        self.num_slots = num_slots
        self.cum_weights = list(accumulate(proc.weights))
        self.total = self.cum_weights[-1] + 0.0
        self.tint = _gate_threshold(proc.load)

    def materialize(self):
        return _plan_bernoulli(self.proc, self.num_slots)


def _numpy_plan(sim, num_slots: int, defer: bool = False):
    """The arrival plan for a monolithic numpy run: vectorized (or, with
    ``defer``, left for the span kernel to draw) when the process is (a
    subclass of) ``BernoulliArrivals`` running the stock batched method,
    the scalar plan otherwise."""
    if sim.arrivals is None:
        return None
    proc = sim.arrivals
    if (_np is not None and num_slots > 0 and isinstance(proc, BernoulliArrivals)
            and type(proc).arrivals is BernoulliArrivals.arrivals):
        if defer and proc.num_queues <= 254:
            deferred = _DeferredPlan(proc, num_slots)
            if deferred.total > 0.0:
                return deferred
        else:
            plan = _plan_bernoulli(proc, num_slots)
            if plan is not None:
                return plan
    return _arrival_plan(sim, num_slots)


# --------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------- #

def run_numpy(sim, num_slots: int, drain: bool = True):
    """Run ``sim`` on the numpy core — same contract as ``run_array``."""
    if num_slots < 0:
        raise ConfigurationError("num_slots must be non-negative")
    core = build_numpy_core(sim)
    if isinstance(core, _NumpyRADSCore):
        plan = _numpy_plan(sim, num_slots, defer=True)
    else:
        # CFDS (and any other fallback core) runs the scalar span loop,
        # which consumes Optional[int] plans, never plan bytes.
        plan = _arrival_plan(sim, num_slots)
    if (drain and isinstance(core, _NumpyRADSCore)
            and core.run_fused(plan, num_slots)):
        return core.finish(drain=False)
    core.run_span(plan, num_slots)
    return core.finish(drain=drain)


def build_numpy_core(sim):
    """Build the numpy core for ``sim``'s buffer scheme.

    RADS gets the fused core below; CFDS falls back to the array core
    (span-compatible, so streaming/checkpoints behave identically).
    Raises :class:`~repro.errors.ConfigurationError` when numpy is missing
    and :class:`~repro.errors.StaleSimulationError` for a stepped sim.
    """
    from repro.rads.buffer import RADSPacketBuffer

    require_numpy()
    buffer = sim.buffer
    if not isinstance(buffer, RADSPacketBuffer):
        return build_array_core(sim)
    if buffer.slot != 0 or sim.throughput.slots != 0:
        raise StaleSimulationError(
            "the numpy engine replays a run from slot 0 and requires a "
            "freshly built simulation (build a new buffer for every run)")
    obs = get_metrics()
    if obs is not None:
        obs.inc("engine.numpy.cores_built")
    return _NumpyRADSCore(sim, buffer)


# --------------------------------------------------------------------- #
# The fused RADS core
# --------------------------------------------------------------------- #

class _NumpyRADSCore(_RADSCore):
    """RADS core whose main spans run the fused precomputed-stream loop.

    State layout, drain, finish and reporting are inherited; any span the
    fused loop cannot cover bit-exactly is delegated to the scalar loop on
    the *same* state, so mixing fused and scalar spans (checkpoints,
    drains, no-numpy resume) is seamless.
    """

    def __init__(self, sim, buffer) -> None:
        super().__init__(sim, buffer)
        self._fusable = (self.fast_random and self.fast_ecqf
                         and self.fast_tail and self.num_queues <= 254
                         and self.la_len > 0)
        # 8 - m.bit_length(): the top-byte shift of _randbelow(m), m <= 254.
        self._bl8 = [0] + [8 - m.bit_length()
                           for m in range(1, self.num_queues + 1)]

    # ------------------------------------------------------------------ #
    def _scalar_plan(self, plan, num_slots: int):
        """Normalize ``plan`` for the inherited scalar loop, which consumes
        ``Optional[int]`` entries (never plan bytes or deferred plans)."""
        if isinstance(plan, _DeferredPlan):
            plan = plan.materialize()
            if plan is None:  # pragma: no cover - deferred only when total>0
                return _arrival_plan(self.sim, num_slots)
        if isinstance(plan, (bytes, bytearray)):
            return [None if b == _NO_ARRIVAL else b for b in plan]
        return plan

    def run_fused(self, plan, num_slots: int) -> bool:
        """Run the main window *and* the drain window in one kernel call.

        The drain window's length (``la_len + granularity``) is known up
        front, so the monolithic ``run_numpy`` path can hand both to the
        kernel at once and pay a single state marshal instead of two.
        ``True`` means both windows ran — the caller finishes with
        ``drain=False``; ``False`` leaves the core (and any deferred
        plan's RNG) untouched.
        """
        if (num_slots <= 0 or _np is None or not self._fusable
                or self.sim.trace is not None):
            return False
        from repro.sim.kernel import MIN_KERNEL_SLOTS, run_span_kernel

        if num_slots < MIN_KERNEL_SLOTS:
            return False
        self._check_not_finished()
        drain_slots = self._drain_slots()
        done = False
        if isinstance(plan, _DeferredPlan):
            proc = plan.proc
            if (plan.num_slots == num_slots
                    and proc._rng is not self.sim.arbiter._rng):
                done = run_span_kernel(
                    self, None, num_slots, main=True,
                    bern=(proc._rng, plan.tint, plan.cum_weights,
                          plan.total),
                    drain_slots=drain_slots)
        elif isinstance(plan, (bytes, bytearray)):
            if len(plan) >= num_slots:
                done = run_span_kernel(self, plan, num_slots, main=True,
                                       drain_slots=drain_slots)
        elif plan is None:
            done = run_span_kernel(self, b"\xff" * num_slots, num_slots,
                                   main=True, drain_slots=drain_slots)
        if done:
            obs = get_metrics()
            if obs is not None:
                # Counted as the two spans the unfused path would run.
                obs.inc("engine.numpy.spans", 2)
                obs.inc("engine.numpy.span_slots", num_slots + drain_slots)
        return done

    def run_span(self, plan, num_slots: int, main: bool = True) -> None:
        if (num_slots <= 0 or _np is None or not self._fusable
                or self.sim.trace is not None):
            return super().run_span(self._scalar_plan(plan, num_slots),
                                    num_slots, main)
        from repro.sim.kernel import MIN_KERNEL_SLOTS, run_span_kernel

        self._check_not_finished()
        obs = get_metrics()
        if obs is not None:
            obs.inc("engine.numpy.spans")
            obs.inc("engine.numpy.span_slots", num_slots)
        if not main:
            # Drain span: the kernel covers it natively; the scalar loop is
            # the (identical) fallback.
            if (num_slots >= MIN_KERNEL_SLOTS
                    and run_span_kernel(self, None, num_slots, main=False)):
                return None
            return super().run_span(None, num_slots, main)
        if isinstance(plan, _DeferredPlan):
            # Let the kernel draw the Bernoulli plan natively (the arrival
            # process must not share the arbiter's RNG object — the scalar
            # loop consumes the plan's words strictly first).
            proc = plan.proc
            if (num_slots >= MIN_KERNEL_SLOTS
                    and plan.num_slots == num_slots
                    and proc._rng is not self.sim.arbiter._rng
                    and run_span_kernel(
                        self, None, num_slots, main=True,
                        bern=(proc._rng, plan.tint, plan.cum_weights,
                              plan.total))):
                return None
            plan = plan.materialize()
            if plan is None:  # pragma: no cover - deferred only when total>0
                plan = _arrival_plan(self.sim, num_slots)
        if isinstance(plan, (bytes, bytearray)):
            aplan = plan
        elif plan is None:
            aplan = b"\xff" * num_slots
        else:
            aplan = bytes(_NO_ARRIVAL if a is None else a for a in plan)
        if len(aplan) < num_slots:
            return super().run_span(self._scalar_plan(plan, num_slots),
                                    num_slots, main)
        if (num_slots >= MIN_KERNEL_SLOTS
                and run_span_kernel(self, aplan, num_slots, main=True)):
            return None

        granularity = self.granularity
        strict = self.strict
        tail_cap = self.tail_cap
        dram_cap = self.dram_cap
        sram_cap = self.sram_cap
        la_len = self.la_len
        ecqf_fallback = self.ecqf_fallback

        arbiter = self.sim.arbiter
        rng = arbiter._rng
        eligible = self.eligible
        bl8 = self._bl8

        # -- precomputed arbiter stream ---------------------------------
        start_state = rng.getstate()
        bg = _bitgen_from(start_state)
        tint = _np.uint64(_gate_threshold(arbiter.load))

        def _decode(warr):
            comb = (warr >> _U5) << _U26
            comb[:-1] |= warr[1:] >> _U6
            return ((comb < tint).tobytes(),
                    (warr >> _U24).astype(_np.uint8).tobytes())

        first = min(4 * num_slots + _MARGIN, 1 << 18)
        w = bg.random_raw(first)
        G, WB = _decode(w)
        p = 0
        consumed = 0
        lim = len(G) - _MARGIN
        hard = len(G) - 1

        # -- flat state (identical layout to the scalar loop) -----------
        backlog = self.backlog
        next_seqno = self.next_seqno
        delivered = self.delivered
        arr_slots = self.arr_slots
        arr_base = self.arr_base
        tail_fifo = self.tail_fifo
        tail_occ = self.tail_occ
        tail_total = self.tail_total
        dram_fifo = self.dram_fifo
        dram_occ = self.dram_occ
        dram_total = self.dram_total
        sram_heap = self.sram_heap
        sram_total = self.sram_total
        counters = self.counters
        lookahead = self.lookahead
        la_pos = self.la_pos
        pending = self.pending
        req_slots = self.req_slots
        req_head = self.req_head
        req_count = self.req_count
        negatives = self.negatives
        crit_cache = self.crit_cache
        crit_heap = self.crit_heap

        cells_in = self.cells_in
        cells_out = self.cells_out
        dram_reads = self.dram_reads
        dram_writes = self.dram_writes
        dropped = self.dropped
        max_tail = self.max_tail
        max_head = self.max_head
        head_misses = self.head_misses
        tail_misses = self.tail_misses
        hist = self.hist

        delays: List[int] = []
        delays_append = delays.append
        grants = 0
        big_cnt = sum(1 for occ in tail_occ if occ >= granularity)
        next_land = pending[0][0] if pending else _NEVER
        g1 = granularity - 1
        start = self.slot
        # Policy countdown: fires (pc < 0 after decrement) on slots where
        # slot % granularity == 0, i.e. after (g - start % g) % g slots.
        pc = (granularity - start % granularity) % granularity
        error = None
        slot = start
        try:
            for slot, a in zip(range(start, start + num_slots), aplan):
                pol = False
                pc -= 1
                if pc < 0:
                    pc = g1
                    pol = True

                # -- arbiter: precomputed gate + rejection chain --------
                if p >= lim:
                    consumed += p
                    w = _np.concatenate([w[p:], bg.random_raw(_RAW_CHUNK)])
                    G, WB = _decode(w)
                    p = 0
                    lim = len(G) - _MARGIN
                    hard = len(G) - 1
                if G[p]:
                    m = len(eligible)
                    if m:
                        sh = bl8[m]
                        t = p + 2
                        r = WB[t] >> sh
                        while r >= m:
                            t += 1
                            if t >= hard:  # pragma: no cover - astronomically rare
                                w = _np.concatenate([w, bg.random_raw(_RAW_CHUNK)])
                                G, WB = _decode(w)
                                lim = len(G) - _MARGIN
                                hard = len(G) - 1
                            r = WB[t] >> sh
                        p = t + 1
                        request = eligible[r]
                    else:
                        request = None
                        p += 2
                else:
                    request = None
                    p += 2

                # -- arrival: cut through or enqueue for the tail -------
                if a != 255:
                    seqno = next_seqno[a]
                    next_seqno[a] = seqno + 1
                    arr_slots[a].append(slot)
                    if (dram_occ[a] == 0 and tail_occ[a] == 0
                            and len(sram_heap[a]) < granularity):
                        sram_total += 1
                        if sram_cap is not None and sram_total > sram_cap:
                            raise BufferOverflowError("SRAM", sram_cap,
                                                      sram_total)
                        heappush(sram_heap[a], seqno)
                        count = counters[a] + 1
                        counters[a] = count
                        if count == 0:
                            negatives -= 1
                        if 0 <= count < req_count[a]:
                            entered = req_slots[a][req_head[a] + count]
                            crit_cache[a] = entered
                            heappush(crit_heap, (entered, a))
                        else:
                            crit_cache[a] = _INF
                    elif tail_total >= tail_cap:
                        tail_misses.append(None)
                        if strict:
                            raise BufferOverflowError("tail SRAM", tail_cap,
                                                      tail_total + 1)
                    else:
                        tail_fifo[a].push(seqno)
                        occ = tail_occ[a] + 1
                        tail_occ[a] = occ
                        tail_total += 1
                        cells_in += 1
                        if occ == granularity:
                            big_cnt += 1
                        if not pol and tail_total > max_tail:
                            max_tail = tail_total

                # -- tail MMA (threshold scan, gated on the block count) -
                if pol:
                    if big_cnt:
                        selection = -1
                        best_occ = g1
                        for queue, occ in enumerate(tail_occ):
                            if occ > best_occ:
                                best_occ = occ
                                selection = queue
                        if selection >= 0:
                            block: List[int] = []
                            tail_fifo[selection].pop_block(granularity, block)
                            evicted = len(block)
                            occ_b = tail_occ[selection]
                            occ_a = occ_b - evicted
                            tail_occ[selection] = occ_a
                            tail_total -= evicted
                            if occ_b >= granularity and occ_a < granularity:
                                big_cnt -= 1
                            if block:
                                stored = evicted
                                if dram_cap is not None and not strict:
                                    room = dram_cap - dram_total
                                    if room < stored:
                                        keep = room if room > 0 else 0
                                        dropped += stored - keep
                                        del block[keep:]
                                        stored = keep
                                if stored:
                                    fifo = dram_fifo[selection]
                                    for seq in block:
                                        if (dram_cap is not None
                                                and dram_total >= dram_cap):
                                            raise BufferOverflowError(
                                                "DRAM", dram_cap,
                                                dram_total + 1)
                                        fifo.push(seq)
                                        dram_total += 1
                                    dram_occ[selection] += stored
                                dram_writes += 1
                    if tail_total > max_tail:
                        max_tail = tail_total

                # -- head: lookahead shift, ECQF bookkeeping ------------
                leaving = lookahead[la_pos]
                lookahead[la_pos] = request
                la_pos += 1
                if la_pos == la_len:
                    la_pos = 0
                if request is not None:
                    req_slots[request].append(slot)
                    count = req_count[request]
                    req_count[request] = count + 1
                    if counters[request] == count:
                        crit_cache[request] = slot
                        heappush(crit_heap, (slot, request))
                if leaving is not None:
                    count = counters[leaving] - 1
                    counters[leaving] = count
                    if count == -1:
                        negatives += 1
                        crit_cache[leaving] = _INF
                    head = req_head[leaving] + 1
                    pipeline = req_slots[leaving]
                    if head == len(pipeline):
                        pipeline.clear()
                        head = 0
                    elif head >= _COMPACT and head * 2 >= len(pipeline):
                        del pipeline[:head]
                        head = 0
                    req_head[leaving] = head
                    req_count[leaving] -= 1

                # -- transfer landings ----------------------------------
                if next_land <= slot:
                    while pending and pending[0][0] <= slot:
                        _, landing_queue, seqs = pending.popleft()
                        heap = sram_heap[landing_queue]
                        for seq in seqs:
                            sram_total += 1
                            if sram_cap is not None and sram_total > sram_cap:
                                raise BufferOverflowError("SRAM", sram_cap,
                                                          sram_total)
                            heappush(heap, seq)
                    next_land = pending[0][0] if pending else _NEVER

                # -- ECQF select + replenish ----------------------------
                if pol:
                    selection = _ecqf_select(counters, negatives, req_count,
                                             crit_heap, crit_cache,
                                             ecqf_fallback)
                    if selection is not None:
                        seqs: List[int] = []
                        if dram_occ[selection]:
                            dram_fifo[selection].pop_block(granularity, seqs)
                            got = len(seqs)
                            dram_occ[selection] -= got
                            dram_total -= got
                        else:
                            got = 0
                        if got < granularity:
                            tail_fifo[selection].pop_block(granularity - got,
                                                           seqs)
                            extra = len(seqs) - got
                            if extra:
                                occ_b = tail_occ[selection]
                                occ_a = occ_b - extra
                                tail_occ[selection] = occ_a
                                tail_total -= extra
                                if (occ_b >= granularity
                                        and occ_a < granularity):
                                    big_cnt -= 1
                        if seqs:
                            count = counters[selection] + len(seqs)
                            counters[selection] = count
                            if count >= 0 and count - len(seqs) < 0:
                                negatives -= 1
                            if 0 <= count < req_count[selection]:
                                entered = req_slots[selection][
                                    req_head[selection] + count]
                                crit_cache[selection] = entered
                                heappush(crit_heap, (entered, selection))
                            else:
                                crit_cache[selection] = _INF
                            if not pending:
                                next_land = slot + granularity
                            pending.append((slot + granularity, selection,
                                            seqs))
                            dram_reads += 1

                # -- serve ----------------------------------------------
                if leaving is not None:
                    expected = delivered[leaving]
                    heap = sram_heap[leaving]
                    if heap and heap[0] == expected:
                        heappop(heap)
                        sram_total -= 1
                    elif (tail_occ[leaving]
                          and tail_fifo[leaving].peekleft() == expected):
                        # Tail bypass: the in-order cell never left the tail.
                        tail_fifo[leaving].popleft()
                        occ = tail_occ[leaving] - 1
                        tail_occ[leaving] = occ
                        tail_total -= 1
                        if occ == g1:
                            big_cnt -= 1
                    else:
                        head_misses.append(MissRecord(queue=leaving,
                                                      slot=slot))
                        if strict:
                            raise CacheMissError(leaving, slot)
                        expected = None
                    if expected is not None:
                        delivered[leaving] = expected + 1
                        cells_out += 1
                        store = arr_slots[leaving]
                        head = expected - arr_base[leaving]
                        arrival_slot = store[head]
                        if (head >= _COMPACT - 1
                                and (head + 1) * 2 >= len(store)):
                            del store[:head + 1]
                            arr_base[leaving] = expected + 1
                        delays_append(slot + 1 - arrival_slot)
                if sram_total > max_head:
                    max_head = sram_total

                # -- end of slot: backlog + eligible --------------------
                if a != 255:
                    count = backlog[a] + 1
                    backlog[a] = count
                    if count == 1:
                        insort(eligible, a)
                if request is not None:
                    grants += 1
                    count = backlog[request] - 1
                    backlog[request] = count
                    if count == 0:
                        del eligible[bisect_left(eligible, request)]
        except BaseException as exc:
            error = exc

        # -- epilogue (success and exception share the RNG/hist fold) ---
        _writeback(rng, start_state, consumed + p)
        if delays:
            for delay, count in Counter(delays).items():
                hist[delay] = hist.get(delay, 0) + count
        if error is not None:
            # The scalar loop loses its local counters on a raise (the
            # machine containers and the histogram keep their in-place
            # mutations) — reproduce exactly that state.
            raise error
        done = num_slots
        self.slot = start + done
        self.main_slots += done
        self.tail_total = tail_total
        self.dram_total = dram_total
        self.sram_total = sram_total
        self.la_pos = la_pos
        self.negatives = negatives
        self.arrivals_count += done - aplan.count(255, 0, done)
        self.departures += len(delays)
        self.idle_requests += done - grants
        self.cells_in = cells_in
        self.cells_out = cells_out
        self.dram_reads = dram_reads
        self.dram_writes = dram_writes
        self.dropped = dropped
        self.max_tail = max_tail
        self.max_head = max_head
