/* Span kernel for the "numpy" engine's RADS fast path.
 *
 * This file is compiled on demand by repro.sim.kernel (cc -O2 -shared) and
 * loaded through ctypes; it is NOT a CPython extension module and includes
 * no Python headers, so it builds anywhere a C99 compiler exists.  The
 * kernel executes exactly the slot loop of repro.sim.array_engine's RADS
 * core (stock ECQF + threshold tail MMA + RandomArbiter, num_queues <=
 * 254) on flat state marshalled in from the python core, and marshals the
 * resulting state back.  Everything is integer arithmetic except the two
 * places CPython uses doubles — random() and choices() — which are
 * reproduced with the identical IEEE-754 expressions (this translation
 * unit must never be compiled with -ffast-math).
 *
 * Exactness contract:
 *  - the Mersenne Twister below is the reference mt19937ar generator that
 *    CPython's random.Random wraps; the kernel starts from the key/pos
 *    handed in and reports the words it consumed, so the python side ends
 *    bit-identical to a scalar run;
 *  - heaps only need the heap invariant (keys are unique), so the C sift
 *    need not mirror heapq's internal move order — every pop yields the
 *    same minimum the python heap would;
 *  - strict-mode overflow/miss aborts return an error code and the python
 *    core replays the span on its own scalar loop to raise with exact
 *    in-place state; non-strict misses and lossy DRAM drops are native.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Mersenne Twister (mt19937ar), resumed from CPython's getstate().    */
/* ------------------------------------------------------------------ */

#define MT_N 624
#define MT_M 397
#define MT_MATRIX_A 0x9908b0dfUL
#define MT_UPPER 0x80000000UL
#define MT_LOWER 0x7fffffffUL

typedef struct {
    uint32_t key[MT_N];
    int pos;
    int64_t consumed;
} mt_state;

static uint32_t mt_next(mt_state *mt)
{
    uint32_t y;
    if (mt->pos >= MT_N) {
        uint32_t *m = mt->key;
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (m[kk] & MT_UPPER) | (m[kk + 1] & MT_LOWER);
            m[kk] = m[kk + MT_M] ^ (y >> 1) ^ ((y & 1) ? MT_MATRIX_A : 0);
        }
        for (; kk < MT_N - 1; kk++) {
            y = (m[kk] & MT_UPPER) | (m[kk + 1] & MT_LOWER);
            m[kk] = m[kk + (MT_M - MT_N)] ^ (y >> 1)
                    ^ ((y & 1) ? MT_MATRIX_A : 0);
        }
        y = (m[MT_N - 1] & MT_UPPER) | (m[0] & MT_LOWER);
        m[MT_N - 1] = m[MT_M - 1] ^ (y >> 1) ^ ((y & 1) ? MT_MATRIX_A : 0);
        mt->pos = 0;
    }
    y = mt->key[mt->pos++];
    mt->consumed++;
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680UL;
    y ^= (y << 15) & 0xefc60000UL;
    y ^= (y >> 18);
    return y;
}

/* random(): two words -> 53-bit integer (random_res53 numerator). */
static int64_t mt_comb53(mt_state *mt)
{
    uint32_t a = mt_next(mt) >> 5;
    uint32_t b = mt_next(mt) >> 6;
    return ((int64_t)a << 26) | (int64_t)b;
}

/* _randbelow(m) for 1 <= m <= 254: getrandbits(bit_length(m)) per try. */
static int mt_randbelow(mt_state *mt, int m, int shift)
{
    uint32_t r = mt_next(mt) >> shift;
    while ((int)r >= m)
        r = mt_next(mt) >> shift;
    return (int)r;
}

/* ------------------------------------------------------------------ */
/* Growable int64 array / FIFO-by-cursor                               */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t *buf;
    int head;    /* first live element */
    int len;     /* one past last live element */
    int cap;
} ivec;

static int iv_init(ivec *v, int cap)
{
    if (cap < 4)
        cap = 4;
    v->buf = (int64_t *)malloc((size_t)cap * sizeof(int64_t));
    v->head = 0;
    v->len = 0;
    v->cap = cap;
    return v->buf != NULL;
}

static int iv_push(ivec *v, int64_t x)
{
    if (v->len == v->cap) {
        int live = v->len - v->head;
        if (v->head > 0 && v->head * 2 >= v->len) {
            memmove(v->buf, v->buf + v->head,
                    (size_t)live * sizeof(int64_t));
            v->head = 0;
            v->len = live;
        } else {
            int ncap = v->cap * 2;
            int64_t *nb = (int64_t *)realloc(v->buf,
                                             (size_t)ncap * sizeof(int64_t));
            if (!nb)
                return 0;
            v->buf = nb;
            v->cap = ncap;
        }
    }
    v->buf[v->len++] = x;
    return 1;
}

#define IV_COUNT(v) ((v)->len - (v)->head)

/* ------------------------------------------------------------------ */
/* Min-heaps (unique keys -> any valid heap pops identically)          */
/* ------------------------------------------------------------------ */

static void heap_up(int64_t *h, int i)
{
    int64_t x = h[i];
    while (i > 0) {
        int p = (i - 1) >> 1;
        if (h[p] <= x)
            break;
        h[i] = h[p];
        i = p;
    }
    h[i] = x;
}

static void heap_down(int64_t *h, int n, int i)
{
    int64_t x = h[i];
    for (;;) {
        int c = 2 * i + 1;
        if (c >= n)
            break;
        if (c + 1 < n && h[c + 1] < h[c])
            c++;
        if (h[c] >= x)
            break;
        h[i] = h[c];
        i = c;
    }
    h[i] = x;
}

/* crit heap entries: (entered << 16) | queue keeps tuple ordering for
 * entered < 2^46 and queue < 2^16 — entered is a slot number, bounded by
 * the horizon, and ties break on the queue index exactly like the python
 * (entered, queue) tuples. */
#define CRIT_KEY(entered, q) (((int64_t)(entered) << 16) | (int64_t)(q))
#define CRIT_ENTERED(k) ((k) >> 16)
#define CRIT_QUEUE(k) ((int)((k) & 0xffff))

/* "No critical entry" cache marker (python uses float inf). */
#define CRIT_INF INT64_MAX

/* "No pending landing" sentinel (compares greater than any slot). */
#define NEVER (INT64_C(1) << 62)

/* Error codes (mirror the strict-mode raises; the python side replays). */
#define ERR_OK 0
#define ERR_OOM 1
#define ERR_STRICT 2
#define ERR_CAP 3   /* a python-preallocated out buffer would overflow */

/* ------------------------------------------------------------------ */
/* Kernel interface (mirrored by ctypes structs in repro.sim.kernel)   */
/* ------------------------------------------------------------------ */

typedef struct {
    /* configuration (in) */
    int64_t num_queues, granularity, strict, tail_cap;
    int64_t dram_cap, sram_cap;     /* -1 = unbounded (python None) */
    int64_t la_len, num_slots, start_slot, is_main;
    int64_t arb_tint;               /* ceil(arbiter.load * 2**53) */
    int64_t plan_mode;              /* 0 = plan bytes, 1 = bernoulli, 2 = none */
    int64_t bern_tint;              /* ceil(arrivals.load * 2**53) */
    double bern_total;              /* cum_weights[-1] + 0.0 */
    /* machine scalars (in/out) */
    int64_t tail_total, dram_total, sram_total, la_pos, negatives;
    int64_t cells_in, cells_out, dram_reads, dram_writes, dropped;
    int64_t max_tail, max_head;
    int64_t crit_len, pending_len, eligible_len;
    int64_t ecqf_fallback;
    /* results (out) */
    int64_t n_delays, n_head_miss, n_tail_miss, n_drained;
    int64_t arrivals_seen, grants;
    int64_t pend_head_out, pend_flat_off_out;
    /* fused drain: run this many extra drain-mode slots (no arrivals, no
     * arbiter, no backlog upkeep) after the main window, saving the
     * caller a second full state marshal for the drain span. */
    int64_t drain_slots;
    /* capacities of the python-preallocated out buffers (in elements).
     * The kernel never writes past any of them: a span that would exceed
     * one aborts with ERR_CAP before the write and the python side falls
     * back to the scalar loop on its untouched state. */
    int64_t tail_ocap, dram_ocap, sram_ocap, req_ocap, arr_ocap;
    int64_t pend_cap, pend_flat_cap, crit_cap;
} kcfg;

typedef struct {
    uint32_t *arb_key;              /* in/out: 624 words */
    int64_t *arb_meta;              /* in/out: [pos, consumed] */
    uint32_t *bern_key;             /* in/out (plan_mode 1) */
    int64_t *bern_meta;
    const double *cum_weights;      /* len num_queues (plan_mode 1) */
    const uint8_t *plan;            /* len num_slots (plan_mode 0) */
    const int64_t *bl8;             /* randbelow shifts, idx 0..num_queues */
    /* per-queue int64[num_queues], in/out */
    int64_t *backlog, *next_seqno, *delivered, *counters, *req_count;
    int64_t *tail_occ, *dram_occ, *crit_cache;
    int64_t *eligible;              /* sorted, len eligible_len */
    /* flattened per-queue contents; *_icnt give the in counts */
    const int64_t *sram_icnt, *arr_icnt;
    const int64_t *tail_iflat, *dram_iflat, *sram_iflat, *req_iflat,
                  *arr_iflat;
    /* out counts + flats (python preallocates to safe bounds) */
    int64_t *sram_ocnt, *arr_ocnt;
    int64_t *tail_oflat, *dram_oflat, *sram_oflat, *req_oflat, *arr_oflat;
    int64_t *la_ring;               /* in/out, len la_len, -1 = empty */
    int64_t *crit_heap;             /* in/out, cap >= crit_len + 3n + 8 */
    int64_t *pending_fin, *pending_q, *pending_cnt, *pending_flat;
    int64_t *delays;                /* out, cap num_slots */
    int64_t *head_miss_q, *head_miss_slot;  /* out, cap num_slots */
    int64_t *drained;               /* out, cap num_slots */
} kptrs;

typedef struct {
    ivec tail, dram, req, arr;
    int64_t *sram;                  /* heap array */
    int sram_len, sram_cap_;
} qstate;

static int sram_push(qstate *q, int64_t seq)
{
    if (q->sram_len == q->sram_cap_) {
        int nc = q->sram_cap_ * 2;
        int64_t *nb = (int64_t *)realloc(q->sram,
                                         (size_t)nc * sizeof(int64_t));
        if (!nb)
            return 0;
        q->sram = nb;
        q->sram_cap_ = nc;
    }
    q->sram[q->sram_len] = seq;
    heap_up(q->sram, q->sram_len);
    q->sram_len++;
    return 1;
}

static int upper_bound_d(const double *a, int hi, double x)
{
    int lo = 0;
    while (lo < hi) {
        int mid = (lo + hi) >> 1;
        if (x < a[mid])
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

int64_t rads_run_span(kcfg *c, kptrs *p)
{
    const int nq = (int)c->num_queues;
    const int g = (int)c->granularity;
    const int strict = (int)c->strict;
    const int64_t tail_cap = c->tail_cap;
    const int64_t dram_cap = c->dram_cap;
    const int64_t sram_cap = c->sram_cap;
    const int la_len = (int)c->la_len;
    const int64_t num_slots = c->num_slots;
    const int is_main = (int)c->is_main;
    const int plan_mode = (int)c->plan_mode;
    int64_t err = ERR_OK;
    int i, q2;
    int64_t *seqbuf = (int64_t *)malloc((size_t)(g > 0 ? g : 1)
                                        * sizeof(int64_t));
    qstate *qs = NULL;
    if (!seqbuf)
        return ERR_OOM;

    mt_state arb, bern;
    memcpy(arb.key, p->arb_key, sizeof(arb.key));
    arb.pos = (int)p->arb_meta[0];
    arb.consumed = 0;
    if (plan_mode == 1) {
        memcpy(bern.key, p->bern_key, sizeof(bern.key));
        bern.pos = (int)p->bern_meta[0];
        bern.consumed = 0;
    }

    /* ---- build per-queue working state from the marshalled flats ---- */
    qs = (qstate *)calloc((size_t)nq, sizeof(qstate));
    if (!qs) {
        free(seqbuf);
        return ERR_OOM;
    }
    {
        int64_t toff = 0, doff = 0, soff = 0, roff = 0, aoff = 0;
        for (i = 0; i < nq; i++) {
            qstate *q = &qs[i];
            int tn = (int)p->tail_occ[i], dn = (int)p->dram_occ[i];
            int sn = (int)p->sram_icnt[i], rn = (int)p->req_count[i];
            int an = (int)p->arr_icnt[i];
            if (!iv_init(&q->tail, tn + 8) || !iv_init(&q->dram, dn + 8)
                    || !iv_init(&q->req, rn + 8)
                    || !iv_init(&q->arr, an + 8)) {
                err = ERR_OOM;
                goto cleanup;
            }
            q->sram_cap_ = sn + 8;
            q->sram = (int64_t *)malloc((size_t)q->sram_cap_
                                        * sizeof(int64_t));
            if (!q->sram) {
                err = ERR_OOM;
                goto cleanup;
            }
            memcpy(q->tail.buf, p->tail_iflat + toff,
                   (size_t)tn * sizeof(int64_t));
            q->tail.len = tn;
            memcpy(q->dram.buf, p->dram_iflat + doff,
                   (size_t)dn * sizeof(int64_t));
            q->dram.len = dn;
            memcpy(q->sram, p->sram_iflat + soff,
                   (size_t)sn * sizeof(int64_t));
            q->sram_len = sn;
            memcpy(q->req.buf, p->req_iflat + roff,
                   (size_t)rn * sizeof(int64_t));
            q->req.len = rn;
            memcpy(q->arr.buf, p->arr_iflat + aoff,
                   (size_t)an * sizeof(int64_t));
            q->arr.len = an;
            toff += tn;
            doff += dn;
            soff += sn;
            roff += rn;
            aoff += an;
        }
    }

    {
    /* ---- loop-local scalars ---- */
    int64_t tail_total = c->tail_total, dram_total = c->dram_total;
    int64_t sram_total = c->sram_total;
    int la_pos = (int)c->la_pos;
    int64_t negatives = c->negatives;
    int64_t cells_in = c->cells_in, cells_out = c->cells_out;
    int64_t dram_reads = c->dram_reads, dram_writes = c->dram_writes;
    int64_t dropped = c->dropped;
    int64_t max_tail = c->max_tail, max_head = c->max_head;
    int crit_len = (int)c->crit_len;
    int pend_head = 0, pend_len = (int)c->pending_len;
    int64_t pend_flat_off = 0;  /* consumed prefix of pending_flat */
    int elig_len = (int)c->eligible_len;
    int64_t n_delays = 0, n_head_miss = 0, n_tail_miss = 0, n_drained = 0;
    int64_t arrivals_seen = 0, grants = 0;
    int big_cnt = 0;
    int64_t *elig = p->eligible;
    int64_t *crit_heap = p->crit_heap;
    int64_t *crit_cache = p->crit_cache;
    int64_t *counters = p->counters;
    int64_t *req_count = p->req_count;
    int64_t *tail_occ = p->tail_occ;
    int64_t *dram_occ = p->dram_occ;
    int64_t slot, next_land, flat_w;
    int pc;

    flat_w = 0;
    for (i = 0; i < pend_len; i++)
        flat_w += p->pending_cnt[i];
    next_land = pend_len ? p->pending_fin[0] : NEVER;

    for (i = 0; i < nq; i++)
        if (tail_occ[i] >= g)
            big_cnt++;
    pc = (g - (int)(c->start_slot % g)) % g;

    for (slot = c->start_slot;
         slot < c->start_slot + num_slots + c->drain_slots; slot++) {
        int pol = 0;
        int a = 255;        /* arrival queue, 255 = none */
        int request = -1;   /* granted queue, -1 = none */
        int leaving;
        /* past the main window the loop continues in drain mode, exactly
         * as a separate is_main=0 span starting at this slot would. */
        const int main_now = is_main && slot < c->start_slot + num_slots;
        if (--pc < 0) {
            pc = g - 1;
            pol = 1;
        }

        if (main_now) {
            /* -- arbiter: gate draw, then choice over eligible -- */
            if (mt_comb53(&arb) < c->arb_tint && elig_len) {
                /* bl8 holds 8 - bit_length(m); the kernel reads whole
                 * 32-bit words, so the getrandbits shift is 24 more. */
                request = (int)elig[mt_randbelow(&arb, elig_len,
                                                 24 + (int)p->bl8[elig_len])];
            }
            /* -- arrival plan -- */
            if (plan_mode == 0) {
                a = p->plan[slot - c->start_slot];
            } else if (plan_mode == 1) {
                if (mt_comb53(&bern) < c->bern_tint) {
                    double u = (double)mt_comb53(&bern)
                               * (1.0 / 9007199254740992.0);
                    a = upper_bound_d(p->cum_weights, nq - 1,
                                      u * c->bern_total);
                }
            }
        }

        /* -- arrival: cut through to head SRAM or enqueue for the tail -- */
        if (a != 255) {
            qstate *qa = &qs[a];
            int64_t seqno = p->next_seqno[a]++;
            arrivals_seen++;
            if (!iv_push(&qa->arr, slot)) {
                err = ERR_OOM;
                goto done;
            }
            if (dram_occ[a] == 0 && tail_occ[a] == 0 && qa->sram_len < g) {
                sram_total++;
                if (sram_cap >= 0 && sram_total > sram_cap) {
                    err = ERR_STRICT;   /* SRAM overflow raises always */
                    goto done;
                }
                if (!sram_push(qa, seqno)) {
                    err = ERR_OOM;
                    goto done;
                }
                {
                    int64_t count = ++counters[a];
                    if (count == 0)
                        negatives--;
                    if (count >= 0 && count < req_count[a]) {
                        int64_t entered = qa->req.buf[qa->req.head + count];
                        if (crit_len >= c->crit_cap) {
                            err = ERR_CAP;
                            goto done;
                        }
                        crit_cache[a] = entered;
                        crit_heap[crit_len] = CRIT_KEY(entered, a);
                        heap_up(crit_heap, crit_len);
                        crit_len++;
                    } else {
                        crit_cache[a] = CRIT_INF;
                    }
                }
            } else if (tail_total >= tail_cap) {
                n_tail_miss++;
                if (strict) {
                    err = ERR_STRICT;
                    goto done;
                }
            } else {
                int64_t occ;
                if (!iv_push(&qa->tail, seqno)) {
                    err = ERR_OOM;
                    goto done;
                }
                occ = ++tail_occ[a];
                tail_total++;
                cells_in++;
                if (occ == g)
                    big_cnt++;
                if (!pol && tail_total > max_tail)
                    max_tail = tail_total;
            }
        }

        /* -- tail MMA (threshold scan, gated on the block count) -- */
        if (pol) {
            if (big_cnt) {
                int selection = -1;
                int64_t best_occ = g - 1;
                for (i = 0; i < nq; i++)
                    if (tail_occ[i] > best_occ) {
                        best_occ = tail_occ[i];
                        selection = i;
                    }
                if (selection >= 0) {
                    qstate *qt = &qs[selection];
                    int avail = IV_COUNT(&qt->tail);
                    int evicted = avail < g ? avail : g;
                    int64_t *blk = qt->tail.buf + qt->tail.head;
                    int64_t occ_b = tail_occ[selection];
                    int64_t occ_a = occ_b - evicted;
                    qt->tail.head += evicted;
                    tail_occ[selection] = occ_a;
                    tail_total -= evicted;
                    if (occ_b >= g && occ_a < g)
                        big_cnt--;
                    if (evicted) {
                        int stored = evicted;
                        if (dram_cap >= 0 && !strict) {
                            int64_t room = dram_cap - dram_total;
                            if (room < stored) {
                                int keep = room > 0 ? (int)room : 0;
                                dropped += stored - keep;
                                stored = keep;
                            }
                        }
                        if (stored) {
                            for (q2 = 0; q2 < stored; q2++) {
                                if (dram_cap >= 0 && dram_total >= dram_cap) {
                                    err = ERR_STRICT;
                                    goto done;
                                }
                                if (!iv_push(&qt->dram, blk[q2])) {
                                    err = ERR_OOM;
                                    goto done;
                                }
                                dram_total++;
                            }
                            dram_occ[selection] += stored;
                        }
                        dram_writes++;
                    }
                }
            }
            if (tail_total > max_tail)
                max_tail = tail_total;
        }

        /* -- head: lookahead shift, ECQF bookkeeping -- */
        leaving = (int)p->la_ring[la_pos];
        p->la_ring[la_pos] = request;
        if (++la_pos == la_len)
            la_pos = 0;
        if (request >= 0) {
            qstate *qr = &qs[request];
            int64_t count;
            if (!iv_push(&qr->req, slot)) {
                err = ERR_OOM;
                goto done;
            }
            count = req_count[request]++;
            if (counters[request] == count) {
                if (crit_len >= c->crit_cap) {
                    err = ERR_CAP;
                    goto done;
                }
                crit_cache[request] = slot;
                crit_heap[crit_len] = CRIT_KEY(slot, request);
                heap_up(crit_heap, crit_len);
                crit_len++;
            }
        }
        if (leaving >= 0) {
            int64_t count = --counters[leaving];
            if (count == -1) {
                negatives++;
                crit_cache[leaving] = CRIT_INF;
            }
            qs[leaving].req.head++;   /* python compaction is layout-only */
            req_count[leaving]--;
        }

        /* -- transfer landings -- */
        if (next_land <= slot) {
            while (pend_len && p->pending_fin[pend_head] <= slot) {
                int lq = (int)p->pending_q[pend_head];
                int cnt = (int)p->pending_cnt[pend_head];
                qstate *ql = &qs[lq];
                for (q2 = 0; q2 < cnt; q2++) {
                    sram_total++;
                    if (sram_cap >= 0 && sram_total > sram_cap) {
                        err = ERR_STRICT;
                        goto done;
                    }
                    if (!sram_push(ql, p->pending_flat[pend_flat_off + q2])) {
                        err = ERR_OOM;
                        goto done;
                    }
                }
                pend_flat_off += cnt;
                pend_head++;
                pend_len--;
            }
            next_land = pend_len ? p->pending_fin[pend_head] : NEVER;
        }

        /* -- ECQF select + replenish -- */
        if (pol) {
            int selection = -1;
            if (negatives) {
                int64_t best_counter = 0;
                for (i = 0; i < nq; i++)
                    if (counters[i] < 0
                            && (selection < 0 || counters[i] < best_counter)) {
                        best_counter = counters[i];
                        selection = i;
                    }
            } else {
                while (crit_len) {
                    int64_t top = crit_heap[0];
                    int tq = CRIT_QUEUE(top);
                    if (crit_cache[tq] == CRIT_ENTERED(top)) {
                        selection = tq;
                        break;
                    }
                    crit_heap[0] = crit_heap[--crit_len];
                    if (crit_len)
                        heap_down(crit_heap, crit_len, 0);
                }
                if (selection < 0 && c->ecqf_fallback) {
                    int64_t best_deficit = 0;
                    for (i = 0; i < nq; i++)
                        if (req_count[i]) {
                            int64_t deficit = req_count[i] - counters[i];
                            if (selection < 0 || deficit > best_deficit) {
                                best_deficit = deficit;
                                selection = i;
                            }
                        }
                    if (selection >= 0 && best_deficit <= 0)
                        selection = -1;
                }
            }
            if (selection >= 0) {
                qstate *qr = &qs[selection];
                int got = 0, nseqs;
                if (dram_occ[selection]) {
                    int avail = IV_COUNT(&qr->dram);
                    got = avail < g ? avail : g;
                    memcpy(seqbuf, qr->dram.buf + qr->dram.head,
                           (size_t)got * sizeof(int64_t));
                    qr->dram.head += got;
                    dram_occ[selection] -= got;
                    dram_total -= got;
                }
                nseqs = got;
                if (got < g) {
                    int want = g - got;
                    int avail = IV_COUNT(&qr->tail);
                    int extra = avail < want ? avail : want;
                    if (extra) {
                        int64_t occ_b = tail_occ[selection];
                        int64_t occ_a = occ_b - extra;
                        memcpy(seqbuf + got, qr->tail.buf + qr->tail.head,
                               (size_t)extra * sizeof(int64_t));
                        qr->tail.head += extra;
                        nseqs += extra;
                        tail_occ[selection] = occ_a;
                        tail_total -= extra;
                        if (occ_b >= g && occ_a < g)
                            big_cnt--;
                    }
                }
                if (nseqs) {
                    int w = pend_head + pend_len;
                    int64_t count = counters[selection] + nseqs;
                    if (w >= c->pend_cap
                            || flat_w + nseqs > c->pend_flat_cap) {
                        err = ERR_CAP;
                        goto done;
                    }
                    counters[selection] = count;
                    if (count >= 0 && count - nseqs < 0)
                        negatives--;
                    if (count >= 0 && count < req_count[selection]) {
                        int64_t entered = qr->req.buf[qr->req.head + count];
                        if (crit_len >= c->crit_cap) {
                            err = ERR_CAP;
                            goto done;
                        }
                        crit_cache[selection] = entered;
                        crit_heap[crit_len] = CRIT_KEY(entered, selection);
                        heap_up(crit_heap, crit_len);
                        crit_len++;
                    } else {
                        crit_cache[selection] = CRIT_INF;
                    }
                    if (!pend_len)
                        next_land = slot + g;
                    p->pending_fin[w] = slot + g;
                    p->pending_q[w] = selection;
                    p->pending_cnt[w] = nseqs;
                    memcpy(p->pending_flat + flat_w, seqbuf,
                           (size_t)nseqs * sizeof(int64_t));
                    flat_w += nseqs;
                    pend_len++;
                    dram_reads++;
                }
            }
        }

        /* -- serve -- */
        if (leaving >= 0) {
            qstate *ql = &qs[leaving];
            int64_t expected = p->delivered[leaving];
            int ok = 1;
            if (ql->sram_len && ql->sram[0] == expected) {
                ql->sram[0] = ql->sram[--ql->sram_len];
                if (ql->sram_len)
                    heap_down(ql->sram, ql->sram_len, 0);
                sram_total--;
            } else if (tail_occ[leaving]
                       && ql->tail.buf[ql->tail.head] == expected) {
                /* tail bypass: the in-order cell never left the tail */
                int64_t occ;
                ql->tail.head++;
                occ = --tail_occ[leaving];
                tail_total--;
                if (occ == g - 1)
                    big_cnt--;
            } else {
                p->head_miss_q[n_head_miss] = leaving;
                p->head_miss_slot[n_head_miss] = slot;
                n_head_miss++;
                if (strict) {
                    err = ERR_STRICT;
                    goto done;
                }
                ok = 0;
            }
            if (ok) {
                int64_t arrival_slot;
                p->delivered[leaving] = expected + 1;
                cells_out++;
                arrival_slot = ql->arr.buf[ql->arr.head++];
                if (main_now)
                    p->delays[n_delays++] = slot + 1 - arrival_slot;
                else
                    p->drained[n_drained++] = arrival_slot;
            }
        }
        if (sram_total > max_head)
            max_head = sram_total;

        /* -- end of slot: backlog + eligible -- */
        if (main_now) {
            if (a != 255) {
                int64_t count = ++p->backlog[a];
                if (count == 1) {
                    int lo = 0, hi = elig_len;
                    while (lo < hi) {
                        int mid = (lo + hi) >> 1;
                        if (elig[mid] < a)
                            lo = mid + 1;
                        else
                            hi = mid;
                    }
                    memmove(elig + lo + 1, elig + lo,
                            (size_t)(elig_len - lo) * sizeof(int64_t));
                    elig[lo] = a;
                    elig_len++;
                }
            }
            if (request >= 0) {
                int64_t count;
                grants++;
                count = --p->backlog[request];
                if (count == 0) {
                    int lo = 0, hi = elig_len;
                    while (lo < hi) {
                        int mid = (lo + hi) >> 1;
                        if (elig[mid] < request)
                            lo = mid + 1;
                        else
                            hi = mid;
                    }
                    memmove(elig + lo, elig + lo + 1,
                            (size_t)(elig_len - lo - 1) * sizeof(int64_t));
                    elig_len--;
                }
            }
        }
    }

done:
    if (err == ERR_OK) {
        /* ---- scalars back ---- */
        c->tail_total = tail_total;
        c->dram_total = dram_total;
        c->sram_total = sram_total;
        c->la_pos = la_pos;
        c->negatives = negatives;
        c->cells_in = cells_in;
        c->cells_out = cells_out;
        c->dram_reads = dram_reads;
        c->dram_writes = dram_writes;
        c->dropped = dropped;
        c->max_tail = max_tail;
        c->max_head = max_head;
        c->crit_len = crit_len;
        c->pending_len = pend_len;
        c->eligible_len = elig_len;
        c->pend_head_out = pend_head;
        c->pend_flat_off_out = pend_flat_off;
        c->n_delays = n_delays;
        c->n_head_miss = n_head_miss;
        c->n_tail_miss = n_tail_miss;
        c->n_drained = n_drained;
        c->arrivals_seen = arrivals_seen;
        c->grants = grants;
    }
    }

cleanup:
    if (err == ERR_OK) {
        /* Never trust the sizing formulas alone: total the final live
         * windows first and refuse the writeback (python replays on the
         * scalar loop) if any out buffer would overflow. */
        int64_t ttot = 0, dtot = 0, stot = 0, rtot = 0, atot = 0;
        for (i = 0; i < nq; i++) {
            ttot += IV_COUNT(&qs[i].tail);
            dtot += IV_COUNT(&qs[i].dram);
            stot += qs[i].sram_len;
            rtot += IV_COUNT(&qs[i].req);
            atot += IV_COUNT(&qs[i].arr);
        }
        if (ttot > c->tail_ocap || dtot > c->dram_ocap
                || stot > c->sram_ocap || rtot > c->req_ocap
                || atot > c->arr_ocap)
            err = ERR_CAP;
    }
    if (err == ERR_OK) {
        /* ---- per-queue contents back (live windows, head at 0) ---- */
        int64_t toff = 0, doff = 0, soff = 0, roff = 0, aoff = 0;
        for (i = 0; i < nq; i++) {
            qstate *q = &qs[i];
            int tn = IV_COUNT(&q->tail), dn = IV_COUNT(&q->dram);
            int rn = IV_COUNT(&q->req), an = IV_COUNT(&q->arr);
            memcpy(p->tail_oflat + toff, q->tail.buf + q->tail.head,
                   (size_t)tn * sizeof(int64_t));
            memcpy(p->dram_oflat + doff, q->dram.buf + q->dram.head,
                   (size_t)dn * sizeof(int64_t));
            memcpy(p->sram_oflat + soff, q->sram,
                   (size_t)q->sram_len * sizeof(int64_t));
            memcpy(p->req_oflat + roff, q->req.buf + q->req.head,
                   (size_t)rn * sizeof(int64_t));
            memcpy(p->arr_oflat + aoff, q->arr.buf + q->arr.head,
                   (size_t)an * sizeof(int64_t));
            p->sram_ocnt[i] = q->sram_len;
            p->arr_ocnt[i] = an;
            toff += tn;
            doff += dn;
            soff += q->sram_len;
            roff += rn;
            aoff += an;
        }
        /* ---- final RNG states (python setstate()s these verbatim) ---- */
        memcpy(p->arb_key, arb.key, sizeof(arb.key));
        p->arb_meta[0] = arb.pos;
        p->arb_meta[1] = arb.consumed;
        if (plan_mode == 1) {
            memcpy(p->bern_key, bern.key, sizeof(bern.key));
            p->bern_meta[0] = bern.pos;
            p->bern_meta[1] = bern.consumed;
        }
    }
    if (qs) {
        for (i = 0; i < nq; i++) {
            free(qs[i].tail.buf);
            free(qs[i].dram.buf);
            free(qs[i].sram);
            free(qs[i].req.buf);
            free(qs[i].arr.buf);
        }
        free(qs);
    }
    free(seqbuf);
    return err;
}
