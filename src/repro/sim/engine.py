"""The closed-loop simulation driver.

Three execution paths produce bit-identical reports:

* the **reference per-slot loop** (``engine="reference"``, a.k.a.
  ``fast_path=False``) — one attribute lookup and one backlog rebuild per
  slot; the behavioural ground truth;
* the **batched fast path** (``engine="batched"``, the default) — arrivals
  are pre-generated into an array before the loop (arrival processes depend
  only on their own state, never on the buffer), the per-queue backlog the
  arbiter sees is maintained incrementally instead of being rebuilt from the
  buffer every slot, and all per-slot attribute lookups are hoisted into
  locals.  The arbiter still runs in-loop because its decisions depend on the
  evolving backlog.
* the **array engine** (``engine="array"``) — a struct-of-arrays
  re-implementation of the whole buffer hot path
  (:mod:`repro.sim.array_engine`): cells become bare integers in
  ring-buffered per-queue arrays, with zero per-slot allocation.  The MMA
  policy objects (and, for CFDS, the DRAM scheduler subsystem) still make
  every decision, so reports cannot diverge from the object model.

Equivalence holds because arrival processes and arbiters draw from separate
seeded RNGs (pre-generating arrivals does not perturb the arbiter's stream)
and because the incremental backlog replays exactly the
``arrivals - issued requests`` accounting both buffer classes implement.
The equivalence of all three paths is asserted for every registered scenario
by the workloads and array-engine test suites.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ArbiterContractError, ConfigurationError
from repro.obs.metrics import get_metrics
from repro.obs.trace import emit as trace_emit
from repro.obs.trace import get_trace
from repro.sim.stats import LatencyStats, ThroughputStats
from repro.traffic.arbiters import Arbiter
from repro.traffic.arrivals import ArrivalProcess
from repro.traffic.trace import TrafficTrace
from repro.types import SimulationResult


@dataclass
class SimulationReport:
    """Everything a closed-loop run produces."""

    throughput: ThroughputStats
    latency: LatencyStats
    buffer_result: SimulationResult
    trace: Optional[TrafficTrace] = None

    @property
    def zero_miss(self) -> bool:
        return self.buffer_result.zero_miss

    def summary(self) -> Dict[str, object]:
        """Flat headline numbers — the rows ``render_scenario_run`` prints."""
        p50, p95, p99 = self.latency.percentiles((0.50, 0.95, 0.99))
        return {
            "slots": self.throughput.slots,
            "arrivals": self.throughput.arrivals,
            "departures": self.throughput.departures,
            "drops": self.throughput.drops,
            "offered_load": self.throughput.offered_load,
            "carried_load": self.throughput.carried_load,
            "latency_mean": self.latency.mean,
            "latency_p50": p50,
            "latency_p95": p95,
            "latency_p99": p99,
            "latency_max": self.latency.maximum,
            "zero_miss": self.zero_miss,
        }


class ClosedLoopSimulation:
    """Drives a packet buffer with an arrival process and an arbiter.

    The buffer must expose the interface shared by
    :class:`repro.rads.buffer.RADSPacketBuffer` and
    :class:`repro.core.buffer.CFDSPacketBuffer`:
    ``step(arrival, request)``, ``backlog(queue)``, ``can_request(queue)``,
    ``drain()``, ``combined_result()`` and the ``dropped_cells`` counter.

    Args:
        buffer: the packet buffer under test.
        arrivals: per-slot arrival process (may be ``None`` for a drain-only run).
        arbiter: per-slot request generator (may be ``None`` for a fill-only run).
        record_trace: keep the exact (arrival, request) sequence for replay.
    """

    def __init__(self,
                 buffer,
                 arrivals: Optional[ArrivalProcess] = None,
                 arbiter: Optional[Arbiter] = None,
                 record_trace: bool = False) -> None:
        self.buffer = buffer
        self.arrivals = arrivals
        self.arbiter = arbiter
        self.trace = TrafficTrace() if record_trace else None
        self.latency = LatencyStats()
        self.throughput = ThroughputStats()

    # ------------------------------------------------------------------ #
    def run(self, num_slots: int, drain: bool = True,
            fast_path: bool = True,
            engine: Optional[str] = None) -> SimulationReport:
        """Simulate ``num_slots`` slots (plus an optional final drain).

        Args:
            num_slots: slots to simulate.
            drain: run idle slots afterwards until the pipeline is empty.
            fast_path: legacy selector — ``False`` picks the reference
                per-slot loop.  Ignored when ``engine`` is given.
            engine: ``"reference"``, ``"batched"`` (default) or ``"array"``
                (the struct-of-arrays core, which requires a freshly built
                buffer).  All three produce bit-identical reports.
        """
        if num_slots < 0:
            raise ConfigurationError("num_slots must be non-negative")
        if engine is None:
            engine = "batched" if fast_path else "reference"
        from repro.sim.array_engine import ENGINES

        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r} (known: {', '.join(ENGINES)})")
        # The observability wrapper records what a run did, strictly after
        # the fact: it draws no randomness and feeds nothing back into the
        # machines, so an instrumented run's report is bit-identical to an
        # unobserved one (the differential fuzzer pins this).
        obs = get_metrics()
        if obs is None and get_trace() is None:
            return self._run_engine(num_slots, drain, engine)
        trace_emit("run_start", engine=engine, num_slots=num_slots,
                   buffer=type(self.buffer).__name__)
        started = time.perf_counter()
        report = self._run_engine(num_slots, drain, engine)
        duration = time.perf_counter() - started
        if obs is not None:
            obs.inc(f"engine.{engine}.runs")
            obs.inc("engine.slots_simulated", num_slots)
            obs.observe(f"engine.{engine}.run_s", duration)
            result = report.buffer_result
            obs.gauge("buffer.max_head_sram_occupancy",
                      result.max_head_sram_occupancy)
            obs.gauge("buffer.max_tail_sram_occupancy",
                      result.max_tail_sram_occupancy)
        trace_emit("run_end", engine=engine,
                   slots=report.throughput.slots,
                   arrivals=report.throughput.arrivals,
                   departures=report.throughput.departures,
                   drops=report.throughput.drops,
                   duration_s=round(duration, 6),
                   slots_per_s=(round(num_slots / duration)
                                if duration > 0 else None))
        return report

    def _run_engine(self, num_slots: int, drain: bool,
                    engine: str) -> SimulationReport:
        """Dispatch to the selected core and assemble the report."""
        if engine == "array":
            from repro.sim.array_engine import run_array

            return run_array(self, num_slots, drain=drain)
        if engine == "numpy":
            from repro.sim.numpy_engine import run_numpy

            return run_numpy(self, num_slots, drain=drain)
        if engine == "batched":
            self._run_fast(num_slots)
        else:
            self._run_slots(num_slots)
        if drain:
            for cell in self.buffer.drain():
                self.throughput.departures += 1
                self.latency.record(cell.arrival_slot, self.buffer.slot)
        self.throughput.slots = self.buffer.slot
        self.throughput.drops = self.buffer.dropped_cells
        return SimulationReport(throughput=self.throughput,
                                latency=self.latency,
                                buffer_result=self.buffer.combined_result(),
                                trace=self.trace)

    def run_stream(self, num_slots: int, *,
                   drain: bool = True,
                   engine: Optional[str] = None,
                   chunk_slots: Optional[int] = None,
                   warmup_slots: int = 0,
                   checkpoint_every: Optional[int] = None,
                   checkpoint_path=None,
                   label: Optional[str] = None,
                   progress=None,
                   progress_every: int = 1) -> SimulationReport:
        """Simulate ``num_slots`` slots in bounded-memory chunks.

        The streaming path (:mod:`repro.sim.streaming`) generates arrival
        plans one chunk at a time (peak memory is independent of
        ``num_slots``), optionally discards the first ``warmup_slots`` from
        the report's statistics, and can write resumable checkpoints every
        ``checkpoint_every`` slots.  With ``warmup_slots=0`` the report is
        bit-identical to :meth:`run` on the same engine, for every chunk
        size.
        """
        from repro.sim.streaming import StreamingSimulation

        return StreamingSimulation(self, num_slots, engine=engine,
                                   drain=drain, chunk_slots=chunk_slots,
                                   warmup_slots=warmup_slots,
                                   checkpoint_every=checkpoint_every,
                                   checkpoint_path=checkpoint_path,
                                   label=label, progress=progress,
                                   progress_every=progress_every).run()

    # ------------------------------------------------------------------ #
    def _run_slots(self, num_slots: int, start_slot: int = 0,
                   plan: Optional[List[Optional[int]]] = None) -> None:
        """Reference loop: rebuild the backlog from the buffer every slot.

        ``start_slot`` and ``plan`` are the streaming hooks: a chunked run
        passes its absolute slot window and, optionally, a pre-generated
        arrival plan for exactly that window.  The defaults reproduce the
        monolithic behaviour.
        """
        num_queues = self.buffer.config.num_queues
        for slot in range(start_slot, start_slot + num_slots):
            if plan is not None:
                arrival = plan[slot - start_slot]
            else:
                arrival = (self.arrivals.next_arrival(slot)
                           if self.arrivals else None)
            backlog = [self.buffer.backlog(q) for q in range(num_queues)]
            request = self.arbiter.next_request(slot, backlog) if self.arbiter else None
            if request is not None:
                # The engine contract (shared verbatim by the batched and
                # array paths): a request is None or an int in range.
                if type(request) is int and 0 <= request < num_queues:
                    if not self.buffer.can_request(request):
                        request = None
                else:
                    raise ArbiterContractError(request, num_queues, slot)
            if self.trace is not None:
                self.trace.append(arrival, request)
            served = self.buffer.step(arrival, request)
            self._account(arrival, request, served)

    def _run_fast(self, num_slots: int, start_slot: int = 0,
                  plan: Optional[List[Optional[int]]] = None) -> None:
        """Batched loop: pre-generated arrivals, incremental backlog, locals.

        ``start_slot``/``plan`` as in :meth:`_run_slots`.
        """
        buffer = self.buffer
        num_queues = buffer.config.num_queues
        if plan is not None:
            arrival_plan: List[Optional[int]] = plan
        elif self.arrivals is not None:
            # The stochastic processes return a prefilled list (their batch
            # fast path); only materialise generic iterables.
            raw = self.arrivals.arrivals_slice(start_slot, num_slots)
            arrival_plan = raw if isinstance(raw, list) else list(raw)
        else:
            arrival_plan = [None] * num_slots
        next_request = self.arbiter.next_request if self.arbiter else None
        # The backlog the legacy loop rebuilds per slot evolves by exactly
        # +1 per arrival and -1 per accepted request, so maintain it
        # incrementally (one shared list the arbiter reads each slot).
        backlog = [buffer.backlog(q) for q in range(num_queues)]
        step = buffer.step
        trace_events = self.trace.events if self.trace is not None else None
        latency_record = self.latency.record
        arrivals_count = 0
        departures = 0
        idle_requests = 0
        for slot, arrival in enumerate(arrival_plan, start_slot):
            if next_request is not None:
                request = next_request(slot, backlog)
                if request is not None:
                    if type(request) is int and 0 <= request < num_queues:
                        if backlog[request] <= 0:
                            request = None
                    else:
                        raise ArbiterContractError(request, num_queues, slot)
            else:
                request = None
            if trace_events is not None:
                trace_events.append((arrival, request))
            served = step(arrival, request)
            if arrival is not None:
                arrivals_count += 1
                backlog[arrival] += 1
            if request is None:
                idle_requests += 1
            else:
                backlog[request] -= 1
            if served is not None:
                departures += 1
                latency_record(served.arrival_slot, buffer.slot)
        self.throughput.arrivals += arrivals_count
        self.throughput.departures += departures
        self.throughput.idle_request_slots += idle_requests

    # ------------------------------------------------------------------ #
    def _account(self, arrival, request, served) -> None:
        if arrival is not None:
            self.throughput.arrivals += 1
        if request is None:
            self.throughput.idle_request_slots += 1
        if served is not None:
            self.throughput.departures += 1
            self.latency.record(served.arrival_slot, self.buffer.slot)
