"""The closed-loop simulation driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.stats import LatencyStats, ThroughputStats
from repro.traffic.arbiters import Arbiter
from repro.traffic.arrivals import ArrivalProcess
from repro.traffic.trace import TrafficTrace
from repro.types import SimulationResult


@dataclass
class SimulationReport:
    """Everything a closed-loop run produces."""

    throughput: ThroughputStats
    latency: LatencyStats
    buffer_result: SimulationResult
    trace: Optional[TrafficTrace] = None

    @property
    def zero_miss(self) -> bool:
        return self.buffer_result.zero_miss


class ClosedLoopSimulation:
    """Drives a packet buffer with an arrival process and an arbiter.

    The buffer must expose the interface shared by
    :class:`repro.rads.buffer.RADSPacketBuffer` and
    :class:`repro.core.buffer.CFDSPacketBuffer`:
    ``step(arrival, request)``, ``backlog(queue)``, ``can_request(queue)``,
    ``drain()`` and ``combined_result()``.

    Args:
        buffer: the packet buffer under test.
        arrivals: per-slot arrival process (may be ``None`` for a drain-only run).
        arbiter: per-slot request generator (may be ``None`` for a fill-only run).
        record_trace: keep the exact (arrival, request) sequence for replay.
    """

    def __init__(self,
                 buffer,
                 arrivals: Optional[ArrivalProcess] = None,
                 arbiter: Optional[Arbiter] = None,
                 record_trace: bool = False) -> None:
        self.buffer = buffer
        self.arrivals = arrivals
        self.arbiter = arbiter
        self.trace = TrafficTrace() if record_trace else None
        self.latency = LatencyStats()
        self.throughput = ThroughputStats()

    # ------------------------------------------------------------------ #
    def run(self, num_slots: int, drain: bool = True) -> SimulationReport:
        """Simulate ``num_slots`` slots (plus an optional final drain)."""
        if num_slots < 0:
            raise ValueError("num_slots must be non-negative")
        num_queues = self.buffer.config.num_queues
        for slot in range(num_slots):
            arrival = self.arrivals.next_arrival(slot) if self.arrivals else None
            backlog = [self.buffer.backlog(q) for q in range(num_queues)]
            request = self.arbiter.next_request(slot, backlog) if self.arbiter else None
            if request is not None and not self.buffer.can_request(request):
                request = None
            if self.trace is not None:
                self.trace.append(arrival, request)
            served = self.buffer.step(arrival, request)
            self._account(arrival, request, served)
        if drain:
            for cell in self.buffer.drain():
                self.throughput.departures += 1
                self.latency.record(cell.arrival_slot, self.buffer.slot)
        self.throughput.slots = self.buffer.slot
        self.throughput.drops = getattr(self.buffer, "dropped_cells", 0)
        return SimulationReport(throughput=self.throughput,
                                latency=self.latency,
                                buffer_result=self.buffer.combined_result(),
                                trace=self.trace)

    # ------------------------------------------------------------------ #
    def _account(self, arrival, request, served) -> None:
        if arrival is not None:
            self.throughput.arrivals += 1
        if request is None:
            self.throughput.idle_request_slots += 1
        if served is not None:
            self.throughput.departures += 1
            self.latency.record(served.arrival_slot, self.buffer.slot)
