"""Statistics collectors for closed-loop simulations."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ValidationError

def _percentile_threshold(fraction: float, count: int) -> int:
    """Smallest cumulative count that reaches the ``fraction`` percentile.

    Computed in exact integer arithmetic: the naive ``fraction * count``
    float product misrounds once ``count`` approaches 2**53 (the product
    falls between representable doubles, so ``seen >= fraction * count``
    fires one histogram bin early or late).  The float is first snapped to
    the decimal the caller meant (``0.1`` is the double *nearest* 1/10, not
    1/10 itself) and the threshold is then ``ceil(count * p / q)`` on plain
    ints, which never rounds.
    """
    ratio = Fraction(fraction).limit_denominator(10 ** 12)
    return -(-count * ratio.numerator // ratio.denominator)


class LatencyStats:
    """Tracks per-cell delay (slots between arrival and departure)."""

    def __init__(self) -> None:
        self._count = 0
        self._total = 0
        self._minimum: Optional[int] = None
        self._maximum: Optional[int] = None
        self._histogram: Dict[int, int] = {}

    @classmethod
    def from_histogram(cls, items: Iterable[Tuple[int, int]]) -> "LatencyStats":
        """Rebuild a collector from ``(delay, count)`` pairs.

        Inverse of :meth:`histogram_items`: a collector rebuilt from another's
        histogram compares equal to the original.  This is how the switch
        layer reconstitutes per-port latency distributions from cacheable
        results before merging them.
        """
        stats = cls()
        for delay, count in items:
            stats.record_delay(delay, count)
        return stats

    def histogram_items(self) -> Tuple[Tuple[int, int], ...]:
        """The delay histogram as sorted ``(delay, count)`` pairs — the
        JSON-serialisable carrier of the full distribution."""
        return tuple(sorted(self._histogram.items()))

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Fold ``other``'s observations into this collector (in place).

        Merging port-level collectors yields exactly the collector a single
        simulation of all ports would have produced, so switch-level
        percentiles are computed over the true combined distribution rather
        than averaged per-port percentiles.
        """
        for delay, count in other.histogram_items():
            self.record_delay(delay, count)
        return self

    def record(self, arrival_slot: int, departure_slot: int) -> None:
        delay = departure_slot - arrival_slot
        if delay < 0:
            raise ValidationError("departure cannot precede arrival")
        self.record_delay(delay)

    def record_delay(self, delay: int, count: int = 1) -> None:
        """Record ``count`` cells that experienced ``delay`` slots.

        The batch form is how the array engine folds its flat histogram into
        the collector at the end of a run; the observable state is identical
        to ``count`` individual :meth:`record` calls.
        """
        if delay < 0:
            raise ValidationError("delay cannot be negative")
        if count <= 0:
            raise ValidationError("count must be positive")
        self._count += count
        self._total += delay * count
        if self._minimum is None or delay < self._minimum:
            self._minimum = delay
        if self._maximum is None or delay > self._maximum:
            self._maximum = delay
        self._histogram[delay] = self._histogram.get(delay, 0) + count

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> int:
        return self._minimum if self._minimum is not None else 0

    @property
    def maximum(self) -> int:
        return self._maximum if self._maximum is not None else 0

    def percentile(self, fraction: float) -> int:
        """Delay value at the given percentile (0 < fraction <= 1).

        On an empty collector the result is defined to be ``0`` — see
        :meth:`percentiles`.
        """
        return self.percentiles((fraction,))[0]

    def percentiles(self, fractions: Sequence[float]) -> Tuple[int, ...]:
        """Delay values at several percentiles, computed in one sorted pass.

        ``summary()`` asks for p50/p95/p99 together; sorting the histogram
        once and sweeping it cumulatively answers any number of fractions for
        the cost of one, instead of one sort per percentile.  Results are
        returned in the order the fractions were given.

        **Empty collector:** with no recorded delays every requested
        percentile is defined to be ``0`` (an ``int``, consistent with
        :attr:`minimum`/:attr:`maximum` and with ``mean == 0.0``), never an
        arbitrary artefact of the sweep.  Callers that must distinguish "no
        samples" from "all delays were zero" should check :attr:`count`.
        """
        for fraction in fractions:
            if not 0.0 < fraction <= 1.0:
                raise ValidationError("fraction must be in (0, 1]")
        if not self._histogram:
            return tuple(0 for _ in fractions)
        # Sweep the sorted histogram once, answering the fractions in
        # ascending-threshold order.  Thresholds are integer-exact
        # (:func:`_percentile_threshold` — the float product ``fraction *
        # count`` misrounds near 2**53), and every threshold lands in
        # ``[1, count]``, so the sweep answers every fraction; the trailing
        # loop is pure belt-and-braces.
        thresholds = [_percentile_threshold(fraction, self._count)
                      for fraction in fractions]
        order = sorted(range(len(fractions)), key=lambda i: thresholds[i])
        results = [0] * len(fractions)
        delays = sorted(self._histogram)
        seen = 0
        next_unanswered = 0
        for delay in delays:
            seen += self._histogram[delay]
            while (next_unanswered < len(order)
                   and seen >= thresholds[order[next_unanswered]]):
                results[order[next_unanswered]] = delay
                next_unanswered += 1
            if next_unanswered == len(order):
                break
        while next_unanswered < len(order):
            results[order[next_unanswered]] = delays[-1]
            next_unanswered += 1
        return tuple(results)

    @property
    def p50(self) -> int:
        """Median delay in slots."""
        return self.percentile(0.50)

    @property
    def p95(self) -> int:
        """95th-percentile delay in slots."""
        return self.percentile(0.95)

    @property
    def p99(self) -> int:
        """99th-percentile delay in slots — the tail the SLO stories care about."""
        return self.percentile(0.99)

    def snapshot(self) -> Dict[str, object]:
        """Full observable state, for equality checks and serialisation."""
        return {
            "count": self._count,
            "total": self._total,
            "minimum": self._minimum,
            "maximum": self._maximum,
            "histogram": dict(self._histogram),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyStats):
            return NotImplemented
        return self.snapshot() == other.snapshot()


@dataclass
class ThroughputStats:
    """Counts of offered, carried and lost traffic."""

    arrivals: int = 0
    departures: int = 0
    drops: int = 0
    idle_request_slots: int = 0
    slots: int = 0

    @property
    def offered_load(self) -> float:
        return self.arrivals / self.slots if self.slots else 0.0

    @property
    def carried_load(self) -> float:
        return self.departures / self.slots if self.slots else 0.0

    @property
    def loss_fraction(self) -> float:
        return self.drops / self.arrivals if self.arrivals else 0.0
