"""Statistics collectors for closed-loop simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


class LatencyStats:
    """Tracks per-cell delay (slots between arrival and departure)."""

    def __init__(self) -> None:
        self._count = 0
        self._total = 0
        self._minimum: Optional[int] = None
        self._maximum: Optional[int] = None
        self._histogram: Dict[int, int] = {}

    def record(self, arrival_slot: int, departure_slot: int) -> None:
        delay = departure_slot - arrival_slot
        if delay < 0:
            raise ValueError("departure cannot precede arrival")
        self._count += 1
        self._total += delay
        self._minimum = delay if self._minimum is None else min(self._minimum, delay)
        self._maximum = delay if self._maximum is None else max(self._maximum, delay)
        bucket = delay
        self._histogram[bucket] = self._histogram.get(bucket, 0) + 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> int:
        return self._minimum if self._minimum is not None else 0

    @property
    def maximum(self) -> int:
        return self._maximum if self._maximum is not None else 0

    def percentile(self, fraction: float) -> int:
        """Delay value at the given percentile (0 < fraction <= 1)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self._histogram:
            return 0
        target = fraction * self._count
        seen = 0
        for delay in sorted(self._histogram):
            seen += self._histogram[delay]
            if seen >= target:
                return delay
        return max(self._histogram)

    @property
    def p50(self) -> int:
        """Median delay in slots."""
        return self.percentile(0.50)

    @property
    def p95(self) -> int:
        """95th-percentile delay in slots."""
        return self.percentile(0.95)

    @property
    def p99(self) -> int:
        """99th-percentile delay in slots — the tail the SLO stories care about."""
        return self.percentile(0.99)

    def snapshot(self) -> Dict[str, object]:
        """Full observable state, for equality checks and serialisation."""
        return {
            "count": self._count,
            "total": self._total,
            "minimum": self._minimum,
            "maximum": self._maximum,
            "histogram": dict(self._histogram),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyStats):
            return NotImplemented
        return self.snapshot() == other.snapshot()


@dataclass
class ThroughputStats:
    """Counts of offered, carried and lost traffic."""

    arrivals: int = 0
    departures: int = 0
    drops: int = 0
    idle_request_slots: int = 0
    slots: int = 0

    @property
    def offered_load(self) -> float:
        return self.arrivals / self.slots if self.slots else 0.0

    @property
    def carried_load(self) -> float:
        return self.departures / self.slots if self.slots else 0.0

    @property
    def loss_fraction(self) -> float:
        return self.drops / self.arrivals if self.arrivals else 0.0
