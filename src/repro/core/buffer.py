"""The assembled CFDS VOQ packet buffer.

This wires together everything Section 5 and 6 describe:

* the tail SRAM with its threshold MMA (granularity ``b``);
* one DRAM Scheduler Subsystem shared by the read and the write streams, with
  the block-cyclic bank mapping built over the *physical* queue space;
* the head SRAM with the ECQF MMA, the lookahead and the latency register;
* optionally, the queue-renaming table that lets a logical queue spill across
  bank groups so the statically partitioned DRAM does not fragment.

The buffer is driven one slot at a time with at most one arriving cell and one
arbiter request per slot (the 2x line-rate assumption of Section 2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import CFDSConfig
from repro.core.head_buffer import CFDSHeadBuffer
from repro.core.mapping import CFDSBankMapping
from repro.core.renaming import RenamingTable
from repro.core.scheduler import DRAMSchedulerSubsystem
from repro.core.tail_buffer import CFDSTailBuffer
from repro.dram.store import DRAMQueueStore
from repro.errors import RenamingError
from repro.mma.base import HeadMMA
from repro.types import Cell, ReplenishRequest, SimulationResult, TransferDirection


class CFDSPacketBuffer:
    """Complete CFDS packet buffer.

    Args:
        config: the CFDS parameters (``Q`` logical queues, ``B``, ``b``, ``M``
            and the register/SRAM sizes derived from them).
        use_renaming: enable the Section-6 renaming mechanism.  When disabled,
            each logical queue is statically bound to its own group, which is
            exactly the fragmentation scenario the paper motivates renaming
            with (exercised by the renaming ablation benchmark).
        oversubscription: ratio of physical to logical queue names when
            renaming is enabled (the paper's ``K``).
        group_capacity_cells: DRAM capacity of one bank group, in cells;
            ``None`` means unbounded groups (renaming then only matters for
            load balancing, not for correctness).
        head_mma: override for the head MMA policy (ECQF by default).
    """

    def __init__(self,
                 config: CFDSConfig,
                 *,
                 use_renaming: bool = True,
                 oversubscription: int = 2,
                 group_capacity_cells: Optional[int] = None,
                 head_mma: Optional[HeadMMA] = None) -> None:
        if oversubscription < 1:
            raise ValueError("oversubscription must be at least 1")
        self.config = config
        self.group_capacity_cells = group_capacity_cells
        num_logical = config.num_queues
        num_physical = num_logical * oversubscription if use_renaming else num_logical
        self.mapping = CFDSBankMapping(num_queues=num_physical,
                                       num_banks=config.num_banks,
                                       dram_access_slots=config.dram_access_slots,
                                       granularity=config.granularity)
        self.scheduler = DRAMSchedulerSubsystem(config, mapping=self.mapping,
                                                issues_per_period=2)
        self.renaming: Optional[RenamingTable] = None
        if use_renaming:
            self.renaming = RenamingTable(num_logical, num_physical,
                                          self.mapping.num_groups,
                                          group_capacity_cells=group_capacity_cells)
        self.dram_content = DRAMQueueStore(num_logical, capacity_cells=config.dram_cells)
        self.tail = CFDSTailBuffer(config, scheduler=self.scheduler,
                                   evict_sink=self._store_block)
        # The closed-loop head cache reserves one extra block per queue for
        # the arrival cut-through path (short queues live entirely on-chip).
        head_capacity = (config.effective_head_sram_cells
                         + num_logical * config.granularity)
        self.head = CFDSHeadBuffer(config, mma=head_mma, dram=self.dram_content,
                                   scheduler=self.scheduler,
                                   block_source=self._fetch_block,
                                   bypass_source=self._tail_bypass,
                                   sram_capacity=head_capacity)

        self._block_locations: Dict[int, Deque[Tuple[int, int]]] = {
            q: deque() for q in range(num_logical)}
        self._physical_write_count: Dict[int, int] = {}
        self._group_occupancy: List[int] = [0] * self.mapping.num_groups
        self._arrival_seqno: Dict[int, int] = {q: 0 for q in range(num_logical)}
        self._outstanding_requests: Dict[int, int] = {q: 0 for q in range(num_logical)}
        self._dropped_cells = 0
        self._slot = 0

    # ------------------------------------------------------------------ #
    # Admissibility helpers
    # ------------------------------------------------------------------ #
    def backlog(self, queue: int) -> int:
        """Cells of ``queue`` in the buffer and not yet promised to the arbiter."""
        return self._arrival_seqno[queue] - self._outstanding_requests[queue]

    def can_request(self, queue: int) -> bool:
        return self.backlog(queue) > 0

    @property
    def dropped_cells(self) -> int:
        """Cells lost because their eviction block found no DRAM room (only
        possible when groups have finite capacity and renaming is disabled or
        exhausted)."""
        return self._dropped_cells

    # ------------------------------------------------------------------ #
    # Per-slot operation
    # ------------------------------------------------------------------ #
    @property
    def slot(self) -> int:
        return self._slot

    def step(self,
             arrival: Optional[int] = None,
             request: Optional[int] = None) -> Optional[Cell]:
        """Advance one slot with at most one arrival and one request."""
        if request is not None and not self.can_request(request):
            raise ValueError(
                f"inadmissible request: queue {request} has no unpromised cells")

        arrival_cell: Optional[Cell] = None
        if arrival is not None:
            seqno = self._arrival_seqno[arrival]
            arrival_cell = Cell(queue=arrival, seqno=seqno, arrival_slot=self._slot)
            self._arrival_seqno[arrival] = seqno + 1
        if request is not None:
            self._outstanding_requests[request] += 1

        if arrival_cell is not None and self._route_direct_to_head(arrival_cell.queue):
            self.head.accept_direct(arrival_cell)
            arrival_cell = None
        self.tail.step(arrival_cell)
        served = self.head.step(request)
        self._slot += 1
        return served

    def _route_direct_to_head(self, queue: int) -> bool:
        """Arrival cut-through: a cell goes straight to the head cache when
        its queue holds nothing in the tail SRAM or DRAM and its head-cache
        share (one block) is not yet full."""
        return (self.dram_content.occupancy(queue) == 0
                and self.tail.occupancy(queue) == 0
                and self.head.sram.occupancy(queue) < self.config.granularity)

    def drain(self) -> List[Cell]:
        """Run idle slots until every request in flight has been served."""
        served: List[Cell] = []
        idle_slots = (self.head.total_request_delay
                      + self.config.dram_access_slots + self.config.granularity)
        for _ in range(idle_slots):
            cell = self.step(None, None)
            if cell is not None:
                served.append(cell)
        return served

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def combined_result(self) -> SimulationResult:
        head, tail = self.head.result, self.tail.result
        return SimulationResult(
            slots_simulated=self._slot,
            cells_in=tail.cells_in,
            cells_out=head.cells_out,
            dram_reads=head.dram_reads,
            dram_writes=tail.dram_writes,
            misses=list(head.misses) + list(tail.misses),
            max_head_sram_occupancy=head.max_head_sram_occupancy,
            max_tail_sram_occupancy=tail.max_tail_sram_occupancy,
            max_request_register_occupancy=self.scheduler.peak_rr_occupancy,
            max_reorder_delay_slots=self.scheduler.max_total_delay_slots,
            bank_conflicts=self.scheduler.bank_conflicts,
        )

    def dram_group_occupancy(self) -> List[int]:
        """Cells stored per bank group — the DRAM-utilisation view used by the
        fragmentation/renaming experiments."""
        if self.renaming is not None:
            return self.renaming.group_occupancy()
        return list(self._group_occupancy)

    def dram_utilisation(self) -> float:
        """Fraction of the total group capacity currently holding cells
        (1.0 means the DRAM is completely usable; low values under load are
        the fragmentation symptom)."""
        if self.group_capacity_cells is None:
            return 0.0
        total_capacity = self.group_capacity_cells * self.mapping.num_groups
        return sum(self.dram_group_occupancy()) / total_capacity

    # ------------------------------------------------------------------ #
    # Write path (tail eviction sink)
    # ------------------------------------------------------------------ #
    def _store_block(self, queue: int, cells: List[Cell]) -> Optional[Tuple[int, int]]:
        location = self._place_block(queue, len(cells))
        if location is None:
            self._dropped_cells += len(cells)
            return None
        self.dram_content.push_many(cells)
        self._block_locations[queue].append(location)
        return location

    def _place_block(self, queue: int, cells: int) -> Optional[Tuple[int, int]]:
        if self.renaming is not None:
            try:
                physical = self.renaming.translate_write(queue, cells)
            except RenamingError:
                return None
        else:
            physical = queue
            group = self.mapping.group_of(physical)
            if (self.group_capacity_cells is not None
                    and self._group_occupancy[group] + cells > self.group_capacity_cells):
                return None
            self._group_occupancy[group] += cells
        index = self._physical_write_count.get(physical, 0)
        self._physical_write_count[physical] = index + 1
        return physical, index

    # ------------------------------------------------------------------ #
    # Read path (head block source)
    # ------------------------------------------------------------------ #
    def _fetch_block(self, queue: int, count: int, slot: int
                     ) -> Tuple[List[Cell], Optional[ReplenishRequest]]:
        if self.dram_content.occupancy(queue) > 0:
            cells = self.dram_content.pop_block(queue, count)
            physical, block_index = self._block_locations[queue].popleft()
            if self.renaming is not None:
                self.renaming.translate_read(queue, len(cells))
            else:
                group = self.mapping.group_of(physical)
                self._group_occupancy[group] -= len(cells)
            request = ReplenishRequest(queue=physical,
                                       direction=TransferDirection.READ,
                                       cells=len(cells),
                                       issue_slot=slot,
                                       block_index=block_index)
            return cells, request
        # Cut-through: the queue's backlog never reached DRAM.
        return self.tail.pop_direct(queue, count), None

    def _tail_bypass(self, queue: int, expected_seqno: int) -> Optional[Cell]:
        """Serve a due request straight from the tail SRAM when the in-order
        cell never left it (short-queue cut-through)."""
        cell = self.tail.peek_direct(queue)
        if cell is None or cell.seqno != expected_seqno:
            return None
        popped = self.tail.pop_direct(queue, 1)
        return popped[0] if popped else None
