"""Slot-accurate simulator of the CFDS head subsystem (Section 5).

Compared to the RADS head (:mod:`repro.rads.head_buffer`), three things
change:

* the MMA runs every ``b`` slots and transfers blocks of ``b`` cells — it
  behaves exactly as the RADS MMA would with granularity ``b``;
* its replenishment requests are not sent straight to the DRAM: they go
  through the DRAM Scheduler Subsystem, which may delay and reorder them to
  keep every bank conflict-free (the physical access still takes ``B`` slots);
* requests leaving the lookahead pass through an additional *latency register*
  before being served, absorbing the worst-case reordering delay so the
  arbiter still sees exact in-order delivery.

A miss (a request emerging from the latency register whose cell is not
resident, or whose queue's next-in-order cell has not arrived yet) falsifies
the zero-miss guarantee and is either raised or recorded depending on
``config.strict``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import CFDSConfig
from repro.core.latency_register import LatencyRegister
from repro.core.scheduler import DRAMSchedulerSubsystem
from repro.dram.store import DRAMQueueStore
from repro.errors import CacheMissError
from repro.mma.base import HeadMMA
from repro.mma.ecqf import ECQF
from repro.mma.occupancy import OccupancyCounters
from repro.mma.shift_register import ShiftRegister
from repro.sram.cell_store import SharedSRAM
from repro.types import Cell, MissRecord, ReplenishRequest, SimulationResult, TransferDirection

#: A block source produces the next block of a queue: given
#: ``(queue, count, slot)`` it returns the cells plus the READ request to
#: schedule on the DRAM, or ``(cells, None)`` when the cells did not need a
#: DRAM access (the cut-through path of the full buffer).  The default source
#: pops from the head buffer's own DRAM store and assigns block ordinals with
#: a per-queue fetch counter — the static assignment of Section 5; the full
#: buffer overrides it to follow the renaming table.
BlockSource = Callable[[int, int, int], Tuple[List[Cell], Optional[ReplenishRequest]]]


class CFDSHeadBuffer:
    """Head-side CFDS simulator (h-SRAM + h-MMA + DSS + latency register)."""

    def __init__(self,
                 config: CFDSConfig,
                 mma: Optional[HeadMMA] = None,
                 dram: Optional[DRAMQueueStore] = None,
                 scheduler: Optional[DRAMSchedulerSubsystem] = None,
                 block_source: Optional[BlockSource] = None,
                 bypass_source=None,
                 sram_capacity: Optional[int] = None) -> None:
        self.config = config
        self.mma = mma if mma is not None else ECQF()
        if dram is None:
            dram = DRAMQueueStore(config.num_queues)
            dram.mark_backlogged(range(config.num_queues))
        self.dram = dram
        self.bypass_source = bypass_source
        self.bypass_serves = 0
        self.scheduler = scheduler if scheduler is not None else DRAMSchedulerSubsystem(config)
        if sram_capacity is None:
            sram_capacity = config.effective_head_sram_cells
        self.sram = SharedSRAM(config.num_queues,
                               capacity_cells=sram_capacity if config.strict else None)
        self.counters = OccupancyCounters(config.num_queues)
        self.lookahead: ShiftRegister[int] = ShiftRegister(config.effective_lookahead)
        self.latency = LatencyRegister(config.effective_latency)
        self._fetch_counter: Dict[int, int] = {q: 0 for q in range(config.num_queues)}
        self._block_source = block_source if block_source is not None else self._default_source
        self._delivered: Dict[int, int] = {q: 0 for q in range(config.num_queues)}
        self._slot = 0
        self.result = SimulationResult()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def slot(self) -> int:
        return self._slot

    @property
    def total_request_delay(self) -> int:
        """Total slots between a request entering the buffer and its cell
        being granted: lookahead plus latency register."""
        return self.config.effective_lookahead + self.config.effective_latency

    def step(self, request: Optional[int] = None) -> Optional[Cell]:
        """Advance one slot; return the cell granted to the arbiter, if any."""
        if request is not None and not 0 <= request < self.config.num_queues:
            raise ValueError(f"request for unknown queue {request}")
        slot = self._slot

        # 1. The new request enters the lookahead; the oldest lookahead entry
        #    moves into the latency register and the oldest latency entry
        #    becomes due for service this slot (same phasing argument as the
        #    RADS head buffer: an MMA decision at slot t must already see the
        #    request issued at slot t).
        leaving_lookahead = self.lookahead.shift(request)
        due = self.latency.shift(leaving_lookahead)
        if due is not None:
            # The occupancy counter is debited when the request is finally
            # granted; until then the request stays visible to the MMA through
            # the latency-register part of its (extended) lookahead.
            self.counters.consume(due)

        # 2. MMA decision (granularity-b period).  Per Section 5.4 the latency
        #    register is "added to the lookahead of the MMA": the MMA reasons
        #    over every request not yet served, in service order.
        if slot % self.config.granularity == 0:
            self._run_mma(slot)

        # 3. DRAM scheduler: collect finished accesses, issue one new access.
        for transfer in self.scheduler.tick(slot):
            if transfer.request.direction is TransferDirection.READ and transfer.payload:
                self.sram.insert_block(transfer.payload)

        # 4. The request leaving the latency register is served.
        served = self._serve(due, slot)

        self._slot += 1
        self._update_stats()
        return served

    def accept_direct(self, cell: Cell) -> None:
        """Insert a cell straight into the head SRAM (arrival cut-through for
        queues whose backlog lives entirely on-chip); credits the occupancy
        counter so the MMA does not re-fetch the cell."""
        self.sram.insert(cell)
        self.counters.add(cell.queue, 1)

    def run(self, requests, max_slots: Optional[int] = None) -> SimulationResult:
        """Feed an iterable of per-slot requests, then drain the pipeline."""
        count = 0
        for request in requests:
            self.step(request)
            count += 1
            if max_slots is not None and count >= max_slots:
                break
        for _ in range(self.total_request_delay + self.config.dram_access_slots):
            self.step(None)
        return self.result

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _default_source(self, queue: int, count: int, slot: int
                        ) -> Tuple[List[Cell], Optional[ReplenishRequest]]:
        cells = self.dram.pop_block(queue, count)
        if not cells:
            return [], None
        index = self._fetch_counter[queue]
        self._fetch_counter[queue] = index + 1
        request = ReplenishRequest(queue=queue,
                                   direction=TransferDirection.READ,
                                   cells=len(cells),
                                   issue_slot=slot,
                                   block_index=index)
        return cells, request

    def _run_mma(self, slot: int) -> None:
        # The MMA's effective lookahead is the latency register followed by
        # the lookahead register: every promised-but-unserved request, in the
        # order it will be served.
        pending_view = self.latency.contents() + self.lookahead.contents()
        selection = self.mma.select(self.counters.snapshot(), pending_view)
        if selection is None:
            return
        cells, request = self._block_source(selection, self.config.granularity, slot)
        if not cells:
            return
        self.counters.add(selection, len(cells))
        if request is None:
            # Cut-through: the cells never went to DRAM, they are available to
            # the head SRAM immediately.
            self.sram.insert_block(cells)
            return
        self.scheduler.submit(request, payload=cells)
        self.result.dram_reads += 1

    def _serve(self, due: Optional[int], slot: int) -> Optional[Cell]:
        if due is None:
            return None
        expected = self._delivered[due]
        cell = self.sram.peek_next(due)
        if cell is not None and cell.seqno == expected:
            self.sram.pop_next(due)
        else:
            cell = self._bypass(due, expected)
            if cell is None:
                self.result.misses.append(MissRecord(queue=due, slot=slot))
                if self.config.strict:
                    raise CacheMissError(due, slot)
                return None
        self._delivered[due] = expected + 1
        self.result.cells_out += 1
        return cell

    def _bypass(self, queue: int, expected_seqno: int) -> Optional[Cell]:
        """Cut-through service from the tail SRAM for cells that never went to
        DRAM (see :class:`repro.rads.head_buffer.RADSHeadBuffer`)."""
        if self.bypass_source is None:
            return None
        cell = self.bypass_source(queue, expected_seqno)
        if cell is None:
            return None
        if cell.seqno != expected_seqno:
            raise ValueError(
                f"bypass source returned out-of-order cell for queue {queue}: "
                f"expected seqno {expected_seqno}, got {cell.seqno}")
        self.bypass_serves += 1
        return cell

    def _update_stats(self) -> None:
        self.result.slots_simulated = self._slot
        self.result.max_head_sram_occupancy = max(
            self.result.max_head_sram_occupancy, self.sram.occupancy())
        self.result.max_request_register_occupancy = self.scheduler.peak_rr_occupancy
        self.result.max_reorder_delay_slots = self.scheduler.max_total_delay_slots
        self.result.bank_conflicts = self.scheduler.bank_conflicts
