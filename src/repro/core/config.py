"""Configuration object for CFDS buffers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import (
    DEFAULT_DRAM_RANDOM_ACCESS_NS,
    OC_LINE_RATES_BPS,
    PAPER_GRANULARITY,
    PAPER_NUM_BANKS,
    PAPER_QUEUES,
    rads_granularity,
)
from repro.errors import ConfigurationError
from repro.core import sizing
from repro.rads.sizing import ecqf_safe_lookahead


@dataclass(frozen=True)
class CFDSConfig:
    """Static parameters of a CFDS packet buffer.

    Attributes:
        num_queues: number of physical queues ``Q`` the MMA and the DRAM
            scheduler manage (after renaming oversubscription, if used).
        dram_access_slots: DRAM random access time in slots — the RADS
            granularity ``B``.
        granularity: CFDS transfer granularity ``b`` (cells per DRAM access);
            must divide ``B``.
        num_banks: number of DRAM banks ``M``; must be a multiple of ``B/b``.
        dram_random_access_slots: physical random access time of one bank, in
            slots.  The default is ``B/2``: the buffer must read *and* write
            one cell per slot (bandwidth is twice the line rate), so ``B`` is
            chosen as ``2 x T_RC / slot`` — one read batch and one write batch
            of ``B`` cells each fit in every ``B``-slot window.  Override for
            sensitivity studies with slower or faster parts.
        lookahead: MMA lookahead length in slots (default: ECQF maximum for
            granularity ``b``).
        latency: latency-register length in slots (default: equation 3).
        rr_capacity: Requests Register capacity (default: the Table-2 hardware
            size, i.e. the analytical bound rounded to a power of two).
        head_sram_cells / tail_sram_cells: SRAM capacities (defaults from
            equation 4 and the tail bound).
        account_writes: include the write stream (factor 2Q) in the sizing
            formulas, as the paper does for the full buffer; head-side-only
            studies may set this to False.
        dram_cells: optional DRAM capacity in cells.
        strict: raise on misses/overflows/conflicts (True) or record them.
    """

    num_queues: int
    dram_access_slots: int
    granularity: int
    num_banks: int = PAPER_NUM_BANKS
    dram_random_access_slots: Optional[int] = None
    lookahead: Optional[int] = None
    latency: Optional[int] = None
    rr_capacity: Optional[int] = None
    head_sram_cells: Optional[int] = None
    tail_sram_cells: Optional[int] = None
    account_writes: bool = True
    dram_cells: Optional[int] = None
    strict: bool = True

    def __post_init__(self) -> None:
        if self.num_queues <= 0:
            raise ConfigurationError("num_queues must be positive")
        if self.granularity <= 0 or self.dram_access_slots <= 0:
            raise ConfigurationError("granularity and dram_access_slots must be positive")
        if self.dram_access_slots % self.granularity != 0:
            raise ConfigurationError(
                f"B ({self.dram_access_slots}) must be a multiple of b ({self.granularity})")
        per_group = self.dram_access_slots // self.granularity
        if self.num_banks % per_group != 0:
            raise ConfigurationError(
                f"M ({self.num_banks}) must be a multiple of B/b ({per_group})")
        if self.lookahead is not None and self.lookahead < 1:
            raise ConfigurationError("lookahead must be at least 1 slot")
        if self.latency is not None and self.latency < 0:
            raise ConfigurationError("latency must be non-negative")
        if self.dram_random_access_slots is not None:
            if not 1 <= self.dram_random_access_slots <= self.dram_access_slots:
                raise ConfigurationError(
                    "dram_random_access_slots must be between 1 and B "
                    f"({self.dram_access_slots}), got {self.dram_random_access_slots}")

    # ------------------------------------------------------------------ #
    # Derived values (equations 1-4 with this configuration's parameters)
    # ------------------------------------------------------------------ #
    @property
    def effective_dram_random_access_slots(self) -> int:
        """Physical bank busy time in slots (defaults to ``B/2``; see class
        docstring)."""
        if self.dram_random_access_slots is not None:
            return self.dram_random_access_slots
        return max(self.dram_access_slots // 2, 1)

    @property
    def banks_per_group(self) -> int:
        return sizing.banks_per_group(self.dram_access_slots, self.granularity)

    @property
    def num_groups(self) -> int:
        return sizing.num_groups(self.num_banks, self.dram_access_slots, self.granularity)

    @property
    def effective_lookahead(self) -> int:
        """ECQF lookahead for granularity ``b`` including the decision-phase
        margin (see :func:`repro.rads.sizing.ecqf_safe_lookahead`)."""
        if self.lookahead is not None:
            return self.lookahead
        return ecqf_safe_lookahead(self.num_queues, self.granularity)

    @property
    def effective_latency(self) -> int:
        if self.latency is not None:
            return self.latency
        return sizing.latency_slots(self.num_queues, self.num_banks,
                                    self.dram_access_slots, self.granularity,
                                    account_writes=self.account_writes)

    @property
    def effective_rr_capacity(self) -> Optional[int]:
        if self.rr_capacity is not None:
            return self.rr_capacity
        hardware = sizing.request_register_hardware_size(
            self.num_queues, self.num_banks, self.dram_access_slots,
            self.granularity, account_writes=self.account_writes)
        # A zero-sized RR only occurs for b == B (no reordering); give it one
        # slot so the degenerate configuration still flows through the DSS.
        return max(hardware, 1)

    @property
    def effective_head_sram_cells(self) -> int:
        """Default head SRAM capacity enforced by the simulator.

        The analytical requirement is equation (4); as for RADS, the dynamic
        prefetcher is additionally allowed to hold what it fetched within the
        last lookahead window (plus one in-flight block) so that arbitrary
        request patterns — not just the decision-aligned worst case — stay
        inside the enforced capacity.  Pass ``head_sram_cells`` to override.
        """
        if self.head_sram_cells is not None:
            return self.head_sram_cells
        analytical = sizing.cfds_sram_size(
            self.effective_lookahead, self.num_queues, self.num_banks,
            self.dram_access_slots, self.granularity,
            account_writes=self.account_writes)
        return analytical + self.effective_lookahead + self.granularity

    @property
    def effective_tail_sram_cells(self) -> int:
        if self.tail_sram_cells is not None:
            return self.tail_sram_cells
        return self.num_queues * (self.granularity - 1) + self.granularity

    @property
    def orr_size(self) -> int:
        """Ongoing Requests Register length: the number of issue periods a
        bank remains busy after the period it was issued in.  Uses the
        physical bank busy time (the paper's ``B/b - 1`` corresponds to the
        conservative assumption that a bank is busy for the whole ``B``-slot
        window; see :data:`dram_random_access_slots`)."""
        periods = -(-self.effective_dram_random_access_slots // self.granularity)
        return max(periods - 1, 0)

    # ------------------------------------------------------------------ #
    @classmethod
    def for_line_rate(cls,
                      oc_name: str,
                      granularity: int,
                      num_queues: Optional[int] = None,
                      num_banks: int = PAPER_NUM_BANKS,
                      dram_random_access_ns: float = DEFAULT_DRAM_RANDOM_ACCESS_NS,
                      **kwargs) -> "CFDSConfig":
        """Build the configuration the paper evaluates for an OC designation
        and a chosen CFDS granularity ``b``."""
        if oc_name not in OC_LINE_RATES_BPS:
            raise ConfigurationError(
                f"unknown line rate designation {oc_name!r}; "
                f"expected one of {sorted(OC_LINE_RATES_BPS)}")
        rate = OC_LINE_RATES_BPS[oc_name]
        queues = num_queues if num_queues is not None else PAPER_QUEUES.get(oc_name, 128)
        if oc_name in PAPER_GRANULARITY and dram_random_access_ns == DEFAULT_DRAM_RANDOM_ACCESS_NS:
            access_slots = PAPER_GRANULARITY[oc_name]
        else:
            access_slots = rads_granularity(rate, dram_random_access_ns)
        return cls(num_queues=queues, dram_access_slots=access_slots,
                   granularity=granularity, num_banks=num_banks, **kwargs)
