"""The Ongoing Requests Register (ORR).

The ORR remembers which banks have an access in flight: it is a shift
register of ``B/b - 1`` positions holding the bank identifiers of the most
recently issued accesses (one new access can be issued per issue period and a
bank stays busy for ``B/b`` periods, so an access remains "ongoing" for the
``B/b - 1`` periods after the one it was issued in).  Banks listed in the ORR
are *locked*: the DRAM Scheduler Algorithm never selects a request that
targets one of them.

In this reproduction the ORR is the authoritative lock set the scheduler uses;
the tests additionally verify that its contents always agree with the busy
state of the banked DRAM timing model.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set, Tuple


class OngoingRequestsRegister:
    """Shift register of the banks currently being accessed.

    Each position holds the banks issued in one issue period (one bank per
    position in the head-side configuration; up to two — one read and one
    write — in the full buffer, whose DRAM datapath runs at twice the line
    rate).
    """

    def __init__(self, length: int) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        self.length = length
        self._slots: Deque[Tuple[int, ...]] = deque([()] * length, maxlen=length or None)

    def advance(self, issued_banks: Optional[Iterable[int]] = None) -> Tuple[int, ...]:
        """Record the banks issued this period (possibly none) and drop the
        oldest entry, whose banks are no longer locked."""
        banks: Tuple[int, ...] = tuple(issued_banks) if issued_banks else ()
        if self.length == 0:
            return banks
        oldest = self._slots[0]
        self._slots.popleft()
        self._slots.append(banks)
        return oldest

    def locked_banks(self) -> Set[int]:
        """The set of banks that must not be issued this period."""
        locked: Set[int] = set()
        for banks in self._slots:
            locked.update(banks)
        return locked

    def contents(self) -> List[Tuple[int, ...]]:
        """Snapshot, oldest first."""
        return list(self._slots)

    def __len__(self) -> int:
        return self.length

    def __contains__(self, bank: int) -> bool:
        return bank in self.locked_banks()
