"""The DRAM Scheduler Subsystem (DSS) — Section 5.3 of the paper.

The DSS sits between the MMA subsystem and the banked DRAM.  The MMA issues
one block request per issue period (every ``b`` slots) under the illusion that
the DRAM access time is ``b`` slots; the DSS hides the fact that a bank is
actually busy for ``B`` slots by:

* queueing requests in the :class:`~repro.core.request_register.RequestRegister`;
* tracking in-flight accesses in the
  :class:`~repro.core.ongoing_register.OngoingRequestsRegister`;
* every issue period, running the DRAM Scheduler Algorithm (DSA): issue the
  *oldest* request whose target bank is not locked.

Because each queue's consecutive blocks live on consecutive banks of its
group (block-cyclic interleaving), a conflict-free candidate always exists
once the Requests Register is dimensioned per equation (1); the simulator
nevertheless verifies this at run time against the strict banked-DRAM timing
model, which raises on any true bank conflict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CFDSConfig
from repro.core.mapping import CFDSBankMapping
from repro.core.ongoing_register import OngoingRequestsRegister
from repro.core.request_register import FIFORequestRegister, RequestRegister, RREntry
from repro.dram.dram import BankedDRAM
from repro.dram.timing import DRAMTiming
from repro.types import ReplenishRequest, TransferJob


@dataclass
class CompletedTransfer:
    """A finished DRAM access handed back to the caller."""

    request: ReplenishRequest
    payload: object
    bank: int
    issue_slot: int
    finish_slot: int

    @property
    def total_delay_slots(self) -> int:
        """Delay from the MMA issuing the request to the data being ready."""
        return self.finish_slot - self.request.issue_slot


class DRAMSchedulerSubsystem:
    """Requests Register + Ongoing Requests Register + DSA + banked DRAM.

    Args:
        config: the CFDS parameters.
        mapping: bank mapping (defaults to the static assignment over
            ``config.num_queues`` physical queues).
        issues_per_period: how many accesses the DSA may start per issue
            period.  The head-side analysis uses 1 (one read stream); the full
            packet buffer uses 2 because its DRAM datapath must carry one read
            and one write per period (the buffer bandwidth is twice the line
            rate, which is also why the paper's sizing formulas use ``2Q``).
        dsa_policy: "oldest-ready" (the paper's wake-up/select issue queue) or
            "fifo" (the no-reordering baseline used by the ablation
            benchmark, which stalls whenever the head request's bank is busy).
    """

    def __init__(self, config: CFDSConfig,
                 mapping: Optional[CFDSBankMapping] = None,
                 issues_per_period: int = 1,
                 dsa_policy: str = "oldest-ready") -> None:
        if issues_per_period < 1:
            raise ValueError("issues_per_period must be at least 1")
        if dsa_policy not in ("oldest-ready", "fifo"):
            raise ValueError(f"unknown DSA policy {dsa_policy!r}")
        self.issues_per_period = issues_per_period
        self.dsa_policy = dsa_policy
        self.config = config
        self.mapping = mapping if mapping is not None else CFDSBankMapping(
            num_queues=config.num_queues,
            num_banks=config.num_banks,
            dram_access_slots=config.dram_access_slots,
            granularity=config.granularity)
        # The Requests Register capacity covers requests *waiting* for a
        # locked bank (Table 2).  Requests submitted in the current issue
        # period flow straight through the wake-up/select logic, but this
        # model buffers them momentarily, so allow that much headroom on top.
        rr_capacity = None
        if config.strict:
            rr_capacity = config.effective_rr_capacity + issues_per_period
        register_class = RequestRegister if dsa_policy == "oldest-ready" else FIFORequestRegister
        self.request_register = register_class(capacity=rr_capacity)
        self.ongoing = OngoingRequestsRegister(config.orr_size)
        timing = DRAMTiming(random_access_slots=config.effective_dram_random_access_slots,
                            num_banks=config.num_banks)
        self.dram = BankedDRAM(timing, strict=config.strict)
        self._in_flight: List[Tuple[TransferJob, object]] = []
        self._max_total_delay = 0
        self._issue_opportunities = 0
        self._stalled_periods = 0

    # ------------------------------------------------------------------ #
    # MMA side
    # ------------------------------------------------------------------ #
    def submit(self, request: ReplenishRequest, payload: object = None) -> RREntry:
        """Queue a block request for scheduling.  ``payload`` travels with the
        request and is returned on completion (the simulators use it to carry
        the cells being transferred)."""
        address = self.mapping.bank_of(request.queue, request.block_index)
        return self.request_register.push(request, address.bank,
                                          request.issue_slot, payload=payload)

    # ------------------------------------------------------------------ #
    # Per-slot operation
    # ------------------------------------------------------------------ #
    def tick(self, slot: int) -> List[CompletedTransfer]:
        """Advance one slot: collect completed accesses and, on issue-period
        boundaries, let the DSA start one new access."""
        completed = self._collect_completed(slot)
        if slot % self.config.granularity == 0:
            self._issue(slot)
        return completed

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def max_total_delay_slots(self) -> int:
        """Largest observed request-issue to data-ready delay."""
        return self._max_total_delay

    @property
    def peak_rr_occupancy(self) -> int:
        return self.request_register.peak_occupancy

    @property
    def max_skips_observed(self) -> int:
        return self.request_register.max_skips_observed

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    @property
    def pending_count(self) -> int:
        return self.request_register.occupancy()

    @property
    def stall_fraction(self) -> float:
        """Fraction of issue opportunities in which nothing could be issued
        even though requests were pending (should be zero for a correctly
        dimensioned CFDS; non-zero values show up in the ablations that break
        the interleaving or the DSA)."""
        if self._issue_opportunities == 0:
            return 0.0
        return self._stalled_periods / self._issue_opportunities

    @property
    def bank_conflicts(self) -> int:
        return self.dram.total_conflicts

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _collect_completed(self, slot: int) -> List[CompletedTransfer]:
        done: List[CompletedTransfer] = []
        if not self._in_flight:
            return done
        still: List[Tuple[TransferJob, object]] = []
        for job, payload in self._in_flight:
            if job.finish_slot <= slot:
                done.append(CompletedTransfer(
                    request=job.request, payload=payload, bank=job.bank,
                    issue_slot=job.start_slot, finish_slot=job.finish_slot))
                delay = job.finish_slot - job.request.issue_slot
                if delay > self._max_total_delay:
                    self._max_total_delay = delay
            else:
                still.append((job, payload))
        self._in_flight = still
        # Keep the banked-DRAM's own completion list drained as well.
        self.dram.pop_completed(slot)
        return done

    def _issue(self, slot: int) -> None:
        if self.request_register.occupancy() > 0:
            self._issue_opportunities += 1
        locked = self.ongoing.locked_banks()
        issued_banks = []
        for _ in range(self.issues_per_period):
            entry = self.request_register.select(locked | set(issued_banks))
            if entry is None:
                break
            job = self.dram.start_access(entry.request, entry.bank, slot)
            self._in_flight.append((job, entry.payload))
            issued_banks.append(entry.bank)
        if not issued_banks and self.request_register.occupancy() > 0:
            self._stalled_periods += 1
        self.ongoing.advance(issued_banks)
