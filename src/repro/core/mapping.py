"""Block-cyclic bank/group interleaving (Figure 6 of the paper).

The ``M`` DRAM banks are organised into ``G = M / (B/b)`` groups of ``B/b``
banks.  Each (physical) queue is statically assigned to one group —
``group = queue mod G`` — and its successive blocks of ``b`` cells are placed
on the banks of that group in round-robin order — ``bank-in-group = block
ordinal mod (B/b)``.  Consequently ``B/b`` consecutive accesses to the same
queue always touch ``B/b`` distinct banks, which is what gives the DRAM
scheduler room to find conflict-free work.

The module also implements the flat address encode/decode of Figure 6 (queue
and ordinal fields packed above the ``log2(b x 64)`` zero offset bits), so the
mapping can be exercised exactly as the hardware would compute it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import CELL_SIZE_BYTES, is_power_of_two
from repro.errors import ConfigurationError
from repro.types import BankAddress


@dataclass(frozen=True)
class CFDSBankMapping:
    """Mapping from (queue, block ordinal) to DRAM bank.

    Args:
        num_queues: number of physical queues sharing the DRAM.
        num_banks: total number of DRAM banks ``M``.
        dram_access_slots: the RADS granularity ``B`` (DRAM random access time
            in slots).
        granularity: the CFDS granularity ``b`` (cells per access).
        queue_capacity_blocks: how many blocks of ``b`` cells each queue's
            address range can hold; only needed for the flat address
            encode/decode helpers.
    """

    num_queues: int
    num_banks: int
    dram_access_slots: int
    granularity: int
    queue_capacity_blocks: int = 1 << 20

    def __post_init__(self) -> None:
        if self.num_queues <= 0:
            raise ConfigurationError("num_queues must be positive")
        if self.granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        if self.dram_access_slots % self.granularity != 0:
            raise ConfigurationError(
                f"B ({self.dram_access_slots}) must be a multiple of b ({self.granularity})")
        banks_per_group = self.dram_access_slots // self.granularity
        if self.num_banks % banks_per_group != 0:
            raise ConfigurationError(
                f"M ({self.num_banks}) must be a multiple of B/b ({banks_per_group})")
        if self.queue_capacity_blocks <= 0:
            raise ConfigurationError("queue_capacity_blocks must be positive")

    # ------------------------------------------------------------------ #
    # Structural properties
    # ------------------------------------------------------------------ #
    @property
    def banks_per_group(self) -> int:
        """Number of banks per group, ``B/b``."""
        return self.dram_access_slots // self.granularity

    @property
    def num_groups(self) -> int:
        """Number of groups ``G = M / (B/b)``."""
        return self.num_banks // self.banks_per_group

    @property
    def queues_per_group(self) -> int:
        """Maximum number of queues mapped to one group (ceiling of Q/G)."""
        return -(-self.num_queues // self.num_groups)

    # ------------------------------------------------------------------ #
    # The mapping itself
    # ------------------------------------------------------------------ #
    def group_of(self, queue: int) -> int:
        """Group a queue is statically assigned to (low-order queue bits)."""
        self._check_queue(queue)
        return queue % self.num_groups

    def bank_of(self, queue: int, block_index: int) -> BankAddress:
        """Absolute bank holding block ``block_index`` of ``queue``."""
        self._check_queue(queue)
        if block_index < 0:
            raise ValueError("block_index must be non-negative")
        group = self.group_of(queue)
        bank_in_group = block_index % self.banks_per_group
        return BankAddress(group=group,
                           bank_in_group=bank_in_group,
                           bank=group * self.banks_per_group + bank_in_group)

    # ------------------------------------------------------------------ #
    # Flat address encode/decode (Figure 6)
    # ------------------------------------------------------------------ #
    def encode_address(self, queue: int, block_index: int) -> int:
        """Pack (queue, block ordinal) into a byte address.

        Layout, from the least significant bit upwards: ``log2(b x 64)`` zero
        offset bits, then the block ordinal within the queue, then the queue
        identifier.
        """
        self._check_queue(queue)
        if not 0 <= block_index < self.queue_capacity_blocks:
            raise ValueError(
                f"block_index {block_index} outside queue capacity "
                f"(0..{self.queue_capacity_blocks - 1})")
        offset_bits = (self.granularity * CELL_SIZE_BYTES - 1).bit_length()
        if not is_power_of_two(self.granularity * CELL_SIZE_BYTES):
            raise ConfigurationError("b x 64 bytes must be a power of two to form addresses")
        ordinal_bits = (self.queue_capacity_blocks - 1).bit_length()
        return ((queue << ordinal_bits) | block_index) << offset_bits

    def decode_address(self, address: int) -> BankAddress:
        """Recover the bank of a flat byte address built by :meth:`encode_address`."""
        if address < 0:
            raise ValueError("address must be non-negative")
        offset_bits = (self.granularity * CELL_SIZE_BYTES - 1).bit_length()
        ordinal_bits = (self.queue_capacity_blocks - 1).bit_length()
        block = address >> offset_bits
        block_index = block & ((1 << ordinal_bits) - 1)
        queue = block >> ordinal_bits
        return self.bank_of(queue, block_index)

    def decode_queue_block(self, address: int) -> tuple:
        """Recover (queue, block ordinal) from a flat byte address."""
        if address < 0:
            raise ValueError("address must be non-negative")
        offset_bits = (self.granularity * CELL_SIZE_BYTES - 1).bit_length()
        ordinal_bits = (self.queue_capacity_blocks - 1).bit_length()
        block = address >> offset_bits
        return block >> ordinal_bits, block & ((1 << ordinal_bits) - 1)

    # ------------------------------------------------------------------ #
    def _check_queue(self, queue: int) -> None:
        if not 0 <= queue < self.num_queues:
            raise ValueError(f"queue {queue} out of range (0..{self.num_queues - 1})")
