"""The latency shift register (Section 5.4).

The DRAM Scheduler Subsystem may reorder and delay the MMA's replenishments;
the latency register adds a fixed delay between a request leaving the MMA's
lookahead and the corresponding cell being granted to the arbiter, equal to
the worst-case extra delay a replenishment can suffer.  With that delay in
place, every cell is guaranteed to be resident in the SRAM by the time its
request emerges, so the arbiter still observes exact, in-order delivery.
"""

from __future__ import annotations

from typing import Optional

from repro.mma.shift_register import ShiftRegister


class LatencyRegister(ShiftRegister[int]):
    """A named :class:`~repro.mma.shift_register.ShiftRegister` carrying the
    requests that have left the lookahead but are not yet due for service.

    The only addition over the generic shift register is occupancy-peak
    tracking, which the dimensioning tests use.
    """

    def __init__(self, length: int) -> None:
        super().__init__(length)
        self._peak_occupancy = 0

    def shift(self, item: Optional[int] = None) -> Optional[int]:
        leaving = super().shift(item)
        occupancy = self.count()
        if occupancy > self._peak_occupancy:
            self._peak_occupancy = occupancy
        return leaving

    @property
    def peak_occupancy(self) -> int:
        return self._peak_occupancy
