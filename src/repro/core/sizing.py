"""CFDS dimensioning: equations (1)-(4) of the paper plus Table 2 helpers.

The printed formulas in the proceedings scan are partially illegible, so the
constants used here are reconstructed from (a) the intuition paragraphs the
paper gives below each equation and (b) Table 2, whose ten printed Requests
Register sizes are all reproduced exactly by

    ``R = (kQ / G) * (B/b - 1)``   rounded up to the next power of two,

where ``k`` is 2 when the DRAM Scheduler Subsystem manages both reads and
writes (the paper's final remark in Section 5.3) and 1 for a read-only
(head-side) analysis, and ``G = M / (B/b)`` is the number of bank groups.
The derivation and the verification against Table 2 are documented in
DESIGN.md; the simulator-based property tests check that the measured
Requests-Register occupancy and reordering delay stay within these bounds.
"""

from __future__ import annotations


from repro.constants import CELL_SIZE_BYTES, next_power_of_two, slot_time_ns
from repro.errors import ConfigurationError
from repro.rads.sizing import rads_sram_size


# --------------------------------------------------------------------------- #
# Structure
# --------------------------------------------------------------------------- #
def banks_per_group(dram_access_slots: int, granularity: int) -> int:
    """Banks per group, ``B/b``."""
    _validate_b(dram_access_slots, granularity)
    return dram_access_slots // granularity


def num_groups(num_banks: int, dram_access_slots: int, granularity: int) -> int:
    """Number of bank groups, ``G = M / (B/b)``."""
    per_group = banks_per_group(dram_access_slots, granularity)
    if num_banks % per_group != 0:
        raise ConfigurationError(
            f"M ({num_banks}) must be a multiple of B/b ({per_group})")
    return num_banks // per_group


def queues_per_group(num_queues: int,
                     num_banks: int,
                     dram_access_slots: int,
                     granularity: int,
                     *,
                     account_writes: bool = True) -> int:
    """Queues sharing a group, ``ceil(kQ / G)`` with k=2 when the scheduler
    also carries the write stream."""
    if num_queues <= 0:
        raise ConfigurationError("num_queues must be positive")
    effective = 2 * num_queues if account_writes else num_queues
    groups = num_groups(num_banks, dram_access_slots, granularity)
    return -(-effective // groups)


def orr_size(dram_access_slots: int, granularity: int) -> int:
    """Ongoing Requests Register size: a bank is locked for ``B/b`` issue
    periods, so the last ``B/b - 1`` issued banks must be remembered."""
    return banks_per_group(dram_access_slots, granularity) - 1


# --------------------------------------------------------------------------- #
# Equation (1): Requests Register size
# --------------------------------------------------------------------------- #
def request_register_size(num_queues: int,
                          num_banks: int,
                          dram_access_slots: int,
                          granularity: int,
                          *,
                          account_writes: bool = True) -> int:
    """Analytical Requests Register size (equation 1).

    Intuition from the paper: at most ``kQ/G`` queues share a bank, the next
    access of each queue moves to the next bank of the group, and an access
    occupies its bank for ``B/b`` issue periods — so up to
    ``(kQ/G)(B/b - 1)`` requests can pile up waiting for locked banks.
    """
    qpg = queues_per_group(num_queues, num_banks, dram_access_slots,
                           granularity, account_writes=account_writes)
    per_group = banks_per_group(dram_access_slots, granularity)
    return qpg * (per_group - 1)


def request_register_hardware_size(num_queues: int,
                                   num_banks: int,
                                   dram_access_slots: int,
                                   granularity: int,
                                   *,
                                   account_writes: bool = True) -> int:
    """Requests Register size as a hardware structure (Table 2): the
    analytical size rounded up to the next power of two (zero stays zero)."""
    analytical = request_register_size(num_queues, num_banks, dram_access_slots,
                                       granularity, account_writes=account_writes)
    if analytical == 0:
        return 0
    return next_power_of_two(analytical)


# --------------------------------------------------------------------------- #
# Equation (2): maximum number of skips
# --------------------------------------------------------------------------- #
def max_skips(num_queues: int,
              num_banks: int,
              dram_access_slots: int,
              granularity: int,
              *,
              account_writes: bool = True) -> int:
    """Maximum number of issue opportunities a request can be skipped over
    (equation 2): each of the up to ``kQ/G`` requests headed to the same bank
    that are older than ours keeps that bank locked for ``B/b`` periods,
    costing ``B/b - 1`` lost opportunities each."""
    qpg = queues_per_group(num_queues, num_banks, dram_access_slots,
                           granularity, account_writes=account_writes)
    per_group = banks_per_group(dram_access_slots, granularity)
    return qpg * (per_group - 1)


# --------------------------------------------------------------------------- #
# Equation (3): latency register length
# --------------------------------------------------------------------------- #
def latency_slots(num_queues: int,
                  num_banks: int,
                  dram_access_slots: int,
                  granularity: int,
                  *,
                  account_writes: bool = True) -> int:
    """Length (in slots) of the latency shift register (equation 3).

    A replenishment can be delayed by at most ``R`` issue periods of FIFO
    drain plus ``d_max`` skipped periods (each period is ``b`` slots), and the
    data itself takes ``B`` instead of the ``b`` slots the MMA's illusion
    assumes — all of which the latency register must absorb so the arbiter
    still receives every cell in order.
    """
    rr = request_register_size(num_queues, num_banks, dram_access_slots,
                               granularity, account_writes=account_writes)
    skips = max_skips(num_queues, num_banks, dram_access_slots,
                      granularity, account_writes=account_writes)
    return (rr + skips) * granularity + (dram_access_slots - granularity)


# --------------------------------------------------------------------------- #
# Equation (4): SRAM size
# --------------------------------------------------------------------------- #
def cfds_sram_size(lookahead: int,
                   num_queues: int,
                   num_banks: int,
                   dram_access_slots: int,
                   granularity: int,
                   *,
                   account_writes: bool = True) -> int:
    """Head SRAM size (cells) for CFDS (equation 4): the RADS requirement at
    granularity ``b`` plus the slack needed to hold cells that arrive while
    their requests are still traversing the latency register."""
    base = rads_sram_size(lookahead, num_queues, granularity)
    extra = latency_slots(num_queues, num_banks, dram_access_slots,
                          granularity, account_writes=account_writes)
    return base + extra


def cfds_sram_bytes(lookahead: int,
                    num_queues: int,
                    num_banks: int,
                    dram_access_slots: int,
                    granularity: int,
                    *,
                    account_writes: bool = True) -> int:
    """CFDS head SRAM size in bytes."""
    return cfds_sram_size(lookahead, num_queues, num_banks, dram_access_slots,
                          granularity, account_writes=account_writes) * CELL_SIZE_BYTES


def cfds_total_delay_slots(lookahead: int,
                           num_queues: int,
                           num_banks: int,
                           dram_access_slots: int,
                           granularity: int,
                           *,
                           account_writes: bool = True) -> int:
    """Worst-case delay (slots) between a request entering the MMA subsystem
    and its cell being granted: lookahead plus the latency register.  This is
    the x-axis of Figure 10 for CFDS configurations."""
    return lookahead + latency_slots(num_queues, num_banks, dram_access_slots,
                                     granularity, account_writes=account_writes)


# --------------------------------------------------------------------------- #
# Table 2: time available to schedule one request
# --------------------------------------------------------------------------- #
def scheduling_time_ns(granularity: int, line_rate_bps: float) -> float:
    """Time available for the DSA to pick one request: one issue period, i.e.
    ``b`` slots at the line rate (Table 2)."""
    if granularity <= 0:
        raise ConfigurationError("granularity must be positive")
    return granularity * slot_time_ns(line_rate_bps)


# --------------------------------------------------------------------------- #
def _validate_b(dram_access_slots: int, granularity: int) -> None:
    if dram_access_slots <= 0 or granularity <= 0:
        raise ConfigurationError("B and b must be positive")
    if dram_access_slots % granularity != 0:
        raise ConfigurationError(
            f"B ({dram_access_slots}) must be a multiple of b ({granularity})")
