"""CFDS — the Conflict-Free DRAM System (the paper's contribution, Section 5).

CFDS keeps the SRAM/MMA structure of RADS but exploits DRAM banking to cut
the transfer granularity from ``B`` to ``b`` cells, shrinking the SRAMs by
roughly ``B/b`` while preserving the worst-case (zero-miss) guarantee.  The
pieces, all in this package:

* :mod:`repro.core.mapping` — the block-cyclic bank/group interleaving of
  Figure 6;
* :mod:`repro.core.request_register` / :mod:`repro.core.ongoing_register` /
  :mod:`repro.core.scheduler` — the DRAM Scheduler Subsystem (DSS): an
  issue-queue-like mechanism that reorders the MMA's requests so no bank is
  ever accessed twice within its random access time;
* :mod:`repro.core.latency_register` — the extra delay that re-establishes
  exact in-order delivery to the arbiter despite the reordering;
* :mod:`repro.core.renaming` — the logical-to-physical queue renaming that
  avoids DRAM fragmentation (Section 6);
* :mod:`repro.core.sizing` — equations (1)-(4): Requests Register size,
  maximum reordering delay, latency register length and SRAM size;
* :mod:`repro.core.head_buffer`, :mod:`repro.core.tail_buffer`,
  :mod:`repro.core.buffer` — slot-accurate simulators of the head subsystem,
  tail subsystem and the complete VOQ packet buffer.
"""

from repro.core.config import CFDSConfig
from repro.core.mapping import CFDSBankMapping
from repro.core.request_register import RequestRegister
from repro.core.ongoing_register import OngoingRequestsRegister
from repro.core.scheduler import DRAMSchedulerSubsystem
from repro.core.latency_register import LatencyRegister
from repro.core.renaming import RenamingTable
from repro.core.head_buffer import CFDSHeadBuffer
from repro.core.tail_buffer import CFDSTailBuffer
from repro.core.buffer import CFDSPacketBuffer
from repro.core.sizing import (
    banks_per_group,
    num_groups,
    queues_per_group,
    orr_size,
    request_register_size,
    request_register_hardware_size,
    max_skips,
    latency_slots,
    cfds_sram_size,
    cfds_total_delay_slots,
    scheduling_time_ns,
)

__all__ = [
    "CFDSConfig",
    "CFDSBankMapping",
    "RequestRegister",
    "OngoingRequestsRegister",
    "DRAMSchedulerSubsystem",
    "LatencyRegister",
    "RenamingTable",
    "CFDSHeadBuffer",
    "CFDSTailBuffer",
    "CFDSPacketBuffer",
    "banks_per_group",
    "num_groups",
    "queues_per_group",
    "orr_size",
    "request_register_size",
    "request_register_hardware_size",
    "max_skips",
    "latency_slots",
    "cfds_sram_size",
    "cfds_total_delay_slots",
    "scheduling_time_ns",
]
