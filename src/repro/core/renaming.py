"""Queue renaming — the DRAM anti-fragmentation mechanism (Section 6).

CFDS statically assigns each *physical* queue to one bank group, so a queue
can only ever use ``1/G`` of the DRAM.  To let any logical queue grow into the
whole DRAM, the paper renames: a logical queue ``Q_i`` is associated with a
*sequence* of physical queues ``q_p`` held in a circular renaming register.
New cells are written through the tail entry of the register (opening a new
physical queue — in a different group — whenever the current group runs out of
room), and reads are translated through the head entry; each entry carries a
counter of the cells it still holds, so FIFO order across physical queues is
preserved.

To guarantee that ``Q`` logical queues can always be active, the number of
physical queues is oversubscribed to ``P = K x Q`` (the paper's
"oversubscribe the number of physical queues").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set

from repro.errors import RenamingError


@dataclass
class ReadTranslation:
    """Result of translating a read through a renaming register."""

    #: (physical queue, cells taken) pairs, in FIFO order.
    takes: List[tuple]
    #: Physical queues that drained completely and can be reused.
    released: List[int]

    @property
    def primary_physical_queue(self) -> int:
        """The physical queue the first cell of the read comes from."""
        return self.takes[0][0]


@dataclass
class RenamingEntry:
    """One element of a circular renaming register: a physical queue name and
    the number of cells of the logical queue currently stored under it."""

    physical_queue: int
    count: int = 0


class RenamingRegister:
    """The circular register RN_i of one logical queue.

    The *tail* entry is where newly arriving cells are recorded; the *head*
    entry is where scheduler reads are translated.  Entries drain strictly in
    order, which is what preserves the logical queue's FIFO semantics.
    """

    def __init__(self, logical_queue: int) -> None:
        self.logical_queue = logical_queue
        self._entries: Deque[RenamingEntry] = deque()

    # -- write path ----------------------------------------------------- #
    def tail_entry(self) -> Optional[RenamingEntry]:
        return self._entries[-1] if self._entries else None

    def open_entry(self, physical_queue: int) -> RenamingEntry:
        entry = RenamingEntry(physical_queue=physical_queue, count=0)
        self._entries.append(entry)
        return entry

    def record_write(self, cells: int) -> None:
        if not self._entries:
            raise RenamingError(
                f"logical queue {self.logical_queue}: write recorded with no open entry")
        self._entries[-1].count += cells

    # -- read path ------------------------------------------------------ #
    def head_entry(self) -> Optional[RenamingEntry]:
        return self._entries[0] if self._entries else None

    def record_read(self, cells: int) -> "ReadTranslation":
        """Debit ``cells`` from the head entry (and successors if the head
        drains); return which physical queues the cells came from and which
        physical queues became empty and can be released to the pool."""
        released: List[int] = []
        takes: List[tuple] = []
        remaining = cells
        while remaining > 0:
            if not self._entries:
                raise RenamingError(
                    f"logical queue {self.logical_queue}: read of {cells} cells "
                    "exceeds the cells recorded in the renaming register")
            head = self._entries[0]
            take = min(head.count, remaining)
            if take > 0:
                takes.append((head.physical_queue, take))
            head.count -= take
            remaining -= take
            if head.count == 0:
                # Drained entries are always retired; if it was the last entry
                # the logical queue is simply empty in DRAM until new cells
                # arrive and a fresh physical queue is opened.
                self._entries.popleft()
                released.append(head.physical_queue)
        return ReadTranslation(takes=takes, released=released)

    # -- introspection --------------------------------------------------- #
    def entries(self) -> List[RenamingEntry]:
        return list(self._entries)

    def total_cells(self) -> int:
        return sum(entry.count for entry in self._entries)

    def physical_queues(self) -> List[int]:
        return [entry.physical_queue for entry in self._entries]

    def __len__(self) -> int:
        return len(self._entries)


class RenamingTable:
    """All renaming registers plus the pool of free physical queues.

    Args:
        num_logical: number of logical (VOQ) queues.
        num_physical: number of physical queue names available (``K x Q``).
        num_groups: number of DRAM bank groups; physical queue ``p`` belongs
            to group ``p mod num_groups`` (matching
            :class:`~repro.core.mapping.CFDSBankMapping`).
        group_capacity_cells: DRAM capacity of one group, in cells; ``None``
            disables capacity-driven spilling (a new physical queue is then
            only opened when a logical queue first becomes active).
    """

    def __init__(self,
                 num_logical: int,
                 num_physical: int,
                 num_groups: int,
                 group_capacity_cells: Optional[int] = None) -> None:
        if num_logical <= 0 or num_physical <= 0 or num_groups <= 0:
            raise ValueError("num_logical, num_physical and num_groups must be positive")
        if num_physical < num_logical:
            raise RenamingError(
                "the physical queue space must be at least as large as the logical one "
                f"(got {num_physical} physical for {num_logical} logical)")
        self.num_logical = num_logical
        self.num_physical = num_physical
        self.num_groups = num_groups
        self.group_capacity_cells = group_capacity_cells
        self._registers: Dict[int, RenamingRegister] = {
            q: RenamingRegister(q) for q in range(num_logical)}
        self._free_by_group: Dict[int, List[int]] = {g: [] for g in range(num_groups)}
        for p in range(num_physical - 1, -1, -1):
            self._free_by_group[p % num_groups].append(p)
        self._group_occupancy: List[int] = [0] * num_groups
        self._in_use: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def translate_write(self, logical_queue: int, cells: int) -> int:
        """Return the physical queue the next ``cells`` of ``logical_queue``
        must be written to, opening a new physical queue if needed."""
        self._check_logical(logical_queue)
        if cells <= 0:
            raise ValueError("cells must be positive")
        register = self._registers[logical_queue]
        entry = register.tail_entry()
        if entry is None or not self._group_has_room(entry.physical_queue, cells):
            physical = self._allocate_physical(cells)
            register.open_entry(physical)
        register.record_write(cells)
        physical = register.tail_entry().physical_queue
        self._group_occupancy[physical % self.num_groups] += cells
        return physical

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def translate_read(self, logical_queue: int, cells: int = 1) -> int:
        """Return the physical queue the next ``cells`` of ``logical_queue``
        must be read from, releasing drained physical queues to the pool."""
        self._check_logical(logical_queue)
        if cells <= 0:
            raise ValueError("cells must be positive")
        register = self._registers[logical_queue]
        head = register.head_entry()
        if head is None:
            raise RenamingError(
                f"logical queue {logical_queue} has no cells recorded in DRAM")
        translation = register.record_read(cells)
        for physical, taken in translation.takes:
            self._group_occupancy[physical % self.num_groups] -= taken
        for freed in translation.released:
            self._release_physical(freed)
        return translation.primary_physical_queue

    def peek_read(self, logical_queue: int) -> Optional[int]:
        """Physical queue the next read of ``logical_queue`` would target."""
        self._check_logical(logical_queue)
        head = self._registers[logical_queue].head_entry()
        return head.physical_queue if head is not None else None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def register(self, logical_queue: int) -> RenamingRegister:
        self._check_logical(logical_queue)
        return self._registers[logical_queue]

    def group_occupancy(self) -> List[int]:
        """Cells stored per group (the DRAM-utilisation view the paper's
        fragmentation argument is about)."""
        return list(self._group_occupancy)

    def physical_in_use(self) -> int:
        return len(self._in_use)

    def free_physical(self) -> int:
        return self.num_physical - len(self._in_use)

    def cells_recorded(self, logical_queue: int) -> int:
        self._check_logical(logical_queue)
        return self._registers[logical_queue].total_cells()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _group_has_room(self, physical_queue: int, cells: int) -> bool:
        if self.group_capacity_cells is None:
            return True
        group = physical_queue % self.num_groups
        return self._group_occupancy[group] + cells <= self.group_capacity_cells

    def _allocate_physical(self, cells: int) -> int:
        """Pick a free physical queue from the group with the most free room
        (the paper: "the assignment algorithm could select a q_p from the
        group with the least cells")."""
        candidates = []
        for group in range(self.num_groups):
            if not self._free_by_group[group]:
                continue
            if self.group_capacity_cells is not None:
                free_room = self.group_capacity_cells - self._group_occupancy[group]
                if free_room < cells:
                    continue
            else:
                free_room = -self._group_occupancy[group]
            candidates.append((self._group_occupancy[group], group))
        if not candidates:
            raise RenamingError(
                "no physical queue available: every group is either full or out of names")
        _, group = min(candidates)
        physical = self._free_by_group[group].pop()
        self._in_use.add(physical)
        return physical

    def _release_physical(self, physical_queue: int) -> None:
        if physical_queue in self._in_use:
            self._in_use.discard(physical_queue)
            self._free_by_group[physical_queue % self.num_groups].append(physical_queue)

    def _check_logical(self, logical_queue: int) -> None:
        if not 0 <= logical_queue < self.num_logical:
            raise ValueError(
                f"logical queue {logical_queue} out of range (0..{self.num_logical - 1})")
