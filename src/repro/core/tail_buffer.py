"""Slot-accurate simulator of the CFDS tail subsystem.

The tail side works exactly like the RADS tail at granularity ``b`` — cells
arrive into the tail SRAM and a threshold MMA evicts one block per issue
period — with one difference: the eviction is expressed as a *write* request
submitted to the DRAM Scheduler Subsystem, so the write stream occupies banks
and competes with the head's read stream (this is why the paper's sizing
formulas use ``2Q``).

Modelling note: the cell *content* is handed to the eviction sink immediately
(the data is on the line card either way and what matters for the worst-case
guarantee is bank occupancy, not the few-slot residence of write data in a
staging buffer); the *timing* of the write access is fully modelled through
the DSS and the banked DRAM.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.config import CFDSConfig
from repro.core.scheduler import DRAMSchedulerSubsystem
from repro.errors import BufferOverflowError
from repro.mma.tail_mma import ThresholdTailMMA
from repro.types import Cell, ReplenishRequest, SimulationResult, TransferDirection

#: An eviction sink receives ``(queue, cells)`` and stores the block in DRAM.
#: It returns the ``(physical queue, block ordinal)`` the block was written to
#: (used to build the WRITE request for bank-timing purposes), or ``None`` if
#: the block could not be stored (DRAM/group full) and was dropped.
EvictSink = Callable[[int, List[Cell]], Optional[Tuple[int, int]]]


class CFDSTailBuffer:
    """Tail-side CFDS simulator (t-SRAM + t-MMA feeding the DSS)."""

    def __init__(self,
                 config: CFDSConfig,
                 scheduler: Optional[DRAMSchedulerSubsystem] = None,
                 evict_sink: Optional[EvictSink] = None,
                 mma: Optional[ThresholdTailMMA] = None) -> None:
        self.config = config
        self.scheduler = scheduler
        self.evict_sink = evict_sink if evict_sink is not None else self._default_sink
        self.mma = mma if mma is not None else ThresholdTailMMA(config.granularity)
        self._write_counter: Dict[int, int] = {q: 0 for q in range(config.num_queues)}
        self._queues: Dict[int, Deque[Cell]] = {q: deque() for q in range(config.num_queues)}
        self._occupancy = 0
        self._slot = 0
        self._dropped_cells = 0
        self.result = SimulationResult()

    # ------------------------------------------------------------------ #
    @property
    def slot(self) -> int:
        return self._slot

    @property
    def dropped_cells(self) -> int:
        """Cells whose eviction block could not be stored in DRAM."""
        return self._dropped_cells

    def occupancy(self, queue: Optional[int] = None) -> int:
        if queue is None:
            return self._occupancy
        return len(self._queues[queue])

    def step(self, arrival: Optional[Cell] = None) -> Optional[List[Cell]]:
        """Advance one slot: accept at most one arrival, and on issue-period
        boundaries let the tail MMA evict one block through the DSS."""
        slot = self._slot
        evicted: Optional[List[Cell]] = None
        if arrival is not None:
            self._accept(arrival)
        if slot % self.config.granularity == 0:
            evicted = self._run_mma(slot)
        self._slot += 1
        self.result.slots_simulated = self._slot
        self.result.max_tail_sram_occupancy = max(
            self.result.max_tail_sram_occupancy, self._occupancy)
        return evicted

    def pop_direct(self, queue: int, count: int) -> List[Cell]:
        """Cut-through: remove up to ``count`` head cells of ``queue``."""
        fifo = self._queues[queue]
        out: List[Cell] = []
        while fifo and len(out) < count:
            out.append(fifo.popleft())
            self._occupancy -= 1
        return out

    def peek_direct(self, queue: int) -> Optional[Cell]:
        """Oldest cell of ``queue`` still resident in the tail SRAM."""
        fifo = self._queues[queue]
        return fifo[0] if fifo else None

    # ------------------------------------------------------------------ #
    def _default_sink(self, queue: int, cells: List[Cell]) -> Optional[Tuple[int, int]]:
        """Default: the block stays addressed by its own queue; successive
        blocks of a queue get successive ordinals (static assignment)."""
        index = self._write_counter[queue]
        self._write_counter[queue] = index + 1
        return queue, index

    def _accept(self, cell: Cell) -> None:
        capacity = self.config.effective_tail_sram_cells
        if self._occupancy + 1 > capacity:
            self.result.misses.append(None)
            if self.config.strict:
                raise BufferOverflowError("tail SRAM", capacity, self._occupancy + 1)
            return
        self._queues[cell.queue].append(cell)
        self._occupancy += 1
        self.result.cells_in += 1

    def _run_mma(self, slot: int) -> Optional[List[Cell]]:
        occupancy = [len(self._queues[q]) for q in range(self.config.num_queues)]
        selection = self.mma.select(occupancy)
        if selection is None:
            return None
        block: List[Cell] = []
        fifo = self._queues[selection]
        for _ in range(self.config.granularity):
            if not fifo:
                break
            block.append(fifo.popleft())
            self._occupancy -= 1
        if not block:
            return None
        location = self.evict_sink(selection, block)
        if location is None:
            self._dropped_cells += len(block)
            return block
        physical_queue, block_index = location
        if self.scheduler is not None:
            request = ReplenishRequest(queue=physical_queue,
                                       direction=TransferDirection.WRITE,
                                       cells=len(block),
                                       issue_slot=slot,
                                       block_index=block_index)
            self.scheduler.submit(request, payload=None)
        self.result.dram_writes += 1
        return block
