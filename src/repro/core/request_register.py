"""The Requests Register (RR) — the issue-queue of the DRAM scheduler.

The RR holds the replenishment requests the MMA has issued but the DRAM has
not started yet, ordered by age.  Every issue period the DRAM Scheduler
Algorithm (DSA) performs the equivalent of a superscalar issue queue's
wake-up/select (Section 8.1):

* *wake-up*: every entry compares its target bank against the banks in the
  Ongoing Requests Register; entries whose bank is not locked are ready;
* *select*: the oldest ready entry is issued and the younger entries are
  compacted forward to keep age order.

This module models that structure, including per-entry skip counters and
occupancy statistics, so the analytical bounds of :mod:`repro.core.sizing`
(equations 1 and 2) can be checked against measured behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.errors import BufferOverflowError
from repro.types import ReplenishRequest


@dataclass
class RREntry:
    """One Requests Register entry: the request, its target bank and the
    bookkeeping needed to verify the reordering bounds."""

    request: ReplenishRequest
    bank: int
    enqueue_slot: int
    payload: object = None
    skips: int = 0


class RequestRegister:
    """Age-ordered issue queue with wake-up/select semantics.

    Args:
        capacity: maximum number of simultaneously pending requests; ``None``
            disables the bound (useful when *measuring* what capacity a
            configuration actually needs).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: List[RREntry] = []
        self._peak_occupancy = 0
        self._max_skips_observed = 0
        self._issued = 0

    # ------------------------------------------------------------------ #
    # Enqueue (MMA side)
    # ------------------------------------------------------------------ #
    def push(self, request: ReplenishRequest, bank: int, slot: int,
             payload: object = None) -> RREntry:
        """Append a request at the tail (youngest position)."""
        if self.capacity is not None and len(self._entries) >= self.capacity:
            raise BufferOverflowError("Requests Register", self.capacity,
                                      len(self._entries) + 1)
        entry = RREntry(request=request, bank=bank, enqueue_slot=slot, payload=payload)
        self._entries.append(entry)
        self._peak_occupancy = max(self._peak_occupancy, len(self._entries))
        return entry

    # ------------------------------------------------------------------ #
    # Wake-up / select (DSA side)
    # ------------------------------------------------------------------ #
    def wake_up(self, locked_banks: Set[int]) -> List[bool]:
        """Return the ready vector: True for entries whose bank is free."""
        return [entry.bank not in locked_banks for entry in self._entries]

    def select(self, locked_banks: Set[int]) -> Optional[RREntry]:
        """Issue (remove and return) the oldest entry whose bank is not
        locked; count a skip for every older entry that was passed over.

        Returns ``None`` when no entry is ready (all pending requests target
        locked banks, or the register is empty).
        """
        ready = self.wake_up(locked_banks)
        chosen_index: Optional[int] = None
        for index, is_ready in enumerate(ready):
            if is_ready:
                chosen_index = index
                break
        if chosen_index is None:
            # Nothing could be issued this period: every pending entry loses
            # an opportunity.
            for entry in self._entries:
                entry.skips += 1
                self._max_skips_observed = max(self._max_skips_observed, entry.skips)
            return None
        for entry in self._entries[:chosen_index]:
            entry.skips += 1
            self._max_skips_observed = max(self._max_skips_observed, entry.skips)
        chosen = self._entries.pop(chosen_index)
        self._issued += 1
        return chosen

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def policy(self) -> str:
        """Name of the selection policy (used in reports and ablations)."""
        return "oldest-ready"

    @property
    def peak_occupancy(self) -> int:
        return self._peak_occupancy

    @property
    def max_skips_observed(self) -> int:
        return self._max_skips_observed

    @property
    def issued_count(self) -> int:
        return self._issued

    def entries(self) -> List[RREntry]:
        """Snapshot of pending entries, oldest first."""
        return list(self._entries)

    def pending_banks(self) -> List[int]:
        return [entry.bank for entry in self._entries]

    def __len__(self) -> int:
        return len(self._entries)


class FIFORequestRegister(RequestRegister):
    """Ablation variant: a plain FIFO with no wake-up/select.

    Only the head of the register may be issued; if its bank is locked the
    whole register stalls for the period.  This is what a DRAM controller
    without the issue-queue mechanism would do, and it is the baseline the
    ablation benchmark compares the DSA against (the paper's argument for the
    reordering logic).
    """

    @property
    def policy(self) -> str:
        return "fifo"

    def select(self, locked_banks: Set[int]) -> Optional[RREntry]:
        if not self._entries:
            return None
        head = self._entries[0]
        if head.bank in locked_banks:
            for entry in self._entries:
                entry.skips += 1
                self._max_skips_observed = max(self._max_skips_observed, entry.skips)
            return None
        self._issued += 1
        return self._entries.pop(0)
