"""The inline escape hatch: ``# repro-lint: disable=RULE[,RULE...]``.

A disable comment on a statement's *first* line silences the named rules
for findings anchored to that line only; ``disable-file=`` (anywhere in the
file, conventionally in the module docstring header area) silences them for
the whole file.  ``disable=all`` silences every rule.  The escape hatch is
for *deliberate* contract exceptions — the comment should sit next to a
justification, e.g.::

    raise IndexError("pop from an empty IntRing")  # repro-lint: disable=error-taxonomy

Suppression counts are reported (``suppressed`` in the JSON document) so an
escape hatch can never silently hide coverage.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

#: Matches the magic comment; group 1 is the directive, group 2 the rules.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")

#: Rule list value that matches every rule.
ALL = "all"


@dataclass
class Suppressions:
    """Per-file suppression state parsed from the source's comments."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    whole_file: Set[str] = field(default_factory=set)

    def silences(self, rule: str, line: int) -> bool:
        """True when ``rule``'s finding at ``line`` is disabled."""
        for scope in (self.whole_file, self.by_line.get(line, ())):
            if rule in scope or ALL in scope:
                return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for disable comments.

    Tokenizing (rather than regexing raw lines) means a ``disable=`` inside
    a string literal is never honoured.  An untokenizable file yields no
    suppressions — the rules will already be reporting on it or the parse
    error will have surfaced first.
    """
    suppressions = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            rules = {name.strip() for name in match.group(2).split(",")
                     if name.strip()}
            if match.group(1) == "disable-file":
                suppressions.whole_file.update(rules)
            else:
                line = token.start[0]
                suppressions.by_line.setdefault(line, set()).update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return suppressions
