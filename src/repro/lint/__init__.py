"""``repro lint`` — AST-based enforcement of the project's written contracts.

The codebase rests on invariants that ordinary linters cannot see: every
engine must be bit-exact, the picklable span cores must stay numpy-free,
library failures must speak the :mod:`repro.errors` taxonomy, and
observability must never run per slot.  Each contract is a named
:class:`~repro.lint.engine.Rule` with ``file:line`` diagnostics and an
inline ``# repro-lint: disable=RULE`` escape hatch; the committed tree
lints clean, and CI keeps it that way.

Public API::

    from repro.lint import lint_paths, all_rules
    findings, stats = lint_paths(["src/repro"])  # every rule, whole tree
"""

from repro.lint.diagnostics import (  # noqa: F401
    Finding,
    LintStats,
    findings_document,
    render_findings,
)
from repro.lint.engine import (  # noqa: F401
    Rule,
    all_rules,
    lint_paths,
    rule_names,
)
