"""The ``repro lint`` subcommand.

Exit codes follow the CLI-wide contract (pinned by ``tests/lint/test_cli.py``):

* **0** — lint ran and found nothing.
* **1** — findings were reported, or the run failed (unreadable file,
  syntax error) with a one-line ``error:`` message on stderr.
* **2** — usage error (unknown rule name, bad flags), via argparse.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.errors import ReproError
from repro.lint.diagnostics import findings_document, render_findings
from repro.lint.engine import lint_paths, rule_names


def default_lint_paths() -> List[Path]:
    """The installed ``repro`` package — so ``python -m repro lint`` with no
    arguments checks the library itself, wherever it is imported from."""
    import repro

    return [Path(repro.__file__).parent]


def add_lint_arguments(lint: argparse.ArgumentParser) -> None:
    """Flags for the ``lint`` subparser (kept here with the handler)."""
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--rules", default=None, metavar="RULE[,RULE...]",
                      help="comma-separated subset of rules to run "
                           "(default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule registry and exit")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the findings document as JSON")
    lint.add_argument("-o", "--output", default=None, metavar="FILE",
                      help="write the report to FILE instead of stdout")


def run_lint_command(parser: argparse.ArgumentParser,
                     args: argparse.Namespace) -> int:
    registry = rule_names()
    if args.list_rules:
        from repro.lint.engine import all_rules

        lines = [f"{rule.name:<20} {rule.summary}" for rule in all_rules()]
        return _emit("\n".join(lines), args.output)

    selected = None
    if args.rules is not None:
        selected = [name.strip() for name in args.rules.split(",")
                    if name.strip()]
        unknown = sorted(set(selected) - set(registry))
        if unknown:
            parser.error(  # exits 2: bad --rules is a usage error
                f"unknown rule(s): {', '.join(unknown)} "
                f"(available: {', '.join(registry)})")
        if not selected:
            parser.error("--rules requires at least one rule name")

    paths = ([Path(p) for p in args.paths] if args.paths
             else default_lint_paths())
    try:
        findings, stats = lint_paths(paths, selected)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.as_json:
        text = json.dumps(findings_document(findings, stats), indent=2)
    else:
        text = render_findings(findings, stats)
    code = _emit(text, args.output)
    if code != 0:
        return code
    return 1 if findings else 0


def _emit(text: str, output) -> int:
    if output is None or output == "-":
        print(text)
        return 0
    try:
        Path(output).write_text(text + "\n", encoding="utf-8")
    except OSError as exc:
        print(f"error: cannot write {output!r}: {exc}", file=sys.stderr)
        return 1
    return 0
