"""Finding records, the pinned ``--json`` document, and text rendering.

The JSON schema is part of the CLI contract (pinned by
``tests/lint/test_cli.py`` and documented in ``docs/architecture.md``):

.. code-block:: json

    {
      "version": 1,
      "rules": ["checkpoint-purity", "determinism", "..."],
      "paths": ["src/repro"],
      "files_scanned": 64,
      "findings": [
        {"rule": "error-taxonomy", "path": "src/repro/sim/stats.py",
         "line": 69, "col": 12, "message": "...", "symbol": "ValueError"}
      ],
      "counts": {"checkpoint-purity": 0, "determinism": 0, "...": 1},
      "suppressed": 2
    }

``findings`` is sorted by ``(path, line, rule)``; ``counts`` has one entry
per selected rule, zeros included, so a consumer can tell "rule ran clean"
from "rule did not run"; ``suppressed`` counts findings silenced by inline
``# repro-lint: disable=`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

#: Version stamp of the ``--json`` document.  Bump on any key change.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``rule`` violated at ``path:line:col``.

    ``symbol`` names the offending construct (the exception class, the
    ``random`` attribute, the iterated set, the assigned attribute) so
    diagnostics stay greppable even when messages are reworded.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.rule}] {self.message}")


@dataclass
class LintStats:
    """What a lint run covered, for the closing summary and the JSON doc."""

    rules: List[str] = field(default_factory=list)
    paths: List[str] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0


def findings_document(findings: Sequence[Finding],
                      stats: LintStats) -> Dict[str, Any]:
    """The pinned ``--json`` document for a completed run."""
    counts = {rule: 0 for rule in stats.rules}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "version": SCHEMA_VERSION,
        "rules": list(stats.rules),
        "paths": list(stats.paths),
        "files_scanned": stats.files_scanned,
        "findings": [finding.to_json() for finding in findings],
        "counts": counts,
        "suppressed": stats.suppressed,
    }


def render_findings(findings: Sequence[Finding], stats: LintStats) -> str:
    """Human-readable report: one line per finding plus a closing summary."""
    lines = [finding.render() for finding in findings]
    noun = "file" if stats.files_scanned == 1 else "files"
    suppressed = (f", {stats.suppressed} suppressed by disable comments"
                  if stats.suppressed else "")
    if findings:
        lines.append("")
        lines.append(f"{len(findings)} finding(s) in {stats.files_scanned} "
                     f"{noun} ({', '.join(stats.rules)}){suppressed}")
    else:
        lines.append(f"clean: {stats.files_scanned} {noun} checked against "
                     f"{', '.join(stats.rules)}{suppressed}")
    return "\n".join(lines)
