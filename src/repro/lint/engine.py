"""Rule plumbing and the lint driver.

Scoping
-------
Each rule declares the package subsystems its contract governs (``scope``,
a set of first-level directories under the ``repro`` package: ``sim``,
``switch``, ...).  A scanned file's subsystem is derived from its path: the
nearest ancestor directory named ``repro`` that contains an
``__init__.py`` is taken as the package root, and the first path component
below it is the subsystem.  Files *outside* any ``repro`` package (test
fixtures, ad-hoc paths) have no subsystem and every selected rule applies
— which is exactly what ``tests/lint/fixtures/`` relies on.

Two passes
----------
Rules get a ``prepare(files)`` hook over the whole file set before any
``check(file)`` runs; ``checkpoint-purity`` uses it to close the core-class
inheritance graph across modules (``_NumpyRADSCore`` lives two files away
from ``_ArrayCoreBase``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.lint.diagnostics import Finding, LintStats
from repro.lint.suppress import Suppressions, parse_suppressions


class LintError(ConfigurationError):
    """A lint run could not complete: unknown rule, unreadable or
    syntactically invalid input.  The CLI renders it as a one-line
    ``error:`` message with exit code 1."""


@dataclass
class SourceFile:
    """One parsed input file, as handed to every rule."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    subsystem: Optional[str]
    suppressions: Suppressions


class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` (the CLI identifier), ``summary`` (one line for
    ``--list-rules``), ``contract`` (the invariant being enforced, shown in
    docs) and optionally ``scope``; they implement :meth:`check` and may
    override :meth:`prepare`.
    """

    name: str = ""
    summary: str = ""
    contract: str = ""
    #: First-level package directories the rule applies to; ``None`` means
    #: the whole tree.  Files outside a ``repro`` package always match.
    scope: Optional[FrozenSet[str]] = None

    def applies_to(self, file: SourceFile) -> bool:
        if self.scope is None or file.subsystem is None:
            return True
        return file.subsystem in self.scope

    def prepare(self, files: List[SourceFile]) -> None:
        """Whole-file-set hook, called once before any :meth:`check`."""

    def check(self, file: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, file: SourceFile, node: ast.AST, message: str,
                symbol: str = "") -> Finding:
        return Finding(rule=self.name, path=file.display,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message, symbol=symbol)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in stable name order."""
    from repro.lint.rules import RULES

    return [cls() for _, cls in sorted(RULES.items())]


def rule_names() -> List[str]:
    from repro.lint.rules import RULES

    return sorted(RULES)


def resolve_rules(names: Optional[Iterable[str]]) -> List[Rule]:
    """Instances for ``names`` (``None`` = every rule); unknown names raise
    :class:`LintError` listing the registry, so a typo'd ``--rules`` fails
    loudly instead of silently linting nothing."""
    rules = all_rules()
    if names is None:
        return rules
    by_name = {rule.name: rule for rule in rules}
    selected = []
    for name in names:
        if name not in by_name:
            raise LintError(
                f"unknown lint rule {name!r}; available: "
                f"{', '.join(sorted(by_name))}")
        selected.append(by_name[name])
    return selected


# --------------------------------------------------------------------- #
# File discovery and parsing
# --------------------------------------------------------------------- #

def _package_subsystem(path: Path) -> Optional[str]:
    """First-level directory under the owning ``repro`` package, or ``None``
    for files outside any ``repro`` package.  Files directly at the package
    root (``errors.py``) report the marker ``"."``, which no scoped rule
    claims."""
    resolved = path.resolve()
    for ancestor in resolved.parents:
        if ancestor.name == "repro" and (ancestor / "__init__.py").is_file():
            relative = resolved.relative_to(ancestor)
            return relative.parts[0] if len(relative.parts) > 1 else "."
    return None


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(p for p in path.rglob("*.py")
                                if "__pycache__" not in p.parts)
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            seen.setdefault(candidate.resolve(), candidate)
    return sorted(seen.values(), key=lambda p: str(p))


def _display(path: Path) -> str:
    """Project-relative path when possible (stable across machines)."""
    resolved = path.resolve()
    try:
        return str(resolved.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def load_file(path: Path) -> SourceFile:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintError(f"cannot read {path}: {exc}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc.msg} "
                        f"(line {exc.lineno})")
    return SourceFile(path=path, display=_display(path), source=source,
                      tree=tree, subsystem=_package_subsystem(path),
                      suppressions=parse_suppressions(source))


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #

def lint_paths(paths: Iterable[Path],
               rules: Optional[Iterable[str]] = None,
               ) -> Tuple[List[Finding], LintStats]:
    """Lint ``paths`` with ``rules`` (names; ``None`` = all).

    Returns the suppression-filtered findings sorted by ``(path, line,
    rule)`` plus the run's :class:`LintStats`.
    """
    selected = resolve_rules(rules)
    files = [load_file(path) for path in discover_files(paths)]
    for rule in selected:
        rule.prepare(files)

    findings: List[Finding] = []
    suppressed = 0
    for file in files:
        for rule in selected:
            if not rule.applies_to(file):
                continue
            for finding in rule.check(file):
                if file.suppressions.silences(rule.name, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    stats = LintStats(rules=[rule.name for rule in selected],
                      paths=[str(p) for p in paths],
                      files_scanned=len(files), suppressed=suppressed)
    return findings, stats


# --------------------------------------------------------------------- #
# Shared AST helpers (used by several rules)
# --------------------------------------------------------------------- #

def module_aliases(tree: ast.Module, module: str) -> Dict[str, str]:
    """Names under which ``module`` (or its members) are visible in a file.

    Returns ``{local_name: dotted_origin}`` covering ``import m``,
    ``import m as alias`` and ``from m import x [as y]`` — enough for the
    root-name taint analysis the rules perform.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module or item.name.startswith(module + "."):
                    aliases[(item.asname or item.name).split(".")[0]] = \
                        item.name
        elif isinstance(node, ast.ImportFrom):
            if node.module == module or (
                    node.module or "").startswith(module + "."):
                for item in node.names:
                    aliases[item.asname or item.name] = \
                        f"{node.module}.{item.name}"
    return aliases


def root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript/call chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (async) function definition, outermost first.

    Rules that track local bindings analyse each scope independently so a
    name's type in one function never leaks into another.
    """
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def scope_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to ``scope`` in source order, descending into
    compound statements but *not* into nested function/class scopes."""
    def walk(body: List[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in body:
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for field_body in ("body", "orelse", "finalbody"):
                yield from walk(getattr(stmt, field_body, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                yield from walk(handler.body)

    yield from walk(list(getattr(scope, "body", [])))
