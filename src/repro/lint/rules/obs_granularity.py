"""``obs-granularity`` — observability never runs per slot.

The obs layer's own contract (see ``docs/architecture.md``): metrics and
trace events are emitted at *span/chunk/run* granularity, because a
``get_metrics()`` lookup or ``trace_emit`` JSON encode inside the
million-iteration slot loop erases the array engine's entire speedup.
The streaming engine honours this by emitting once per chunk, from a
method *outside* the slot loop.

The rule's definition of a per-slot loop is lexical: a ``for``/``while``
whose target, iterator or test mentions a slot-ish identifier
(``slot``, ``slots``, ``num_slots``, ``drain_slots``, ``slot_idx`` ...).
Inside such a loop — but not inside a nested function definition, which
executes later — it flags calls to ``get_metrics``/``trace_emit`` and
metric-instrument methods (``.inc``/``.observe``/``.gauge``/``.timed``).

Scope: every package (the contract is global).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from repro.lint.diagnostics import Finding
from repro.lint.engine import Rule, SourceFile

#: Identifier test: ``slot`` / ``slots`` as a whole ``_``-separated word.
_SLOTISH = re.compile(r"(?:^|_)slots?(?:$|_)")

#: Obs entry points that must stay out of per-slot loops.
_BANNED_FUNCS = frozenset({"get_metrics", "trace_emit"})
_BANNED_METHODS = frozenset({"inc", "observe", "gauge", "timed", "emit"})


def _mentions_slot(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and _SLOTISH.search(child.id):
            return True
        if isinstance(child, ast.Attribute) and _SLOTISH.search(child.attr):
            return True
    return False


def _is_slot_loop(node: ast.AST) -> bool:
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return _mentions_slot(node.target) or _mentions_slot(node.iter)
    if isinstance(node, ast.While):
        return _mentions_slot(node.test)
    return False


class ObsGranularityRule(Rule):
    name = "obs-granularity"
    summary = "no metrics/trace calls inside per-slot loops"
    contract = (
        "Observability is span/chunk/run-granular: get_metrics(), "
        "trace_emit() and metric-instrument calls (.inc/.observe/.gauge/"
        ".timed) never execute inside a loop that iterates slots.")
    scope = None  # the contract is global

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if _is_slot_loop(node):
                yield from self._banned_calls_in(file, node)

    def _banned_calls_in(self, file: SourceFile,
                         loop: ast.AST) -> Iterator[Finding]:
        """Banned obs calls lexically inside ``loop``'s body, not descending
        into nested function definitions (those run outside the loop)."""
        def walk(body: List[ast.stmt]) -> Iterator[ast.AST]:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                yield stmt
                for child in ast.walk(stmt):
                    if child is stmt or isinstance(
                            child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef, ast.Lambda)):
                        continue
                    yield child

        for node in walk(list(loop.body) + list(getattr(loop, "orelse", []))):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _BANNED_FUNCS:
                yield self.finding(
                    file, node,
                    f"{func.id}() inside a per-slot loop; hoist to "
                    "span/chunk granularity",
                    func.id)
            elif isinstance(func, ast.Attribute):
                if func.attr in _BANNED_FUNCS:
                    yield self.finding(
                        file, node,
                        f".{func.attr}() inside a per-slot loop; hoist to "
                        "span/chunk granularity",
                        func.attr)
                elif func.attr in _BANNED_METHODS and self._looks_obs(func):
                    yield self.finding(
                        file, node,
                        f"metric .{func.attr}() inside a per-slot loop; "
                        "accumulate locally and emit once per span/chunk",
                        func.attr)

    @staticmethod
    def _looks_obs(func: ast.Attribute) -> bool:
        """Heuristic receiver filter so ``counter.inc()`` fires but a
        domain method like ``ring.emit_all()`` on a non-obs object doesn't
        drown the rule in noise: receiver mentions obs/metric/trace/counter/
        gauge/histogram, e.g. ``self._obs.inc``, ``metrics.observe``."""
        text_parts = []
        node: ast.AST = func.value
        while isinstance(node, ast.Attribute):
            text_parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            text_parts.append(node.id)
        text = "_".join(text_parts).lower()
        return bool(re.search(
            r"obs|metric|trace|counter|gauge|histog|instrument", text))
