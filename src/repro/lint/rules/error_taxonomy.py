"""``error-taxonomy`` — library failures speak :mod:`repro.errors`.

The taxonomy exists so callers can assert on the *precise guarantee* that
was violated (``CacheMissError`` vs ``BankConflictError`` vs a generic
crash).  A bare ``raise ValueError(...)`` erodes that: the caller can no
longer distinguish "my parameter was bad" from "the library is broken".
This rule flags ``raise`` statements whose exception is a builtin from the
banned set; the sanctioned replacements subclass both the taxonomy and the
original builtin (``ValidationError(ConfigurationError, ValueError)``), so
seed-era ``except ValueError`` callers keep working.

Allowed escapes: ``NotImplementedError`` (abstract-method convention),
``OSError`` and friends (genuine environment failures), bare ``raise``
(re-raise), and raising a caught exception object.  Deliberate builtin
contracts (``IntRing`` mirroring ``deque``'s ``IndexError``) use the
inline disable comment next to a justification.

Scope: the library packages with taxonomy contracts — ``sim``, ``switch``,
``traffic``, ``runner``, ``obs``, ``workloads``, ``bench``, ``faults``,
``lint``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Finding
from repro.lint.engine import Rule, SourceFile

#: Builtins that taxonomy code must not raise directly.
BANNED = frozenset({
    "ValueError", "TypeError", "KeyError", "IndexError", "RuntimeError",
    "ArithmeticError", "ZeroDivisionError", "OverflowError",
    "AttributeError", "LookupError", "AssertionError", "Exception",
    "BaseException",
})


class ErrorTaxonomyRule(Rule):
    name = "error-taxonomy"
    summary = "library code raises only repro.errors taxonomy exceptions"
    contract = (
        "Library failures raise ReproError subclasses from repro.errors "
        "(ValidationError, ConfigurationError, ...), never bare builtins, "
        "so callers can assert on the precise violated guarantee.")
    scope = frozenset({"sim", "switch", "traffic", "runner", "obs",
                       "workloads", "bench", "faults", "lint"})

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BANNED:
                yield self.finding(
                    file, node,
                    f"raise {name} leaves the repro.errors taxonomy; use a "
                    "ReproError subclass (e.g. ValidationError for bad "
                    "parameter values)",
                    name)
