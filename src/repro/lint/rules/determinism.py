"""``determinism`` — seeded-reproducibility contract for the hot subsystems.

Every simulation result must be a pure function of its seeds: re-running a
scenario with the same config produces bit-identical reports (that is what
the cross-engine differential tests assert).  Two bug classes silently
break this:

* **Ambient entropy** — ``random.random()`` (module-level, seeded from the
  OS), ``time.time()``, ``os.urandom``, ``uuid.uuid4``, ``secrets.*``.
  Seeded ``random.Random(seed)`` instances are the sanctioned source.
* **Unordered-set iteration** — ``for q in some_set:`` hashes differently
  across runs of *different* Python processes only for str keys, but the
  contract is "never iterate an unordered set into results"; wrapping in
  ``sorted(...)`` sanitises.

Scope: ``sim``, ``switch`` and ``traffic`` — the packages whose outputs
feed simulation reports.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.diagnostics import Finding
from repro.lint.engine import (
    Rule,
    SourceFile,
    module_aliases,
    scope_statements,
    scopes,
)

#: ``random`` module attributes that are fine: class constructors users seed
#: themselves, and introspection helpers.
_RANDOM_ALLOWED = {"Random", "SystemRandom", "getstate", "setstate"}

#: ``time`` attributes that read the wall clock (results-affecting).  The
#: monotonic/perf counters are timing-only and allowed — the obs layer uses
#: them for duration metrics that never feed a report.
_TIME_BANNED = {"time", "time_ns", "ctime", "localtime", "gmtime"}

_UUID_BANNED = {"uuid1", "uuid4"}


class DeterminismRule(Rule):
    name = "determinism"
    summary = ("no ambient entropy or unordered-set iteration in "
               "sim/switch/traffic")
    contract = (
        "Results are a pure function of config + seeds: hot-path code uses "
        "seeded random.Random instances, never the module-level RNG, the "
        "wall clock, os.urandom, uuid, or secrets; sets are sorted before "
        "iteration.")
    scope = frozenset({"sim", "switch", "traffic"})

    def check(self, file: SourceFile) -> Iterator[Finding]:
        yield from self._entropy_findings(file)
        yield from self._set_iteration_findings(file)

    # ------------------------------------------------------------- #
    # Ambient entropy
    # ------------------------------------------------------------- #

    def _entropy_findings(self, file: SourceFile) -> Iterator[Finding]:
        random_names = module_aliases(file.tree, "random")
        time_names = module_aliases(file.tree, "time")
        os_names = module_aliases(file.tree, "os")
        uuid_names = module_aliases(file.tree, "uuid")
        secrets_names = module_aliases(file.tree, "secrets")

        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # Attribute form: random.random(), time.time(), os.urandom(),
            # uuid.uuid4(), secrets.token_bytes()...
            if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name):
                base, attr = func.value.id, func.attr
                if (random_names.get(base) == "random"
                        and attr not in _RANDOM_ALLOWED):
                    yield self.finding(
                        file,
                        node,
                        f"module-level random.{attr}() draws from ambient "
                        "state; use a seeded random.Random instance",
                        f"random.{attr}")
                elif time_names.get(base) == "time" and attr in _TIME_BANNED:
                    yield self.finding(
                        file, node,
                        f"time.{attr}() reads the wall clock; results must "
                        "not depend on real time",
                        f"time.{attr}")
                elif os_names.get(base) == "os" and attr == "urandom":
                    yield self.finding(
                        file, node,
                        "os.urandom() is unseeded OS entropy",
                        "os.urandom")
                elif uuid_names.get(base) == "uuid" and attr in _UUID_BANNED:
                    yield self.finding(
                        file, node,
                        f"uuid.{attr}() is non-deterministic; derive ids "
                        "from config + seeds instead",
                        f"uuid.{attr}")
                elif secrets_names.get(base) == "secrets":
                    yield self.finding(
                        file, node,
                        f"secrets.{attr}() is unseeded OS entropy",
                        f"secrets.{attr}")
            # from-import form: from random import random / randint ...
            elif isinstance(func, ast.Name):
                origin = random_names.get(func.id)
                if (origin and origin.startswith("random.")
                        and origin.split(".", 1)[1] not in _RANDOM_ALLOWED):
                    yield self.finding(
                        file, node,
                        f"{origin}() (imported as {func.id}) draws from the "
                        "module-level RNG; use a seeded random.Random",
                        origin)
                origin = time_names.get(func.id)
                if (origin and origin.startswith("time.")
                        and origin.split(".", 1)[1] in _TIME_BANNED):
                    yield self.finding(
                        file, node,
                        f"{origin}() (imported as {func.id}) reads the wall "
                        "clock; results must not depend on real time",
                        origin)
                origin = secrets_names.get(func.id)
                if origin and origin.startswith("secrets."):
                    yield self.finding(
                        file, node,
                        f"{origin}() is unseeded OS entropy", origin)

    # ------------------------------------------------------------- #
    # Unordered-set iteration
    # ------------------------------------------------------------- #

    def _set_iteration_findings(self, file: SourceFile) -> Iterator[Finding]:
        for scope in scopes(file.tree):
            set_locals = self._set_typed_locals(scope)
            for node in self._scope_nodes(scope):
                expr = self._iterated_set(node, set_locals)
                if expr is not None:
                    symbol = expr.id if isinstance(expr, ast.Name) else "set"
                    yield self.finding(
                        file, node,
                        "iterating an unordered set feeds hash order into "
                        "results; wrap in sorted(...)",
                        symbol)

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Every node in ``scope``, each exactly once, excluding nested
        function scopes (they get their own pass with their own locals)."""
        def walk(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                yield child
                yield from walk(child)

        yield from walk(scope)

    def _set_typed_locals(self, scope: ast.AST) -> Set[str]:
        """Names assigned an obviously-set-typed value in ``scope``, with
        one step of propagation (``b = a`` where ``a`` is set-typed)."""
        set_locals: Set[str] = set()
        for _ in range(2):  # one extra sweep for single-step propagation
            for stmt in scope_statements(scope):
                targets = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                elif isinstance(stmt, ast.AugAssign):
                    # s |= {...} keeps set-ness; nothing new to learn.
                    continue
                if value is None:
                    continue
                if self._is_set_expr(value, set_locals):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            set_locals.add(target.id)
                else:
                    # Rebinding to a non-set clears the inference.
                    for target in targets:
                        if isinstance(target, ast.Name):
                            set_locals.discard(target.id)
        return set_locals

    def _is_set_expr(self, node: ast.expr, set_locals: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_locals
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                    "set", "frozenset"):
                return True
            # s.union(...) / s.intersection(...) / s.difference(...) / s.copy()
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("union", "intersection",
                                           "difference",
                                           "symmetric_difference", "copy")
                    and self._is_set_expr(node.func.value, set_locals)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left, set_locals)
                    or self._is_set_expr(node.right, set_locals))
        return False

    def _iterated_set(self, node: ast.AST,
                      set_locals: Set[str]) -> Optional[ast.expr]:
        """The set expression ``node`` iterates, or ``None``.

        ``sorted(s)`` (and ``min``/``max``/``sum``/``len``/``any``/``all``,
        which are order-insensitive) sanitise; ``list(s)``, ``tuple(s)``,
        ``enumerate(s)`` and direct ``for``/comprehension iteration do not.
        """
        iters = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple", "enumerate", "iter",
                                "next", "zip", "map", "filter"):
                iters.extend(node.args)
        for candidate in iters:
            if self._is_set_expr(candidate, set_locals):
                return candidate
        return None
