"""Rule registry.  Adding a rule = adding a module here and an entry below."""

from typing import Dict, Type

from repro.lint.engine import Rule
from repro.lint.rules.checkpoint_purity import CheckpointPurityRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.error_taxonomy import ErrorTaxonomyRule
from repro.lint.rules.obs_granularity import ObsGranularityRule

#: name -> class, the single source of truth for ``--rules`` / ``--list-rules``.
RULES: Dict[str, Type[Rule]] = {
    cls.name: cls
    for cls in (
        CheckpointPurityRule,
        DeterminismRule,
        ErrorTaxonomyRule,
        ObsGranularityRule,
    )
}
