"""``checkpoint-purity`` — picklable span cores stay numpy/ctypes-free.

Streaming checkpoints pickle the span cores (``_ArrayCoreBase`` and every
subclass) so a run can resume on a machine *without* numpy or the compiled
kernel.  PR 9 fixed exactly this bug class: the kernel bridge stashed a
ctypes ``(c_int64 * n)`` view on the core as ``_bl8_arr``, which pickled
the whole buffer (or failed outright) and broke numpy-free resume.  The
fix moved it to a ``WeakKeyDictionary`` keyed by the core — state lives
*beside* the core, never *on* it.

This rule enforces that shape statically: inside any class in the
core-class closure (built over the whole file set in :meth:`prepare`, so
subclasses in other modules are covered), an attribute assignment
``self.x = <expr>`` — or ``core.x = <expr>`` for parameters named
``core`` anywhere in ``sim/`` — must not bind numpy/ctypes values,
lambdas, generators, or open file handles.  Element-wise writes
(``core.backlog[:] = ...``) are fine: they fill a plain list, they don't
rebind the attribute.

Scope: ``sim`` (the only package defining span cores).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.diagnostics import Finding
from repro.lint.engine import Rule, SourceFile, module_aliases

#: Base classes whose transitive subclasses form the picklable-core closure.
CORE_ROOTS = frozenset({"_ArrayCoreBase"})


class CheckpointPurityRule(Rule):
    name = "checkpoint-purity"
    summary = "span cores never hold ndarray/ctypes/lambda/file attributes"
    contract = (
        "Classes reachable from the picklable span cores (_ArrayCoreBase "
        "closure) assign only plain-Python state to attributes; numpy "
        "arrays, ctypes buffers, lambdas, generators and file handles "
        "break numpy-free checkpoint resume (the _bl8_arr bug class).")
    scope = frozenset({"sim"})

    def __init__(self) -> None:
        self._core_classes: Set[str] = set(CORE_ROOTS)

    # ------------------------------------------------------------- #
    # Whole-file-set prepass: close the inheritance graph by base name
    # ------------------------------------------------------------- #

    def prepare(self, files: List[SourceFile]) -> None:
        edges: Dict[str, Set[str]] = {}
        for file in files:
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = set()
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        bases.add(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.add(base.attr)
                edges[node.name] = bases
        closure = set(CORE_ROOTS)
        changed = True
        while changed:
            changed = False
            for cls, bases in edges.items():
                if cls not in closure and bases & closure:
                    closure.add(cls)
                    changed = True
        self._core_classes = closure

    # ------------------------------------------------------------- #
    # Per-file check
    # ------------------------------------------------------------- #

    def check(self, file: SourceFile) -> Iterator[Finding]:
        numpy_names = set(module_aliases(file.tree, "numpy"))
        ctypes_names = set(module_aliases(file.tree, "ctypes"))

        # 1. self.<attr> = <impure> inside core-class methods.
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            in_core = node.name in self._core_classes
            if not in_core:
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                self_name = (method.args.args[0].arg
                             if method.args.args else None)
                if self_name is None:
                    continue
                yield from self._impure_assignments(
                    file, method, self_name, node.name,
                    numpy_names, ctypes_names)

        # 2. core.<attr> = <impure> anywhere a parameter is named ``core``
        # (the kernel bridge pattern: run_span_kernel(core, ...)).
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = {arg.arg for arg in node.args.args
                      + node.args.posonlyargs + node.args.kwonlyargs}
            if "core" not in params:
                continue
            yield from self._impure_assignments(
                file, node, "core", "core parameter",
                numpy_names, ctypes_names)

    def _impure_assignments(self, file: SourceFile, func: ast.AST,
                            receiver: str, owner: str,
                            numpy_names: Set[str],
                            ctypes_names: Set[str]) -> Iterator[Finding]:
        tainted_locals: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                impure = self._impurity(
                    node.value, numpy_names, ctypes_names, tainted_locals)
                for target in node.targets:
                    # Plain local binding: remember the taint for one-step
                    # propagation (arr = np.zeros(n); self.x = arr).
                    if isinstance(target, ast.Name):
                        if impure:
                            tainted_locals.add(target.id)
                        else:
                            tainted_locals.discard(target.id)
                    elif (isinstance(target, ast.Attribute)
                          and isinstance(target.value, ast.Name)
                          and target.value.id == receiver and impure):
                        yield self.finding(
                            file, target,
                            f"{receiver}.{target.attr} = {impure} would be "
                            f"pickled with {owner} and break numpy-free "
                            "checkpoint resume; keep it in a "
                            "WeakKeyDictionary beside the core",
                            target.attr)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                impure = self._impurity(
                    node.value, numpy_names, ctypes_names, tainted_locals)
                target = node.target
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == receiver and impure):
                    yield self.finding(
                        file, target,
                        f"{receiver}.{target.attr} = {impure} would be "
                        f"pickled with {owner} and break numpy-free "
                        "checkpoint resume",
                        target.attr)

    def _impurity(self, value: ast.expr, numpy_names: Set[str],
                  ctypes_names: Set[str],
                  tainted_locals: Set[str]) -> Optional[str]:
        """A short description of why ``value`` is checkpoint-impure, or
        ``None`` when it looks like plain-Python state.

        Purity barriers keep the analysis useful on real kernel code:
        ``x.tolist()`` is the canonical numpy/ctypes → plain-Python
        conversion, and a call to an ordinary helper function is assumed
        to return what its contract says (``split(ctypes_buf, ...)`` in
        the kernel bridge returns plain lists) — taint does not leak
        through either.
        """
        def visit(node: ast.AST) -> Optional[str]:
            if isinstance(node, ast.Lambda):
                return "a lambda"
            if isinstance(node, ast.GeneratorExp):
                return "a generator"
            if isinstance(node, ast.Name):
                if node.id in numpy_names:
                    return "a numpy value"
                if node.id in ctypes_names:
                    return "a ctypes value"
                if node.id in tainted_locals:
                    return "an impure local"
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "tolist":
                    return None  # barrier: converts to plain Python
                if isinstance(func, ast.Name):
                    if func.id == "open":
                        return "a file handle"
                    if func.id not in numpy_names | ctypes_names:
                        return None  # helper-function barrier
            for child in ast.iter_child_nodes(node):
                impure = visit(child)
                if impure:
                    return impure
            return None

        return visit(value)
