"""IP packet model used by the segmentation/reassembly machinery."""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import CELL_SIZE_BYTES
from repro.errors import ValidationError

#: Smallest IP packet the generators produce (a TCP ACK-sized packet).
MIN_PACKET_BYTES: int = 40

#: Largest packet (standard Ethernet MTU).
MAX_PACKET_BYTES: int = 1500


@dataclass(frozen=True)
class Packet:
    """A variable-size packet destined to one VOQ.

    Attributes:
        packet_id: globally unique identifier.
        queue: VOQ (output interface x class of service) the packet belongs to.
        size_bytes: payload size in bytes; determines how many 64-byte cells
            the packet is segmented into.
        arrival_slot: slot at which the packet's first cell arrives.
    """

    packet_id: int
    queue: int
    size_bytes: int
    arrival_slot: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValidationError("size_bytes must be positive")
        if self.queue < 0:
            raise ValidationError("queue must be non-negative")

    @property
    def num_cells(self) -> int:
        """Number of 64-byte cells the packet occupies (ceiling division)."""
        return -(-self.size_bytes // CELL_SIZE_BYTES)
