"""Per-slot cell arrival processes.

An arrival process answers one question per slot: "which queue (if any) does
the cell arriving this slot belong to?" — at most one cell can arrive per slot
because the write port of the buffer runs at the line rate.

All stochastic processes take an explicit seed so experiments and
property-based tests are reproducible.

The stochastic processes additionally override the generic :meth:`arrivals`
generator with a *batch* implementation: RNG method lookups are hoisted into
locals and a preallocated list is filled in one tight loop.  The batch form
draws from the RNG in exactly the same order as repeated
:meth:`next_arrival` calls, so the two are stream-identical (asserted by the
traffic test suite) — which is what lets the batched and array simulation
engines pre-generate arrival plans without perturbing any random stream.
"""

from __future__ import annotations

import abc
import random
from bisect import bisect
from itertools import accumulate
from typing import Iterable, List, Optional, Sequence

from repro.errors import ValidationError

class ArrivalProcess(abc.ABC):
    """Interface of every arrival process."""

    #: True when :meth:`next_arrival` ignores its ``slot`` argument (the
    #: process is a pure function of its internal state, as every stochastic
    #: process here is).  Slot-invariant processes serve
    #: :meth:`arrivals_slice` straight from their batch fast path.
    slot_invariant = False

    @abc.abstractmethod
    def next_arrival(self, slot: int) -> Optional[int]:
        """Queue of the cell arriving at ``slot``, or ``None`` for an idle slot."""

    def arrivals(self, num_slots: int) -> Iterable[Optional[int]]:
        """Generate ``num_slots`` arrivals.

        Subclasses may return a list instead of a generator (the batch fast
        path); callers must treat the result as an opaque iterable.
        """
        return (self.next_arrival(slot) for slot in range(num_slots))

    def arrivals_slice(self, start_slot: int,
                       num_slots: int) -> Iterable[Optional[int]]:
        """Arrivals for the window ``[start_slot, start_slot + num_slots)``.

        This is the chunked-execution entry point: the streaming engine asks
        for consecutive windows in ascending order, and the concatenation of
        those windows must equal one ``arrivals(total)`` call (asserted by
        the traffic test suite).  Stateful stochastic processes satisfy that
        automatically — their RNG state carries across calls — while
        slot-indexed processes (:class:`DeterministicArrivals`,
        :class:`TraceArrivals`) override this with offset-aware slicing.
        """
        if self.slot_invariant or start_slot == 0:
            # start_slot == 0 also routes custom subclasses that override
            # only ``arrivals`` through their own batch path, preserving the
            # monolithic behaviour exactly.
            return self.arrivals(num_slots)
        return [self.next_arrival(slot)
                for slot in range(start_slot, start_slot + num_slots)]


class DeterministicArrivals(ArrivalProcess):
    """Replays a fixed per-slot pattern (cycling if shorter than the run)."""

    def __init__(self, pattern: Sequence[Optional[int]]) -> None:
        if not pattern:
            raise ValidationError("pattern must not be empty")
        self.pattern = list(pattern)

    def next_arrival(self, slot: int) -> Optional[int]:
        return self.pattern[slot % len(self.pattern)]

    def arrivals(self, num_slots: int) -> List[Optional[int]]:
        repeats = -(-num_slots // len(self.pattern))
        return (self.pattern * repeats)[:num_slots]

    def arrivals_slice(self, start_slot: int,
                       num_slots: int) -> List[Optional[int]]:
        period = len(self.pattern)
        offset = start_slot % period
        repeats = -(-(offset + num_slots) // period)
        return (self.pattern * repeats)[offset:offset + num_slots]


class RoundRobinArrivals(ArrivalProcess):
    """One cell per slot, cycling over all queues — the arrival-side analogue
    of the round-robin adversary (keeps every queue equally backlogged)."""

    slot_invariant = True

    def __init__(self, num_queues: int, load: float = 1.0, seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        if not 0.0 <= load <= 1.0:
            raise ValidationError("load must be in [0, 1]")
        self.num_queues = num_queues
        self.load = load
        self._rng = random.Random(seed)
        self._next_queue = 0

    def next_arrival(self, slot: int) -> Optional[int]:
        if self.load < 1.0 and self._rng.random() >= self.load:
            return None
        queue = self._next_queue
        self._next_queue = (self._next_queue + 1) % self.num_queues
        return queue

    def arrivals(self, num_slots: int) -> List[Optional[int]]:
        out: List[Optional[int]] = [None] * num_slots
        num_queues = self.num_queues
        queue = self._next_queue
        if self.load < 1.0:
            rand = self._rng.random
            load = self.load
            for slot in range(num_slots):
                if rand() >= load:
                    continue
                out[slot] = queue
                queue = (queue + 1) % num_queues
        else:
            for slot in range(num_slots):
                out[slot] = queue
                queue = (queue + 1) % num_queues
        self._next_queue = queue
        return out


class BernoulliArrivals(ArrivalProcess):
    """Independent per-slot arrivals with configurable queue popularity.

    Args:
        num_queues: number of VOQs.
        load: probability that a cell arrives in a slot.
        weights: relative popularity of each queue (uniform by default).
        seed: RNG seed.
    """

    slot_invariant = True

    def __init__(self,
                 num_queues: int,
                 load: float = 1.0,
                 weights: Optional[Sequence[float]] = None,
                 seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        if not 0.0 <= load <= 1.0:
            raise ValidationError("load must be in [0, 1]")
        if weights is not None and len(weights) != num_queues:
            raise ValidationError("weights must have one entry per queue")
        if weights is not None and any(w < 0 for w in weights):
            raise ValidationError("weights must be non-negative")
        self.num_queues = num_queues
        self.load = load
        self.weights = list(weights) if weights is not None else [1.0] * num_queues
        self._rng = random.Random(seed)
        self._queues = list(range(num_queues))

    def next_arrival(self, slot: int) -> Optional[int]:
        if self._rng.random() >= self.load:
            return None
        return self._rng.choices(self._queues, weights=self.weights, k=1)[0]

    def arrivals(self, num_slots: int) -> List[Optional[int]]:
        out: List[Optional[int]] = [None] * num_slots
        rand = self._rng.random
        load = self.load
        queues = self._queues
        cum_weights = list(accumulate(self.weights))
        total = cum_weights[-1] + 0.0
        if total <= 0.0:
            # Degenerate all-zero weights: defer to choices() so the error
            # surfaces on the first draw, exactly as in the per-slot path.
            choices = self._rng.choices
            weights = self.weights
            for slot in range(num_slots):
                if rand() < load:
                    out[slot] = choices(queues, weights=weights, k=1)[0]
            return out
        # Inline of random.choices(queues, cum_weights=..., k=1): one uniform
        # draw plus a bisect — the same RNG consumption as the per-slot path.
        pick = bisect
        hi = len(queues) - 1
        for slot in range(num_slots):
            if rand() < load:
                out[slot] = queues[pick(cum_weights, rand() * total, 0, hi)]
        return out


class HotspotArrivals(BernoulliArrivals):
    """Bernoulli arrivals where a fraction of the traffic targets a small set
    of hot queues — the skewed pattern that provokes DRAM fragmentation when
    renaming is disabled."""

    def __init__(self,
                 num_queues: int,
                 hot_queues: Sequence[int],
                 hot_fraction: float = 0.9,
                 load: float = 1.0,
                 seed: int = 0) -> None:
        if not hot_queues:
            raise ValidationError("hot_queues must not be empty")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValidationError("hot_fraction must be in [0, 1]")
        if any(not 0 <= q < num_queues for q in hot_queues):
            raise ValidationError("hot queue index out of range")
        hot_set = set(hot_queues)
        cold_count = num_queues - len(hot_set)
        weights: List[float] = []
        for queue in range(num_queues):
            if queue in hot_set:
                weights.append(hot_fraction / len(hot_set))
            else:
                weights.append((1.0 - hot_fraction) / cold_count if cold_count else 0.0)
        super().__init__(num_queues, load=load, weights=weights, seed=seed)
        self.hot_queues = sorted(hot_set)
        self.hot_fraction = hot_fraction


class BurstyArrivals(ArrivalProcess):
    """Two-state (on/off) Markov-modulated arrivals per queue.

    While a queue is *on* it receives a cell in every slot in which it is the
    active burst owner; bursts have geometrically distributed lengths.  This
    mimics the packet trains produced by segmenting large packets and by TCP
    windows, and is the standard bursty stressor for buffer designs.
    """

    slot_invariant = True

    def __init__(self,
                 num_queues: int,
                 mean_burst_cells: float = 16.0,
                 load: float = 1.0,
                 seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        if mean_burst_cells < 1.0:
            raise ValidationError("mean_burst_cells must be >= 1")
        if not 0.0 <= load <= 1.0:
            raise ValidationError("load must be in [0, 1]")
        self.num_queues = num_queues
        self.mean_burst_cells = mean_burst_cells
        self.load = load
        self._rng = random.Random(seed)
        self._current_queue: Optional[int] = None
        self._remaining_burst = 0

    def next_arrival(self, slot: int) -> Optional[int]:
        if self._rng.random() >= self.load:
            return None
        if self._remaining_burst <= 0:
            self._current_queue = self._rng.randrange(self.num_queues)
            # Geometric burst length with the requested mean (>= 1 cell).
            p = 1.0 / self.mean_burst_cells
            length = 1
            while self._rng.random() >= p:
                length += 1
            self._remaining_burst = length
        self._remaining_burst -= 1
        return self._current_queue

    def arrivals(self, num_slots: int) -> List[Optional[int]]:
        out: List[Optional[int]] = [None] * num_slots
        rand = self._rng.random
        randrange = self._rng.randrange
        load = self.load
        num_queues = self.num_queues
        p = 1.0 / self.mean_burst_cells
        queue = self._current_queue
        burst = self._remaining_burst
        for slot in range(num_slots):
            if rand() >= load:
                continue
            if burst <= 0:
                queue = randrange(num_queues)
                burst = 1
                while rand() >= p:
                    burst += 1
            burst -= 1
            out[slot] = queue
        self._current_queue = queue
        self._remaining_burst = burst
        return out


class MarkovOnOffArrivals(ArrivalProcess):
    """Markov-modulated on/off sources, one two-state chain per queue.

    Every queue independently alternates between an *on* and an *off* state
    with geometrically distributed sojourn times (``mean_on_slots`` and
    ``mean_off_slots``).  Each slot, every *on* queue offers a cell with
    probability ``peak_rate``; since the buffer accepts at most one cell per
    slot, one of the offering queues is chosen uniformly.  Superposing many
    on/off sources is the classic model for bursty aggregate traffic, and the
    on/off duty cycle sets the burstiness independently of the mean load.
    """

    slot_invariant = True

    def __init__(self,
                 num_queues: int,
                 mean_on_slots: float = 20.0,
                 mean_off_slots: float = 60.0,
                 peak_rate: float = 1.0,
                 seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        if mean_on_slots < 1.0 or mean_off_slots < 1.0:
            raise ValidationError("mean sojourn times must be >= 1 slot")
        if not 0.0 < peak_rate <= 1.0:
            raise ValidationError("peak_rate must be in (0, 1]")
        self.num_queues = num_queues
        self.mean_on_slots = mean_on_slots
        self.mean_off_slots = mean_off_slots
        self.peak_rate = peak_rate
        self._p_off = 1.0 / mean_on_slots   # on -> off transition probability
        self._p_on = 1.0 / mean_off_slots   # off -> on transition probability
        self._rng = random.Random(seed)
        # Start each chain in its stationary distribution so short runs are
        # not biased by a cold start.
        p_stationary_on = mean_on_slots / (mean_on_slots + mean_off_slots)
        self._on = [self._rng.random() < p_stationary_on
                    for _ in range(num_queues)]

    def next_arrival(self, slot: int) -> Optional[int]:
        rng = self._rng
        offering: List[int] = []
        for queue in range(self.num_queues):
            if self._on[queue]:
                if rng.random() < self.peak_rate:
                    offering.append(queue)
                if rng.random() < self._p_off:
                    self._on[queue] = False
            elif rng.random() < self._p_on:
                self._on[queue] = True
        if not offering:
            return None
        if len(offering) == 1:
            return offering[0]
        return offering[rng.randrange(len(offering))]

    def arrivals(self, num_slots: int) -> List[Optional[int]]:
        out: List[Optional[int]] = [None] * num_slots
        rand = self._rng.random
        randrange = self._rng.randrange
        on = self._on
        peak_rate = self.peak_rate
        p_off = self._p_off
        p_on = self._p_on
        queue_range = range(self.num_queues)
        for slot in range(num_slots):
            offering: List[int] = []
            for queue in queue_range:
                if on[queue]:
                    if rand() < peak_rate:
                        offering.append(queue)
                    if rand() < p_off:
                        on[queue] = False
                elif rand() < p_on:
                    on[queue] = True
            if offering:
                if len(offering) == 1:
                    out[slot] = offering[0]
                else:
                    out[slot] = offering[randrange(len(offering))]
        return out


class ParetoBurstArrivals(ArrivalProcess):
    """Heavy-tailed (Pareto) burst and gap lengths — self-similar traffic.

    Alternates between a burst (back-to-back cells for one queue) and an idle
    gap, both with Pareto-distributed lengths.  With shape ``alpha`` in
    (1, 2) the burst lengths have finite mean but infinite variance, which is
    what makes superposed traffic long-range dependent (the Ethernet
    self-similarity result); the gap scale is derived from ``load`` so the
    long-run cell rate matches the requested utilisation.
    """

    slot_invariant = True

    def __init__(self,
                 num_queues: int,
                 alpha: float = 1.5,
                 min_burst_cells: int = 1,
                 load: float = 0.8,
                 seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        if alpha <= 1.0:
            raise ValidationError("alpha must exceed 1 (finite mean)")
        if min_burst_cells < 1:
            raise ValidationError("min_burst_cells must be >= 1")
        if not 0.0 < load < 1.0:
            raise ValidationError("load must be in (0, 1)")
        self.num_queues = num_queues
        self.alpha = alpha
        self.min_burst_cells = min_burst_cells
        self.load = load
        # Pareto(alpha, xm) has mean alpha*xm/(alpha-1); pick the gap scale so
        # mean_burst / (mean_burst + mean_gap) == load.
        mean_burst = alpha * min_burst_cells / (alpha - 1.0)
        mean_gap = mean_burst * (1.0 - load) / load
        self._min_gap = max(mean_gap * (alpha - 1.0) / alpha, 1e-9)
        self._rng = random.Random(seed)
        self._current_queue = 0
        self._remaining_burst = 0
        self._remaining_gap = 0

    def _pareto(self, scale: float) -> float:
        # Inverse-CDF sampling: xm / U^(1/alpha).
        u = 1.0 - self._rng.random()  # in (0, 1]
        return scale / (u ** (1.0 / self.alpha))

    def next_arrival(self, slot: int) -> Optional[int]:
        if self._remaining_gap > 0:
            self._remaining_gap -= 1
            return None
        if self._remaining_burst <= 0:
            self._current_queue = self._rng.randrange(self.num_queues)
            self._remaining_burst = max(
                int(self._pareto(self.min_burst_cells)), 1)
        self._remaining_burst -= 1
        if self._remaining_burst == 0:
            # Schedule the idle gap that separates this burst from the next
            # (at least one slot, so bursts never merge).
            self._remaining_gap = max(
                int(round(self._pareto(self._min_gap))), 1)
        return self._current_queue

    def arrivals(self, num_slots: int) -> List[Optional[int]]:
        out: List[Optional[int]] = [None] * num_slots
        rand = self._rng.random
        randrange = self._rng.randrange
        inv_alpha = 1.0 / self.alpha
        min_burst = self.min_burst_cells
        min_gap = self._min_gap
        num_queues = self.num_queues
        queue = self._current_queue
        burst = self._remaining_burst
        gap = self._remaining_gap
        for slot in range(num_slots):
            if gap > 0:
                gap -= 1
                continue
            if burst <= 0:
                queue = randrange(num_queues)
                burst = max(int(min_burst / ((1.0 - rand()) ** inv_alpha)), 1)
            burst -= 1
            if burst == 0:
                gap = max(int(round(min_gap / ((1.0 - rand()) ** inv_alpha))), 1)
            out[slot] = queue
        self._current_queue = queue
        self._remaining_burst = burst
        self._remaining_gap = gap
        return out


class ZipfArrivals(BernoulliArrivals):
    """Bernoulli arrivals with Zipf-distributed queue popularity.

    Queue ``q`` receives traffic proportional to ``1 / (q+1)**exponent`` —
    the canonical model for flow popularity skew (a few elephants, a long
    tail of mice).  ``exponent=0`` degenerates to uniform Bernoulli traffic;
    larger exponents concentrate the load on the lowest-indexed queues.
    """

    def __init__(self,
                 num_queues: int,
                 exponent: float = 1.0,
                 load: float = 1.0,
                 seed: int = 0) -> None:
        if exponent < 0.0:
            raise ValidationError("exponent must be non-negative")
        weights = [1.0 / float(rank + 1) ** exponent for rank in range(num_queues)]
        super().__init__(num_queues, load=load, weights=weights, seed=seed)
        self.exponent = exponent


class TraceArrivals(ArrivalProcess):
    """Replays a recorded per-slot arrival sequence exactly once.

    Unlike :class:`DeterministicArrivals` this does *not* cycle: slots beyond
    the end of the recording are idle, which is the right semantics for
    replaying a captured trace against a different buffer variant.
    """

    def __init__(self, pattern: Sequence[Optional[int]]) -> None:
        self.pattern = list(pattern)

    def __len__(self) -> int:
        return len(self.pattern)

    def next_arrival(self, slot: int) -> Optional[int]:
        if 0 <= slot < len(self.pattern):
            return self.pattern[slot]
        return None

    def arrivals(self, num_slots: int) -> List[Optional[int]]:
        if num_slots <= len(self.pattern):
            return self.pattern[:num_slots]
        return self.pattern + [None] * (num_slots - len(self.pattern))

    def arrivals_slice(self, start_slot: int,
                       num_slots: int) -> List[Optional[int]]:
        end = start_slot + num_slots
        recorded = self.pattern[start_slot:end]
        return recorded + [None] * (num_slots - len(recorded))
