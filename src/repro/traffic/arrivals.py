"""Per-slot cell arrival processes.

An arrival process answers one question per slot: "which queue (if any) does
the cell arriving this slot belong to?" — at most one cell can arrive per slot
because the write port of the buffer runs at the line rate.

All stochastic processes take an explicit seed so experiments and
property-based tests are reproducible.
"""

from __future__ import annotations

import abc
import random
from typing import Iterable, Iterator, List, Optional, Sequence


class ArrivalProcess(abc.ABC):
    """Interface of every arrival process."""

    @abc.abstractmethod
    def next_arrival(self, slot: int) -> Optional[int]:
        """Queue of the cell arriving at ``slot``, or ``None`` for an idle slot."""

    def arrivals(self, num_slots: int) -> Iterator[Optional[int]]:
        """Generate ``num_slots`` arrivals."""
        for slot in range(num_slots):
            yield self.next_arrival(slot)


class DeterministicArrivals(ArrivalProcess):
    """Replays a fixed per-slot pattern (cycling if shorter than the run)."""

    def __init__(self, pattern: Sequence[Optional[int]]) -> None:
        if not pattern:
            raise ValueError("pattern must not be empty")
        self.pattern = list(pattern)

    def next_arrival(self, slot: int) -> Optional[int]:
        return self.pattern[slot % len(self.pattern)]


class RoundRobinArrivals(ArrivalProcess):
    """One cell per slot, cycling over all queues — the arrival-side analogue
    of the round-robin adversary (keeps every queue equally backlogged)."""

    def __init__(self, num_queues: int, load: float = 1.0, seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        self.num_queues = num_queues
        self.load = load
        self._rng = random.Random(seed)
        self._next_queue = 0

    def next_arrival(self, slot: int) -> Optional[int]:
        if self.load < 1.0 and self._rng.random() >= self.load:
            return None
        queue = self._next_queue
        self._next_queue = (self._next_queue + 1) % self.num_queues
        return queue


class BernoulliArrivals(ArrivalProcess):
    """Independent per-slot arrivals with configurable queue popularity.

    Args:
        num_queues: number of VOQs.
        load: probability that a cell arrives in a slot.
        weights: relative popularity of each queue (uniform by default).
        seed: RNG seed.
    """

    def __init__(self,
                 num_queues: int,
                 load: float = 1.0,
                 weights: Optional[Sequence[float]] = None,
                 seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        if weights is not None and len(weights) != num_queues:
            raise ValueError("weights must have one entry per queue")
        if weights is not None and any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self.num_queues = num_queues
        self.load = load
        self.weights = list(weights) if weights is not None else [1.0] * num_queues
        self._rng = random.Random(seed)
        self._queues = list(range(num_queues))

    def next_arrival(self, slot: int) -> Optional[int]:
        if self._rng.random() >= self.load:
            return None
        return self._rng.choices(self._queues, weights=self.weights, k=1)[0]


class HotspotArrivals(BernoulliArrivals):
    """Bernoulli arrivals where a fraction of the traffic targets a small set
    of hot queues — the skewed pattern that provokes DRAM fragmentation when
    renaming is disabled."""

    def __init__(self,
                 num_queues: int,
                 hot_queues: Sequence[int],
                 hot_fraction: float = 0.9,
                 load: float = 1.0,
                 seed: int = 0) -> None:
        if not hot_queues:
            raise ValueError("hot_queues must not be empty")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        hot_set = set(hot_queues)
        if any(not 0 <= q < num_queues for q in hot_set):
            raise ValueError("hot queue index out of range")
        cold_count = num_queues - len(hot_set)
        weights: List[float] = []
        for queue in range(num_queues):
            if queue in hot_set:
                weights.append(hot_fraction / len(hot_set))
            else:
                weights.append((1.0 - hot_fraction) / cold_count if cold_count else 0.0)
        super().__init__(num_queues, load=load, weights=weights, seed=seed)
        self.hot_queues = sorted(hot_set)
        self.hot_fraction = hot_fraction


class BurstyArrivals(ArrivalProcess):
    """Two-state (on/off) Markov-modulated arrivals per queue.

    While a queue is *on* it receives a cell in every slot in which it is the
    active burst owner; bursts have geometrically distributed lengths.  This
    mimics the packet trains produced by segmenting large packets and by TCP
    windows, and is the standard bursty stressor for buffer designs.
    """

    def __init__(self,
                 num_queues: int,
                 mean_burst_cells: float = 16.0,
                 load: float = 1.0,
                 seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        if mean_burst_cells < 1.0:
            raise ValueError("mean_burst_cells must be >= 1")
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        self.num_queues = num_queues
        self.mean_burst_cells = mean_burst_cells
        self.load = load
        self._rng = random.Random(seed)
        self._current_queue: Optional[int] = None
        self._remaining_burst = 0

    def next_arrival(self, slot: int) -> Optional[int]:
        if self._rng.random() >= self.load:
            return None
        if self._remaining_burst <= 0:
            self._current_queue = self._rng.randrange(self.num_queues)
            # Geometric burst length with the requested mean (>= 1 cell).
            p = 1.0 / self.mean_burst_cells
            length = 1
            while self._rng.random() >= p:
                length += 1
            self._remaining_burst = length
        self._remaining_burst -= 1
        return self._current_queue
