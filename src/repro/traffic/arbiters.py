"""Per-slot request generators (models of the switch-fabric arbiter).

The head SRAM's dimensioning must hold for any request sequence the arbiter
can produce.  The generators here cover:

* the **round-robin adversary** — the pattern Section 3 singles out as the
  worst case for ECQF ("the scheduler requests goes through the queues in a
  round-robin manner removing one packet per queue"), which makes all SRAM
  queues drain at almost the same time;
* random and longest-queue arbiters for average-case studies;
* an oldest-cell (FIFO) arbiter used by the closed-loop examples.

Arbiters are given the per-queue backlog (cells present and not yet promised)
so they only issue admissible requests when driving a closed-loop buffer; for
the head-only worst-case studies the backlog is simply reported as unbounded.
"""

from __future__ import annotations

import abc
import random
from typing import List, Optional, Sequence

from repro.errors import ValidationError

class Arbiter(abc.ABC):
    """Interface of every request generator."""

    @abc.abstractmethod
    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        """Queue to request a cell from at ``slot``, or ``None`` to stay idle.

        ``backlog[q]`` is the number of cells of queue ``q`` the arbiter may
        still legally request.
        """


class RoundRobinAdversary(Arbiter):
    """The ECQF worst case: request one cell from each queue in turn.

    Queues with no backlog are skipped (so the pattern stays admissible in
    closed-loop use); with unbounded backlog the pattern is a strict
    round-robin, which drains every head-SRAM queue at the same rate.
    """

    def __init__(self, num_queues: int, start_queue: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        self.num_queues = num_queues
        self._next = start_queue % num_queues

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        for offset in range(self.num_queues):
            queue = (self._next + offset) % self.num_queues
            if backlog[queue] > 0:
                self._next = (queue + 1) % self.num_queues
                return queue
        return None


class RandomArbiter(Arbiter):
    """Requests a uniformly random backlogged queue, idling with probability
    ``1 - load``."""

    def __init__(self, num_queues: int, load: float = 1.0, seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        if not 0.0 <= load <= 1.0:
            raise ValidationError("load must be in [0, 1]")
        self.num_queues = num_queues
        self.load = load
        self._rng = random.Random(seed)

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        if self._rng.random() >= self.load:
            return None
        eligible = [q for q in range(self.num_queues) if backlog[q] > 0]
        if not eligible:
            return None
        return self._rng.choice(eligible)


class LongestQueueArbiter(Arbiter):
    """Always serves the queue with the largest backlog (ties to the lowest
    index) — a common switch-scheduler approximation."""

    def __init__(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        self.num_queues = num_queues

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        best_queue = None
        best_backlog = 0
        for queue in range(self.num_queues):
            if backlog[queue] > best_backlog:
                best_backlog = backlog[queue]
                best_queue = queue
        return best_queue


class OldestCellArbiter(Arbiter):
    """Work-conserving arbiter that serves queues in the order their backlog
    was created (approximated by smallest queue index among backlogged queues
    after rotating the start point each slot, which avoids starving high
    indices)."""

    def __init__(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        self.num_queues = num_queues
        self._rotation = 0

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        for offset in range(self.num_queues):
            queue = (self._rotation + offset) % self.num_queues
            if backlog[queue] > 0:
                self._rotation = (self._rotation + 1) % self.num_queues
                return queue
        return None


class StridedAdversary(Arbiter):
    """Parameterised generalisation of the Section 5 round-robin adversary.

    Visits queues in arithmetic-progression order with a configurable
    ``stride``, issuing ``burst`` consecutive requests to each queue before
    moving on.  ``stride=1, burst=1`` is exactly
    :class:`RoundRobinAdversary`; a stride that is coprime with the queue
    count still touches every queue but in a permuted order (stressing any
    structure that assumes adjacent queues drain together), and ``burst > 1``
    interpolates between the round-robin worst case and single-queue
    hammering.  Queues with no backlog are skipped so the pattern stays
    admissible in closed-loop use.
    """

    def __init__(self,
                 num_queues: int,
                 stride: int = 1,
                 burst: int = 1,
                 start_queue: int = 0) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        if stride < 1:
            raise ValidationError("stride must be at least 1")
        if burst < 1:
            raise ValidationError("burst must be at least 1")
        self.num_queues = num_queues
        self.stride = stride
        self.burst = burst
        self._current = start_queue % num_queues
        self._issued_in_burst = 0

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        if self._issued_in_burst < self.burst and backlog[self._current] > 0:
            self._issued_in_burst += 1
            return self._current
        # Burst finished (or current queue empty): walk the stride sequence
        # to the next backlogged queue.  When ``stride`` is coprime with the
        # queue count this visits every queue; otherwise only the stride's
        # cycle is served — deliberately allowed, it is an adversary.
        for _ in range(self.num_queues):
            self._current = (self._current + self.stride) % self.num_queues
            if backlog[self._current] > 0:
                self._issued_in_burst = 1
                return self._current
        self._issued_in_burst = 0
        return None


class IntermittentArbiter(Arbiter):
    """Wraps another arbiter with deterministic on/off service phases.

    Models fabric backpressure: the inner arbiter runs normally for
    ``on_slots``, then the output is stalled for ``off_slots`` (no requests at
    all), letting the buffer's backlog build before service resumes in a rush.
    The resulting request train is a simple adversary for the head SRAM's
    drain behaviour that no memoryless arbiter can produce.
    """

    def __init__(self, inner: Arbiter, on_slots: int, off_slots: int) -> None:
        if on_slots < 1:
            raise ValidationError("on_slots must be at least 1")
        if off_slots < 0:
            raise ValidationError("off_slots must be non-negative")
        self.inner = inner
        self.on_slots = on_slots
        self.off_slots = off_slots

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        phase = slot % (self.on_slots + self.off_slots)
        if phase >= self.on_slots:
            return None
        return self.inner.next_request(slot, backlog)


class TraceArbiter(Arbiter):
    """Replays a recorded per-slot request sequence exactly once.

    Recorded requests that are no longer admissible against the buffer being
    replayed into (possible when replaying a trace captured on a different
    buffer variant) are skipped rather than raised, matching the admissibility
    filtering the simulation engine applies.
    """

    def __init__(self, pattern: Sequence[Optional[int]]) -> None:
        self.pattern: List[Optional[int]] = list(pattern)

    def __len__(self) -> int:
        return len(self.pattern)

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        if not 0 <= slot < len(self.pattern):
            return None
        request = self.pattern[slot]
        if request is not None and backlog[request] <= 0:
            return None
        return request
