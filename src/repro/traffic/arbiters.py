"""Per-slot request generators (models of the switch-fabric arbiter).

The head SRAM's dimensioning must hold for any request sequence the arbiter
can produce.  The generators here cover:

* the **round-robin adversary** — the pattern Section 3 singles out as the
  worst case for ECQF ("the scheduler requests goes through the queues in a
  round-robin manner removing one packet per queue"), which makes all SRAM
  queues drain at almost the same time;
* random and longest-queue arbiters for average-case studies;
* an oldest-cell (FIFO) arbiter used by the closed-loop examples.

Arbiters are given the per-queue backlog (cells present and not yet promised)
so they only issue admissible requests when driving a closed-loop buffer; for
the head-only worst-case studies the backlog is simply reported as unbounded.
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Sequence


class Arbiter(abc.ABC):
    """Interface of every request generator."""

    @abc.abstractmethod
    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        """Queue to request a cell from at ``slot``, or ``None`` to stay idle.

        ``backlog[q]`` is the number of cells of queue ``q`` the arbiter may
        still legally request.
        """


class RoundRobinAdversary(Arbiter):
    """The ECQF worst case: request one cell from each queue in turn.

    Queues with no backlog are skipped (so the pattern stays admissible in
    closed-loop use); with unbounded backlog the pattern is a strict
    round-robin, which drains every head-SRAM queue at the same rate.
    """

    def __init__(self, num_queues: int, start_queue: int = 0) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.num_queues = num_queues
        self._next = start_queue % num_queues

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        for offset in range(self.num_queues):
            queue = (self._next + offset) % self.num_queues
            if backlog[queue] > 0:
                self._next = (queue + 1) % self.num_queues
                return queue
        return None


class RandomArbiter(Arbiter):
    """Requests a uniformly random backlogged queue, idling with probability
    ``1 - load``."""

    def __init__(self, num_queues: int, load: float = 1.0, seed: int = 0) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        self.num_queues = num_queues
        self.load = load
        self._rng = random.Random(seed)

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        if self._rng.random() >= self.load:
            return None
        eligible = [q for q in range(self.num_queues) if backlog[q] > 0]
        if not eligible:
            return None
        return self._rng.choice(eligible)


class LongestQueueArbiter(Arbiter):
    """Always serves the queue with the largest backlog (ties to the lowest
    index) — a common switch-scheduler approximation."""

    def __init__(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.num_queues = num_queues

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        best_queue = None
        best_backlog = 0
        for queue in range(self.num_queues):
            if backlog[queue] > best_backlog:
                best_backlog = backlog[queue]
                best_queue = queue
        return best_queue


class OldestCellArbiter(Arbiter):
    """Work-conserving arbiter that serves queues in the order their backlog
    was created (approximated by smallest queue index among backlogged queues
    after rotating the start point each slot, which avoids starving high
    indices)."""

    def __init__(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.num_queues = num_queues
        self._rotation = 0

    def next_request(self, slot: int, backlog: Sequence[int]) -> Optional[int]:
        for offset in range(self.num_queues):
            queue = (self._rotation + offset) % self.num_queues
            if backlog[queue] > 0:
                self._rotation = (self._rotation + 1) % self.num_queues
                return queue
        return None
