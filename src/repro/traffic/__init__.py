"""Traffic generation: packets, cells, arrival processes, arbiters and traces.

The paper's guarantees are *worst case* — they must hold for any arrival
pattern and any sequence of arbiter requests.  This package supplies both the
adversarial patterns used to stress those guarantees (most importantly the
round-robin request pattern Section 3 identifies as the worst case for ECQF)
and the stochastic/bursty patterns used for average-case studies and
property-based testing:

* :mod:`repro.traffic.packet` / :mod:`repro.traffic.segmentation` — variable
  size IP packets and their segmentation into 64-byte cells (and reassembly);
* :mod:`repro.traffic.arrivals` — per-slot cell arrival processes (Bernoulli,
  bursty on/off, hot-spot, deterministic);
* :mod:`repro.traffic.arbiters` — per-slot request generators (round-robin
  adversary, random, longest-queue-first, work-conserving wrappers);
* :mod:`repro.traffic.trace` — recording and replaying (arrival, request)
  traces so experiments are reproducible.
"""

from repro.traffic.packet import Packet
from repro.traffic.segmentation import Segmenter, Reassembler
from repro.traffic.arrivals import (
    ArrivalProcess,
    BernoulliArrivals,
    BurstyArrivals,
    HotspotArrivals,
    DeterministicArrivals,
    MarkovOnOffArrivals,
    ParetoBurstArrivals,
    RoundRobinArrivals,
    TraceArrivals,
    ZipfArrivals,
)
from repro.traffic.arbiters import (
    Arbiter,
    IntermittentArbiter,
    RoundRobinAdversary,
    RandomArbiter,
    LongestQueueArbiter,
    OldestCellArbiter,
    StridedAdversary,
    TraceArbiter,
)
from repro.traffic.trace import TrafficTrace, TraceRecorder

__all__ = [
    "Packet",
    "Segmenter",
    "Reassembler",
    "ArrivalProcess",
    "BernoulliArrivals",
    "BurstyArrivals",
    "HotspotArrivals",
    "DeterministicArrivals",
    "MarkovOnOffArrivals",
    "ParetoBurstArrivals",
    "RoundRobinArrivals",
    "TraceArrivals",
    "ZipfArrivals",
    "Arbiter",
    "IntermittentArbiter",
    "RoundRobinAdversary",
    "RandomArbiter",
    "LongestQueueArbiter",
    "OldestCellArbiter",
    "StridedAdversary",
    "TraceArbiter",
    "TrafficTrace",
    "TraceRecorder",
]
