"""Recording and replaying traffic traces.

A trace is the per-slot pair ``(arrival queue, request queue)`` (either may be
``None``).  Traces make experiments reproducible and let interesting
adversarial patterns found by the property-based tests be stored as
regression inputs.  The on-disk format is deliberately simple: one line per
slot, two comma-separated fields, ``-`` for "no event".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.errors import TraceFormatError
SlotEvent = Tuple[Optional[int], Optional[int]]


@dataclass
class TrafficTrace:
    """An in-memory trace of per-slot (arrival, request) events."""

    events: List[SlotEvent] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def append(self, arrival: Optional[int], request: Optional[int]) -> None:
        self.events.append((arrival, request))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SlotEvent]:
        return iter(self.events)

    def arrivals(self) -> List[Optional[int]]:
        return [arrival for arrival, _ in self.events]

    def requests(self) -> List[Optional[int]]:
        return [request for _, request in self.events]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Write the trace to ``path`` (one "arrival,request" line per slot)."""
        lines = []
        for arrival, request in self.events:
            lines.append(f"{self._fmt(arrival)},{self._fmt(request)}")
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""),
                              encoding="ascii")

    @classmethod
    def load(cls, path) -> "TrafficTrace":
        """Read a trace previously written by :meth:`save`."""
        trace = cls()
        text = Path(path).read_text(encoding="ascii")
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 2:
                raise TraceFormatError(f"{path}:{line_number}: expected 2 fields, got {len(parts)}")
            trace.append(cls._parse(parts[0]), cls._parse(parts[1]))
        return trace

    @staticmethod
    def _fmt(value: Optional[int]) -> str:
        return "-" if value is None else str(value)

    @staticmethod
    def _parse(token: str) -> Optional[int]:
        token = token.strip()
        return None if token == "-" else int(token)


class TraceRecorder:
    """Wraps an arrival process and an arbiter, recording what they produce."""

    def __init__(self, arrivals=None, arbiter=None) -> None:
        self.arrivals = arrivals
        self.arbiter = arbiter
        self.trace = TrafficTrace()

    def next_events(self, slot: int, backlog) -> SlotEvent:
        arrival = self.arrivals.next_arrival(slot) if self.arrivals is not None else None
        request = self.arbiter.next_request(slot, backlog) if self.arbiter is not None else None
        self.trace.append(arrival, request)
        return arrival, request
