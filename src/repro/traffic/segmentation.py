"""Segmentation of packets into cells and reassembly at the output.

Section 2 of the paper: "packets in the router are internally fragmented into
fixed-length 64 byte units that we call cells [...] they are reassembled at
the output port before packet transmission."
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.constants import CELL_SIZE_BYTES
from repro.errors import ValidationError
from repro.traffic.packet import Packet
from repro.types import Cell


class Segmenter:
    """Splits packets into per-queue sequences of cells.

    The segmenter owns the per-queue cell sequence numbers, so cells produced
    for the same queue — regardless of which packet they belong to — carry
    strictly increasing ``seqno`` values, which is the property the buffers'
    in-order delivery checks rely on.
    """

    def __init__(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise ValidationError("num_queues must be positive")
        self.num_queues = num_queues
        self._next_seqno: Dict[int, int] = defaultdict(int)

    def segment(self, packet: Packet) -> List[Cell]:
        """Return the cells of ``packet`` in transmission order."""
        if not 0 <= packet.queue < self.num_queues:
            raise ValidationError(f"packet queue {packet.queue} out of range")
        cells: List[Cell] = []
        total = packet.num_cells
        for offset in range(total):
            seqno = self._next_seqno[packet.queue]
            self._next_seqno[packet.queue] = seqno + 1
            cells.append(Cell(queue=packet.queue,
                              seqno=seqno,
                              packet_id=packet.packet_id,
                              offset=offset,
                              last=(offset == total - 1),
                              arrival_slot=packet.arrival_slot))
        return cells

    def cells_emitted(self, queue: int) -> int:
        """Total cells produced so far for ``queue``."""
        return self._next_seqno[queue]


class Reassembler:
    """Rebuilds packets from the cells leaving the buffer.

    Cells of one queue must arrive in order (that is the buffer's guarantee);
    cells of different queues may interleave arbitrarily.  A packet is
    complete when its ``last`` cell has been seen and every offset from 0 to
    that cell's offset is present.
    """

    def __init__(self) -> None:
        self._partial: Dict[int, List[Cell]] = defaultdict(list)
        self._completed: List[Packet] = []
        self._out_of_order = 0

    def push(self, cell: Cell) -> Optional[Packet]:
        """Account for one departing cell; return the reassembled packet when
        the cell completes one."""
        if cell.packet_id is None:
            return None
        fragments = self._partial[cell.packet_id]
        if fragments and cell.offset != fragments[-1].offset + 1:
            self._out_of_order += 1
        fragments.append(cell)
        if not cell.last:
            return None
        expected_offsets = list(range(cell.offset + 1))
        got_offsets = sorted(fragment.offset for fragment in fragments)
        if got_offsets != expected_offsets:
            self._out_of_order += 1
            return None
        packet = Packet(packet_id=cell.packet_id,
                        queue=cell.queue,
                        size_bytes=len(fragments) * CELL_SIZE_BYTES,
                        arrival_slot=fragments[0].arrival_slot)
        self._completed.append(packet)
        del self._partial[cell.packet_id]
        return packet

    @property
    def completed_packets(self) -> List[Packet]:
        return list(self._completed)

    @property
    def out_of_order_events(self) -> int:
        """Number of ordering anomalies observed (must stay zero when the
        buffer honours its in-order delivery guarantee)."""
        return self._out_of_order

    @property
    def pending_packets(self) -> int:
        return len(self._partial)
