"""Deterministic fault injection for the chaos harness.

See :mod:`repro.faults.injector` for the model: a :class:`FaultPlan` is a
pure function of ``(master_seed, site)`` deciding where worker kills,
transient/permanent exceptions, delays and file corruption strike, so any
fault schedule is exactly replayable from its seed.
"""

from repro.faults.injector import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    InjectedPermanentError,
    InjectedTransientError,
    InjectedWorkerKill,
    TransientJobError,
    WORKER_KILL_EXIT_CODE,
    get_injector,
    set_injector,
    using_faults,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "InjectedPermanentError",
    "InjectedTransientError",
    "InjectedWorkerKill",
    "TransientJobError",
    "WORKER_KILL_EXIT_CODE",
    "get_injector",
    "set_injector",
    "using_faults",
]
