"""Deterministic fault injection: every fault is a pure function of
``(master_seed, site)``.

A :class:`FaultPlan` names the fault *rates* (probability per kind) and a
master seed; a :class:`FaultInjector` evaluates sites against the plan.  A
*site* is a stable string naming one place a fault could strike — a job
attempt (``"job:figure8-oc768#3@attempt0"``), a cache entry
(``"cache-put:<key>"``), a checkpoint file (``"checkpoint-save:<label>:<slot>"``).
Whether a fault fires at a site, and which corruption it applies, is decided
by hashing ``(master_seed, kind, site)`` — no global RNG is consumed, so an
injected run draws exactly the same simulation randomness as a clean one,
and replaying the same plan reproduces the identical fault schedule.

Two properties make the chaos invariant provable:

* **Determinism** — the same plan always faults the same sites the same way,
  so a diverging schedule is replayable from its seed alone.
* **Bounded interference** — job-level faults never fire at or beyond
  ``max_faulted_attempts``, so any job granted enough retries eventually
  runs clean.  A schedule built only of transient kinds therefore always
  lets the sweep complete, and the completed reports must be bit-identical
  to the fault-free run (``repro fuzz --faults`` asserts exactly this).

The *active* injector follows the observability layer's pattern: a module
global read through :func:`get_injector` (one ``None`` check when disabled),
installed with :func:`set_injector` / :func:`using_faults`.  Worker processes
do not rely on inheriting it — the sweep runner ships the plan inside each
dispatched task and the worker installs its own injector.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "InjectedPermanentError",
    "InjectedTransientError",
    "InjectedWorkerKill",
    "TransientJobError",
    "WORKER_KILL_EXIT_CODE",
    "get_injector",
    "set_injector",
    "using_faults",
]

#: Exit code a worker uses when a ``worker_kill`` fault terminates it —
#: distinctive enough that a supervisor log line is unambiguous.
WORKER_KILL_EXIT_CODE = 137

#: Every fault kind a plan may rate.  Job-level kinds strike when a job
#: attempt starts; ``corrupt`` strikes files (cache entries, checkpoints).
FAULT_KINDS = ("worker_kill", "transient", "permanent", "delay", "corrupt")

#: Job-level kinds, evaluated in this fixed order so a site's outcome is
#: independent of dict ordering in the plan.
_JOB_KINDS = ("worker_kill", "transient", "permanent", "delay")


class TransientJobError(ReproError):
    """A job failure the sweep runner should retry (with backoff).

    Job functions may raise this (or a subclass) to signal that the failure
    is environmental — a flaky filesystem, a lost worker — rather than a
    property of the job itself.  Any other exception is treated as permanent
    and quarantines the job after its first attempt.
    """


class InjectedFault(ReproError):
    """Base class for failures raised by the fault injector."""


class InjectedTransientError(TransientJobError, InjectedFault):
    """An injected failure the runner is expected to retry away."""


class InjectedPermanentError(InjectedFault):
    """An injected failure that must quarantine the job (poison-pill)."""


class InjectedWorkerKill(TransientJobError, InjectedFault):
    """Stand-in for a worker death when no worker process exists to kill.

    The in-process execution path cannot SIGKILL itself, so a ``worker_kill``
    fault degrades to this transient error there; the pool path performs a
    real ``os._exit`` so dead-worker detection is exercised for real.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule: a master seed plus per-kind rates.

    Attributes:
        master_seed: seed every site decision hashes against.
        rates: mapping of fault kind (:data:`FAULT_KINDS`) to firing
            probability in ``[0, 1]``.  Unlisted kinds never fire.
        max_faulted_attempts: job-level faults only fire while a job's
            attempt number is below this — the guarantee that a retried job
            eventually runs clean.  File corruption is not attempt-scoped.
        delay_s: sleep applied by a ``delay`` fault.
    """

    master_seed: int
    rates: Mapping[str, float] = field(default_factory=dict)
    max_faulted_attempts: int = 2
    delay_s: float = 0.002

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r} (known: "
                    f"{', '.join(FAULT_KINDS)})")
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate for {kind!r} must be in [0, 1], got {rate}")
        if self.max_faulted_attempts < 0:
            raise ConfigurationError("max_faulted_attempts must be >= 0")
        if self.delay_s < 0:
            raise ConfigurationError("delay_s must be >= 0")

    def to_json(self) -> Dict[str, Any]:
        """JSON form, used to ship the plan into worker processes."""
        return {"master_seed": self.master_seed, "rates": dict(self.rates),
                "max_faulted_attempts": self.max_faulted_attempts,
                "delay_s": self.delay_s}

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "FaultPlan":
        return cls(master_seed=document["master_seed"],
                   rates=dict(document.get("rates", {})),
                   max_faulted_attempts=document.get("max_faulted_attempts",
                                                     2),
                   delay_s=document.get("delay_s", 0.002))


class FaultInjector:
    """Evaluates sites against a :class:`FaultPlan`, deterministically."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Count of faults this injector has fired, by kind (observability
        #: only; never consulted by a decision).
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def _roll(self, kind: str, site: str) -> float:
        """A uniform value in ``[0, 1)`` — pure in (master_seed, kind, site)."""
        text = f"{self.plan.master_seed}|{kind}|{site}"
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def _fires(self, kind: str, site: str) -> bool:
        rate = self.plan.rates.get(kind, 0.0)
        return rate > 0.0 and self._roll(kind, site) < rate

    def _record(self, kind: str) -> None:
        self.fired[kind] = self.fired.get(kind, 0) + 1

    # ------------------------------------------------------------------ #
    def job_fault(self, site: str, attempt: int) -> Optional[str]:
        """The fault kind striking job-site ``site`` at ``attempt``, if any.

        Returns ``None`` at or beyond ``max_faulted_attempts`` regardless of
        rates — the progress guarantee retried jobs rely on.
        """
        if attempt >= self.plan.max_faulted_attempts:
            return None
        scoped = f"{site}@attempt{attempt}"
        for kind in _JOB_KINDS:
            if self._fires(kind, scoped):
                self._record(kind)
                return kind
        return None

    def apply_job_fault(self, site: str, attempt: int) -> None:
        """Strike a job attempt: kill, raise, or delay per the plan.

        Called by the sweep runner's task wrapper right before the job body
        runs.  ``worker_kill`` performs a real ``os._exit`` only inside a
        daemonic worker process; anywhere else it degrades to
        :class:`InjectedWorkerKill` (transient) so the caller's process
        survives.
        """
        kind = self.job_fault(site, attempt)
        if kind is None:
            return
        if kind == "worker_kill":
            import multiprocessing

            if multiprocessing.current_process().daemon:
                os._exit(WORKER_KILL_EXIT_CODE)
            raise InjectedWorkerKill(
                f"injected worker kill at {site} (attempt {attempt})")
        if kind == "transient":
            raise InjectedTransientError(
                f"injected transient fault at {site} (attempt {attempt})")
        if kind == "permanent":
            raise InjectedPermanentError(f"injected permanent fault at {site}")
        # delay
        import time

        time.sleep(self.plan.delay_s)

    # ------------------------------------------------------------------ #
    def corrupt_file(self, path: os.PathLike, site: str) -> bool:
        """Maybe corrupt the file at ``path``; returns True when it did.

        The corruption itself is deterministic in the site: half the firing
        sites truncate (a torn write), the other half flip one byte (media
        rot).  A missing or empty file is left alone.
        """
        if not self._fires("corrupt", site):
            return False
        path = os.fspath(path)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return False
        if not data:
            return False
        position = int(self._roll("corrupt-position", site) * len(data))
        position = min(position, len(data) - 1)
        if self._roll("corrupt-mode", site) < 0.5:
            corrupted = data[:position]
        else:
            corrupted = (data[:position]
                         + bytes([data[position] ^ 0x40])
                         + data[position + 1:])
        try:
            with open(path, "wb") as handle:
                handle.write(corrupted)
        except OSError:
            return False
        self._record("corrupt")
        return True


# --------------------------------------------------------------------- #
# The active injector (module global, mirroring repro.obs.metrics).

_active_injector: Optional[FaultInjector] = None


def get_injector() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None`` (the default)."""
    return _active_injector


def set_injector(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install ``injector`` globally (``None`` disables fault injection)."""
    global _active_injector
    _active_injector = injector
    return injector


@contextlib.contextmanager
def using_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Temporarily install ``injector`` (context manager)."""
    previous = get_injector()
    set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)
