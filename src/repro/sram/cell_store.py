"""Reference shared SRAM store used by the buffer simulators."""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.sram.base import SRAMCellStore
from repro.types import Cell


class SharedSRAM(SRAMCellStore):
    """Dictionary/heap based shared cell store.

    Cells are kept per queue in a min-heap ordered by ``seqno`` so that
    out-of-order insertion (which happens in CFDS, where DRAM blocks can be
    delivered in a different order than they were requested) still yields
    in-order retrieval.  This is the store the simulators use because it is
    the fastest of the three behavioural models; the CAM and linked-list
    stores exist to model the hardware organisations and are checked for
    equivalence against this one in the test suite.
    """

    def __init__(self, num_queues: int, capacity_cells: Optional[int] = None) -> None:
        super().__init__(capacity_cells)
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.num_queues = num_queues
        self._heaps: Dict[int, List] = {q: [] for q in range(num_queues)}
        self._total = 0

    def insert(self, cell: Cell) -> None:
        self._check_queue(cell.queue)
        self._check_capacity(self._total + 1)
        heapq.heappush(self._heaps[cell.queue], (cell.seqno, id(cell), cell))
        self._total += 1
        self._note_occupancy(self._total)

    def pop_next(self, queue: int) -> Optional[Cell]:
        self._check_queue(queue)
        heap = self._heaps[queue]
        if not heap:
            return None
        _, _, cell = heapq.heappop(heap)
        self._total -= 1
        return cell

    def peek_next(self, queue: int) -> Optional[Cell]:
        self._check_queue(queue)
        heap = self._heaps[queue]
        if not heap:
            return None
        return heap[0][2]

    def occupancy(self, queue: Optional[int] = None) -> int:
        if queue is None:
            return self._total
        self._check_queue(queue)
        return len(self._heaps[queue])

    def _check_queue(self, queue: int) -> None:
        if not 0 <= queue < self.num_queues:
            raise ValueError(f"queue {queue} out of range (0..{self.num_queues - 1})")
