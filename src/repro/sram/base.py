"""Abstract interface for shared SRAM cell stores."""

from __future__ import annotations

import abc
from typing import Iterable, Optional

from repro.types import Cell


class SRAMCellStore(abc.ABC):
    """A bounded, shared store of cells organised as per-queue FIFOs.

    Implementations differ in *how* they locate the next cell of a queue
    (associative search in :class:`~repro.sram.global_cam.GlobalCAMStore`,
    pointer chasing in
    :class:`~repro.sram.linked_list.UnifiedLinkedListStore`, plain Python
    dictionaries in :class:`~repro.sram.cell_store.SharedSRAM`), but they all
    expose the same operations, which is what lets the buffer simulators and
    the property-based equivalence tests treat them interchangeably.
    """

    def __init__(self, capacity_cells: Optional[int]) -> None:
        if capacity_cells is not None and capacity_cells <= 0:
            raise ValueError("capacity_cells must be positive (or None for unbounded)")
        self.capacity_cells = capacity_cells
        self._peak_occupancy = 0

    # -- operations every store must provide --------------------------------
    @abc.abstractmethod
    def insert(self, cell: Cell) -> None:
        """Add one cell.  Cells of the same queue may arrive out of order
        (CFDS); the store must still return them in ``seqno`` order."""

    @abc.abstractmethod
    def pop_next(self, queue: int) -> Optional[Cell]:
        """Remove and return the lowest-``seqno`` resident cell of ``queue``,
        or ``None`` if the store currently holds no cell of that queue."""

    @abc.abstractmethod
    def peek_next(self, queue: int) -> Optional[Cell]:
        """Return (without removing) the lowest-``seqno`` resident cell."""

    @abc.abstractmethod
    def occupancy(self, queue: Optional[int] = None) -> int:
        """Number of resident cells (for one queue or in total)."""

    # -- shared helpers ------------------------------------------------------
    def insert_block(self, cells: Iterable[Cell]) -> None:
        """Insert a batch of cells (one DRAM->SRAM transfer)."""
        for cell in cells:
            self.insert(cell)

    def has_cell(self, queue: int) -> bool:
        """True if at least one cell of ``queue`` is resident."""
        return self.peek_next(queue) is not None

    @property
    def peak_occupancy(self) -> int:
        """Largest total occupancy ever observed (for dimensioning checks)."""
        return self._peak_occupancy

    def _note_occupancy(self, occupancy: int) -> None:
        if occupancy > self._peak_occupancy:
            self._peak_occupancy = occupancy

    def _check_capacity(self, occupancy_after_insert: int) -> None:
        from repro.errors import BufferOverflowError

        if self.capacity_cells is not None and occupancy_after_insert > self.capacity_cells:
            raise BufferOverflowError("SRAM", self.capacity_cells, occupancy_after_insert)
