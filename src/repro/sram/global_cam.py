"""Functional model of the paper's "global CAM" shared-SRAM organisation.

Section 7.1 describes a fully content-addressable memory in which every
resident cell is stored in an arbitrary free entry together with a tag
``(queue identifier, relative order within the queue)``.  Reading the next
cell of a queue is an associative search on the tag.  This module models that
organisation explicitly: a flat entry array, a free list, and tag matching —
so tests can verify it behaves exactly like the reference store, and so the
out-of-order write path CFDS needs (Section 8.2: "the implementation of
out-of-order writing operations is trivial in this configuration") is
demonstrated rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sram.base import SRAMCellStore
from repro.types import Cell


@dataclass
class _CAMEntry:
    """One CAM entry: a valid bit, the tag and the stored cell."""

    valid: bool = False
    queue: int = -1
    order: int = -1
    cell: Optional[Cell] = None


class GlobalCAMStore(SRAMCellStore):
    """Content-addressable shared store.

    The ``order`` half of the tag is the per-queue arrival number modulo a
    wrap window.  Hardware would size this field just large enough to cover
    the maximum number of resident cells per queue; the model keeps the full
    sequence number but additionally records per-queue *next expected order*
    so that the associative lookup mirrors what the hardware match lines do:
    "find the entry whose tag equals (q, next_order[q])".
    """

    def __init__(self, num_queues: int, capacity_cells: int) -> None:
        super().__init__(capacity_cells)
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.num_queues = num_queues
        self._entries: List[_CAMEntry] = [_CAMEntry() for _ in range(capacity_cells)]
        self._free: List[int] = list(range(capacity_cells - 1, -1, -1))
        self._next_order: Dict[int, int] = {}
        self._total = 0

    # ------------------------------------------------------------------ #
    # SRAMCellStore interface
    # ------------------------------------------------------------------ #
    def insert(self, cell: Cell) -> None:
        self._check_queue(cell.queue)
        self._check_capacity(self._total + 1)
        if not self._free:
            # capacity_cells is authoritative; _check_capacity already raised
            # unless capacity is None, which this organisation does not allow.
            from repro.errors import BufferOverflowError

            raise BufferOverflowError("global CAM", len(self._entries), self._total + 1)
        slot = self._free.pop()
        entry = self._entries[slot]
        entry.valid = True
        entry.queue = cell.queue
        entry.order = cell.seqno
        entry.cell = cell
        self._total += 1
        self._note_occupancy(self._total)
        # Track the lowest outstanding order per queue so lookups know which
        # tag to search for.
        if cell.queue not in self._next_order or cell.seqno < self._next_order[cell.queue]:
            self._next_order[cell.queue] = min(
                self._next_order.get(cell.queue, cell.seqno), cell.seqno)

    def pop_next(self, queue: int) -> Optional[Cell]:
        index = self._match(queue)
        if index is None:
            return None
        entry = self._entries[index]
        cell = entry.cell
        entry.valid = False
        entry.cell = None
        self._free.append(index)
        self._total -= 1
        assert cell is not None
        # Advance the expected order for this queue.
        self._next_order[queue] = cell.seqno + 1
        return cell

    def peek_next(self, queue: int) -> Optional[Cell]:
        index = self._match(queue)
        if index is None:
            return None
        return self._entries[index].cell

    def occupancy(self, queue: Optional[int] = None) -> int:
        if queue is None:
            return self._total
        self._check_queue(queue)
        return sum(1 for e in self._entries if e.valid and e.queue == queue)

    # ------------------------------------------------------------------ #
    # Associative search
    # ------------------------------------------------------------------ #
    def _match(self, queue: int) -> Optional[int]:
        """Return the entry index holding the lowest-order valid cell of
        ``queue`` (what the hardware's match-line + priority encoder does)."""
        self._check_queue(queue)
        best_index: Optional[int] = None
        best_order: Optional[int] = None
        for i, entry in enumerate(self._entries):
            if entry.valid and entry.queue == queue:
                if best_order is None or entry.order < best_order:
                    best_order = entry.order
                    best_index = i
        return best_index

    def _check_queue(self, queue: int) -> None:
        if not 0 <= queue < self.num_queues:
            raise ValueError(f"queue {queue} out of range (0..{self.num_queues - 1})")
