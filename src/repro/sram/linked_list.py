"""Functional model of the paper's "unified linked list" SRAM organisation.

Section 7.1 describes the minimum-area design: one direct-mapped cell array in
which every entry holds a cell plus a pointer to the next entry of the same
list, and a small side table with the head and tail pointers of each queue.
Section 8.2 extends it for CFDS: because CFDS can deliver blocks of the same
queue out of order, the structure is split into ``(B/b) x Q`` lists — one list
per (queue, bank-within-group) — since two operations on the same bank are
always performed in order.

This module implements both variants with explicit pointer arrays (no Python
lists of cells), so the pointer manipulations the paper argues about are
actually exercised by the tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import BufferOverflowError
from repro.sram.base import SRAMCellStore
from repro.types import Cell

#: Sentinel for "no entry" in the pointer arrays.
NIL: int = -1


class UnifiedLinkedListStore(SRAMCellStore):
    """Direct-mapped cell array with explicit linked lists per sub-queue.

    Args:
        num_queues: number of (physical) queues sharing the store.
        capacity_cells: number of entries in the cell array.
        lists_per_queue: 1 reproduces the plain RADS organisation; ``B/b``
            reproduces the CFDS-modified organisation in which cells of the
            same queue are distributed over per-bank lists in round-robin
            order of their block index.
        block_cells: cells per DRAM block (``b``); used to derive the block
            index of a cell from its sequence number when
            ``lists_per_queue > 1``.
    """

    def __init__(self,
                 num_queues: int,
                 capacity_cells: int,
                 *,
                 lists_per_queue: int = 1,
                 block_cells: int = 1) -> None:
        super().__init__(capacity_cells)
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        if lists_per_queue <= 0:
            raise ValueError("lists_per_queue must be positive")
        if block_cells <= 0:
            raise ValueError("block_cells must be positive")
        self.num_queues = num_queues
        self.lists_per_queue = lists_per_queue
        self.block_cells = block_cells

        # The direct-mapped arrays a hardware implementation would have.
        self._cells: List[Optional[Cell]] = [None] * capacity_cells
        self._next: List[int] = [NIL] * capacity_cells
        self._free_head: int = 0
        for i in range(capacity_cells - 1):
            self._next[i] = i + 1
        if capacity_cells > 0:
            self._next[capacity_cells - 1] = NIL

        # Head/tail pointer table, one entry per (queue, sub-list).
        self._head: Dict[Tuple[int, int], int] = {}
        self._tail: Dict[Tuple[int, int], int] = {}
        self._total = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _sublist(self, cell_seqno: int) -> int:
        """Sub-list index for a cell: the bank-within-group its block maps to."""
        block_index = cell_seqno // self.block_cells
        return block_index % self.lists_per_queue

    def _alloc(self) -> int:
        if self._free_head == NIL:
            raise BufferOverflowError("unified linked list", len(self._cells), self._total + 1)
        index = self._free_head
        self._free_head = self._next[index]
        self._next[index] = NIL
        return index

    def _release(self, index: int) -> None:
        self._cells[index] = None
        self._next[index] = self._free_head
        self._free_head = index

    # ------------------------------------------------------------------ #
    # SRAMCellStore interface
    # ------------------------------------------------------------------ #
    def insert(self, cell: Cell) -> None:
        self._check_queue(cell.queue)
        self._check_capacity(self._total + 1)
        key = (cell.queue, self._sublist(cell.seqno))
        index = self._alloc()
        self._cells[index] = cell
        old_tail = self._tail.get(key, NIL)
        if old_tail == NIL:
            self._head[key] = index
        else:
            self._next[old_tail] = index
        self._tail[key] = index
        self._total += 1
        self._note_occupancy(self._total)

    def pop_next(self, queue: int) -> Optional[Cell]:
        self._check_queue(queue)
        key = self._lowest_key(queue)
        if key is None:
            return None
        index = self._head[key]
        cell = self._cells[index]
        assert cell is not None
        nxt = self._next[index]
        if nxt == NIL:
            del self._head[key]
            del self._tail[key]
        else:
            self._head[key] = nxt
        self._release(index)
        self._total -= 1
        return cell

    def peek_next(self, queue: int) -> Optional[Cell]:
        self._check_queue(queue)
        key = self._lowest_key(queue)
        if key is None:
            return None
        return self._cells[self._head[key]]

    def occupancy(self, queue: Optional[int] = None) -> int:
        if queue is None:
            return self._total
        self._check_queue(queue)
        count = 0
        for sublist in range(self.lists_per_queue):
            index = self._head.get((queue, sublist), NIL)
            while index != NIL:
                count += 1
                index = self._next[index]
        return count

    # ------------------------------------------------------------------ #
    # Internal: choose which sub-list holds the next in-order cell.
    # ------------------------------------------------------------------ #
    def _lowest_key(self, queue: int) -> Optional[Tuple[int, int]]:
        """Return the (queue, sub-list) key whose head cell has the lowest
        sequence number; hardware achieves the same by keeping a small
        per-queue cursor over the ``B/b`` sub-lists."""
        best_key: Optional[Tuple[int, int]] = None
        best_seq: Optional[int] = None
        for sublist in range(self.lists_per_queue):
            key = (queue, sublist)
            index = self._head.get(key, NIL)
            if index == NIL:
                continue
            cell = self._cells[index]
            assert cell is not None
            if best_seq is None or cell.seqno < best_seq:
                best_seq = cell.seqno
                best_key = key
        return best_key

    def _check_queue(self, queue: int) -> None:
        if not 0 <= queue < self.num_queues:
            raise ValueError(f"queue {queue} out of range (0..{self.num_queues - 1})")
