"""SRAM cache substrate.

The head and tail SRAMs of the hybrid buffer are *shared* (all queues live in
one physical memory) because that minimises total capacity.  This package
provides:

* :mod:`repro.sram.base` — the abstract interface every cell store implements,
  plus occupancy accounting shared by all implementations;
* :mod:`repro.sram.cell_store` — the reference dictionary-based shared store
  used by the simulators (fast, order-aware, supports the out-of-order block
  insertion CFDS needs);
* :mod:`repro.sram.global_cam` — a functional model of the paper's
  "global CAM" organisation (Section 7.1): every cell carries a
  (queue, order) tag and lookups are associative;
* :mod:`repro.sram.linked_list` — a functional model of the paper's
  "unified linked list" organisation: one direct-mapped cell array with
  explicit next-pointers plus a head/tail pointer table, including the
  per-bank split (``(B/b) x Q`` lists) that CFDS needs to tolerate
  out-of-order writes.

The physical (area / access-time) models of these organisations live in
:mod:`repro.tech.sram_designs`; here we model behaviour so the data-structure
manipulations the paper describes can be executed and tested.
"""

from repro.sram.base import SRAMCellStore
from repro.sram.cell_store import SharedSRAM
from repro.sram.global_cam import GlobalCAMStore
from repro.sram.linked_list import UnifiedLinkedListStore

__all__ = [
    "SRAMCellStore",
    "SharedSRAM",
    "GlobalCAMStore",
    "UnifiedLinkedListStore",
]
