"""Experiment jobs: the unit of work the sweep runner executes.

A :class:`Job` names a module-level function by dotted path and carries
JSON-serialisable keyword arguments.  Keeping jobs declarative (strings and
plain values, no live objects) buys three properties at once:

* they pickle trivially, so a :mod:`multiprocessing` pool can execute them in
  worker processes;
* they hash stably, so the on-disk result cache can key on the job itself;
* they print usefully, so the CLI's ``--dry-run`` can show exactly what an
  experiment would compute.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

from repro.errors import ConfigurationError

#: Separator between module path and attribute path in a job's ``func``.
FUNC_SEPARATOR = ":"


@dataclass(frozen=True)
class Job:
    """One unit of experiment work: ``func(**kwargs)``.

    Attributes:
        func: dotted path of a module-level callable, written as
            ``"package.module:function"``.
        kwargs: keyword arguments for the call; must be JSON-serialisable so
            the job can be hashed, cached and shipped to worker processes.
        tag: free-form label used by experiments to regroup results (e.g. the
            panel a point belongs to); not part of the computation.
    """

    func: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    tag: str = ""

    def __post_init__(self) -> None:
        if FUNC_SEPARATOR not in self.func:
            raise ConfigurationError(
                f"job func {self.func!r} must be written as 'module:attribute'")
        try:
            json.dumps(dict(self.kwargs), sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"job kwargs for {self.func} are not JSON-serialisable: {exc}")

    # ------------------------------------------------------------------ #
    def resolve(self) -> Callable[..., Any]:
        """Import and return the callable this job names."""
        return resolve_function(self.func)

    def describe(self) -> str:
        """One-line human-readable form, used by ``--dry-run``.

        Oversized values (e.g. an inline trace pattern) are elided so the
        line stays readable; the cache key always uses the full kwargs.
        """
        parts = []
        for key, value in sorted(self.kwargs.items()):
            rendered = repr(value)
            if len(rendered) > 120:
                rendered = f"{rendered[:117]}..."
            parts.append(f"{key}={rendered}")
        return f"{self.func}({', '.join(parts)})"

    def signature(self) -> Dict[str, Any]:
        """The canonical, hashable identity of this job (used by the cache).

        The ``tag`` is deliberately excluded: it influences presentation, not
        the computed value.
        """
        return {"func": self.func, "kwargs": dict(self.kwargs)}


def resolve_function(path: str) -> Callable[..., Any]:
    """Resolve ``"package.module:attr"`` (or ``:attr.subattr``) to a callable."""
    module_path, _, attr_path = path.partition(FUNC_SEPARATOR)
    if not module_path or not attr_path:
        raise ConfigurationError(f"malformed function path {path!r}")
    try:
        target: Any = importlib.import_module(module_path)
    except ImportError as exc:
        raise ConfigurationError(f"cannot import module {module_path!r}: {exc}")
    for part in attr_path.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise ConfigurationError(
                f"module {module_path!r} has no attribute {attr_path!r}")
    if not callable(target):
        raise ConfigurationError(f"{path!r} does not name a callable")
    return target


def run_job(job: Job) -> Any:
    """Execute one job.  Module-level so a worker process can import it."""
    return job.resolve()(**job.kwargs)
