"""JSON round-tripping for experiment results.

Every analysis module returns frozen dataclasses of plain numbers and strings
(:class:`~repro.analysis.figure8.Figure8Point` and friends).  The on-disk
cache stores them as JSON; this module tags each dataclass with its dotted
class path so the cached value reconstructs to an object that compares equal
to a freshly computed one — the property the runner's equivalence tests rely
on.

Only value-like dataclasses are supported: fields must themselves be
JSON-serialisable or nested dataclasses/lists/dicts thereof.  That covers all
experiment result types by construction; anything richer (live buffers,
technology-model objects) does not belong in a cacheable result.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any

from repro.errors import ConfigurationError

#: Tag key marking a serialised dataclass.
DATACLASS_TAG = "__dataclass__"
#: Tag key marking a serialised tuple (JSON has no tuple type).
TUPLE_TAG = "__tuple__"


def to_jsonable(value: Any) -> Any:
    """Convert an experiment result to a JSON-serialisable structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = {f.name: to_jsonable(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {DATACLASS_TAG: f"{cls.__module__}:{cls.__qualname__}",
                "fields": fields}
    if isinstance(value, tuple):
        return {TUPLE_TAG: [to_jsonable(item) for item in value]}
    if isinstance(value, list):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                # JSON object keys are strings; keep numeric keys round-trippable.
                raise ConfigurationError(
                    f"cannot serialise dict with non-string key {key!r}")
            out[key] = to_jsonable(item)
        return out
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot serialise value of type {type(value).__name__} for the cache")


def from_jsonable(value: Any) -> Any:
    """Inverse of :func:`to_jsonable`."""
    if isinstance(value, dict):
        if DATACLASS_TAG in value:
            cls = _resolve_class(value[DATACLASS_TAG])
            fields = {name: from_jsonable(item)
                      for name, item in value["fields"].items()}
            return cls(**fields)
        if TUPLE_TAG in value:
            return tuple(from_jsonable(item) for item in value[TUPLE_TAG])
        return {key: from_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [from_jsonable(item) for item in value]
    return value


def _resolve_class(path: str) -> type:
    module_path, _, qualname = path.partition(":")
    try:
        target: Any = importlib.import_module(module_path)
    except ImportError as exc:
        raise ConfigurationError(
            f"cached result references unimportable module {module_path!r}: {exc}")
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise ConfigurationError(
                f"cached result references unknown class {path!r}")
    if not (isinstance(target, type) and dataclasses.is_dataclass(target)):
        raise ConfigurationError(f"{path!r} is not a dataclass")
    return target
