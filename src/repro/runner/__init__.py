"""Parallel, cached experiment execution.

The analysis modules under :mod:`repro.analysis` describe *what* to compute
(one :class:`Job` per sweep point); this package decides *how*: the
:class:`SweepRunner` executes job lists serially or over a
:mod:`multiprocessing` pool with deterministic result ordering, the
:class:`ResultCache` persists results as JSON under ``.repro_cache/<version>/``
so re-running a figure is near-instant, and :mod:`repro.runner.cli` exposes
it all as the ``python -m repro`` command.

Typical library use::

    from repro.runner import ResultCache, SweepRunner, using_runner
    from repro.analysis.figure8 import figure8

    with using_runner(SweepRunner(jobs=4, cache=ResultCache())):
        points = figure8("OC-3072")   # parallel + cached, same numbers
"""

from repro.runner.cache import MISS, ResultCache
from repro.runner.jobs import Job, resolve_function, run_job
from repro.runner.serialize import from_jsonable, to_jsonable
from repro.runner.sweep import (
    SweepRunner,
    default_jobs,
    get_runner,
    set_runner,
    using_runner,
)

# NOTE: repro.runner.experiments (the registry behind the CLI) is deliberately
# not imported here.  It imports the analysis modules, which in turn import
# this package for Job/SweepRunner — importing it eagerly would make
# ``import repro.analysis.figure8`` circular.  Import it explicitly:
# ``from repro.runner.experiments import EXPERIMENTS``.

__all__ = [
    "Job",
    "resolve_function",
    "run_job",
    "ResultCache",
    "MISS",
    "SweepRunner",
    "default_jobs",
    "get_runner",
    "set_runner",
    "using_runner",
    "to_jsonable",
    "from_jsonable",
]
