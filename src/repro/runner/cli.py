"""The ``python -m repro`` command line.

Reproduce any exhibit of the paper from a terminal::

    python -m repro figure8              # one exhibit
    python -m repro all --jobs 4         # everything, 4 worker processes
    python -m repro figure10 --no-cache  # force recomputation
    python -m repro table2 -o table2.txt # write the report to a file
    python -m repro scaling --dry-run    # show the jobs, compute nothing

Results are cached as JSON under ``.repro_cache/<version>/`` keyed by the
job's configuration and the package version, so a second invocation of the
same exhibit is served from disk without re-simulating.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

import repro
from repro.errors import ReproError
from repro.runner.cache import ResultCache
from repro.runner.experiments import EXPERIMENTS, get_experiment
from repro.runner.sweep import SweepRunner

#: Subcommand that runs every registered experiment.
ALL = "all"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=("Reproduce the tables and figures of 'Design and "
                     "Implementation of High-Performance Memory Systems for "
                     "Future Packet Buffers' (Garcia et al., MICRO-36, 2003)."))
    parser.add_argument("--version", action="version",
                        version=f"repro {repro.__version__}")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep (0 = one per "
                             "CPU; default: 1, serial)")
    common.add_argument("--no-cache", action="store_true",
                        help="recompute everything; neither read nor write "
                             "the on-disk result cache")
    common.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache root directory (default: .repro_cache)")
    common.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="write the report to FILE instead of stdout")
    common.add_argument("--dry-run", action="store_true",
                        help="print the jobs the experiment would run, "
                             "without computing anything")

    subparsers = parser.add_subparsers(dest="experiment", metavar="EXPERIMENT")
    for name, spec in EXPERIMENTS.items():
        subparsers.add_parser(name, parents=[common], help=spec.description,
                              description=f"{spec.title}. {spec.description}")
    subparsers.add_parser(
        ALL, parents=[common], help="run every experiment",
        description="Reproduce every registered exhibit in one run.")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment is None:
        parser.print_help()
        return 2

    names = list(EXPERIMENTS) if args.experiment == ALL else [args.experiment]
    specs = [get_experiment(name) for name in names]

    if args.dry_run:
        lines: List[str] = []
        for spec in specs:
            jobs = spec.build_jobs()
            lines.append(f"{spec.name}: {len(jobs)} jobs")
            lines.extend(f"  {job.describe()}" for job in jobs)
        return _emit("\n".join(lines), args.output)

    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    try:
        runner = SweepRunner(jobs=args.jobs, cache=cache)
    except ReproError as exc:
        parser.error(str(exc))

    blocks: List[str] = []
    started = time.perf_counter()
    for spec in specs:
        jobs = spec.build_jobs()
        try:
            results = runner.run(jobs)
        except ReproError as exc:
            print(f"error while running {spec.name}: {exc}", file=sys.stderr)
            return 1
        blocks.append(f"== {spec.title} ==\n\n{spec.render(results, jobs)}")
    elapsed = time.perf_counter() - started

    hits = cache.hits if cache is not None else 0
    blocks.append(f"[runner] {runner.executed} jobs executed, {hits} cache "
                  f"hits, {runner.jobs} worker(s), {elapsed:.2f} s")
    return _emit("\n\n".join(blocks), args.output)


def _emit(text: str, output: Optional[str]) -> int:
    if output is None:
        print(text)
        return 0
    try:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    except OSError as exc:
        print(f"error: cannot write {output}: {exc}", file=sys.stderr)
        return 1
    return 0
