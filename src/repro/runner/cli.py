"""The ``python -m repro`` command line.

Reproduce any exhibit of the paper from a terminal::

    python -m repro figure8              # one exhibit
    python -m repro all --jobs 4         # everything, 4 worker processes
    python -m repro figure10 --no-cache  # force recomputation
    python -m repro table2 -o table2.txt # write the report to a file
    python -m repro scaling --dry-run    # show the jobs, compute nothing

and drive the workload subsystem::

    python -m repro scenario --list                   # registered scenarios
    python -m repro scenario bursty-trains            # run one scenario
    python -m repro scenario zipf-hotspot --slots 50000
    python -m repro scenario zipf-hotspot --engine array     # SoA fast core
    python -m repro scenario bursty-trains --record t.rtrc   # capture trace
    python -m repro scenario zipf-hotspot --replay t.rtrc    # replay it

and sustain long-horizon streaming runs (bounded memory, steady-state
measurement, crash-resumable)::

    python -m repro scenario uniform-bernoulli --slots 10000000 --stream \
        --warmup 100000 --checkpoint-every 1000000
    python -m repro scenario uniform-bernoulli --slots 10000000 \
        --resume .repro_cache/<version>/checkpoints/uniform-bernoulli.ckpt.json

and compose per-port buffers into a multi-port switch::

    python -m repro switch --list                     # registered switches
    python -m repro switch hotspot-egress --ports 8 --jobs 4
    python -m repro switch uniform --fabric priority  # swap the crossbar

and compile declarative YAML sweep documents into job grids::

    python -m repro scenario --from-spec sweep.yaml --jobs 4
    python -m repro switch --from-spec switch_sweep.yaml --dry-run

and differentially fuzz random specs across every engine::

    python -m repro fuzz --seeds 25                   # the PR-path budget
    python -m repro fuzz --seeds 200 --stream \
        --artifact-dir fuzz-artifacts                 # the nightly soak
    python -m repro fuzz --replay fuzz-artifacts/fuzz-<seed>-0007.json

and track the performance trajectory::

    python -m repro bench                 # fixed suite -> BENCH_9.json
    python -m repro bench --quick         # reduced slots (CI perf-smoke)
    python -m repro bench --filter wide   # a subset of the suite
    python -m repro bench --compare BENCH_9.json --fail-on-regression 25
    python -m repro bench --profile       # cProfile hot frames per benchmark

and observe what any run did::

    python -m repro scenario zipf-hotspot --metrics      # counters to stderr
    python -m repro fuzz --seeds 25 --trace-out t.ndjson # NDJSON run trace
    python -m repro trace summarize t.ndjson             # inspect a trace
    python -m repro scenario uniform-bernoulli --slots 10000000 --stream \
        --progress --progress-every 4                    # heartbeat to stderr

Results are cached as JSON under ``.repro_cache/<version>/`` keyed by the
job's configuration and the package version, so a second invocation of the
same exhibit is served from disk without re-simulating (``--verbose`` notes
every cache hit on stderr).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import List, Optional, Sequence

import repro
from repro.errors import ConfigurationError, ReproError
from repro.runner.cache import ResultCache
from repro.runner.experiments import EXPERIMENTS, get_experiment
from repro.runner.sweep import SweepRunner

#: Subcommand that runs every registered experiment.
ALL = "all"
#: Subcommand that runs a single named workload scenario.
SCENARIO = "scenario"
#: Subcommand that runs a single named multi-port switch scenario.
SWITCH = "switch"
#: Subcommand that runs the fixed perf-trajectory benchmark suite.
BENCH = "bench"
#: Subcommand that differentially fuzzes random specs across every engine.
FUZZ = "fuzz"
#: Subcommand that inspects NDJSON run traces written with --trace-out.
TRACE = "trace"
#: Subcommand that runs the AST-based invariant checker over the tree.
LINT = "lint"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=("Reproduce the tables and figures of 'Design and "
                     "Implementation of High-Performance Memory Systems for "
                     "Future Packet Buffers' (Garcia et al., MICRO-36, 2003)."))
    parser.add_argument("--version", action="version",
                        version=f"repro {repro.__version__}")

    # Observability flags shared by every execution subcommand: a metrics
    # registry rendered to stderr on exit, an NDJSON run trace, and verbose
    # cache-hit notes.  Enabling any of them never changes a report.
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument("--metrics", action="store_true",
                     help="collect run metrics (counters/gauges/timings) "
                          "and print them to stderr on exit; never changes "
                          "any report")
    obs.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write a timestamped NDJSON run trace to FILE "
                          "(inspect with 'repro trace summarize FILE')")
    obs.add_argument("--verbose", action="store_true",
                     help="log a one-line stderr note for every result "
                          "served from the cache")

    # Failure-handling flags shared by every sweep-running subcommand.  The
    # CLI defaults to graceful degradation (a permanently failing job becomes
    # a FAILED row with provenance, siblings still complete); --strict
    # restores fail-fast.
    robust = argparse.ArgumentParser(add_help=False)
    robust.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job wall-clock timeout in seconds; a job "
                             "exceeding it is retried, then quarantined "
                             "(needs --jobs >= 2: enforcement kills the "
                             "job's worker process)")
    robust.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retries for transiently failed jobs (worker "
                             "death, timeout, TransientJobError) with "
                             "exponential backoff (default: 2)")
    robust.add_argument("--strict", action="store_true",
                        help="fail fast: abort the whole sweep on the first "
                             "permanently failed job instead of reporting "
                             "partial results with failure provenance")

    common = argparse.ArgumentParser(add_help=False, parents=[obs, robust])
    common.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep (0 = one per "
                             "CPU; default: 1, serial)")
    common.add_argument("--no-cache", action="store_true",
                        help="recompute everything; neither read nor write "
                             "the on-disk result cache")
    common.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache root directory (default: .repro_cache)")
    common.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="write the report to FILE instead of stdout")
    common.add_argument("--dry-run", action="store_true",
                        help="print the jobs the experiment would run, "
                             "without computing anything")

    subparsers = parser.add_subparsers(dest="experiment", metavar="EXPERIMENT")
    for name, spec in EXPERIMENTS.items():
        subparsers.add_parser(name, parents=[common], help=spec.description,
                              description=f"{spec.title}. {spec.description}")
    subparsers.add_parser(
        ALL, parents=[common], help="run every experiment",
        description="Reproduce every registered exhibit in one run.")

    scenario = subparsers.add_parser(
        SCENARIO, parents=[obs, robust],
        help="run one named workload scenario",
        description=("Run a single scenario from the workload registry "
                     "(see --list), optionally recording or replaying its "
                     "traffic trace."))
    scenario.add_argument("name", nargs="?", metavar="NAME",
                          help="scenario name (see --list)")
    scenario.add_argument("--list", action="store_true", dest="list_scenarios",
                          help="list the registered scenarios and exit")
    scenario.add_argument("--slots", type=int, default=None, metavar="N",
                          help="override the scenario's slot count")
    scenario.add_argument("--legacy-loop", action="store_true",
                          help="use the reference per-slot loop instead of "
                               "the batched fast path")
    scenario.add_argument("--engine", default=None, metavar="NAME",
                          help="simulation core to use: reference, batched, "
                               "array, or numpy (default: batched; all "
                               "engines produce bit-identical reports; an "
                               "unknown or unavailable name is a one-line "
                               "error, not a traceback)")
    scenario.add_argument("--stream", action="store_true",
                          help="run through the bounded-memory streaming "
                               "path (chunked arrival plans; implied by the "
                               "other streaming flags)")
    scenario.add_argument("--chunk-slots", type=int, default=None,
                          metavar="N",
                          help="streaming chunk size in slots "
                               "(default: 65536)")
    scenario.add_argument("--warmup", type=int, default=0, metavar="N",
                          help="discard the first N slots from the report's "
                               "statistics (steady-state measurement; "
                               "implies --stream)")
    scenario.add_argument("--checkpoint-every", type=int, default=None,
                          metavar="K",
                          help="write a resumable snapshot every K slots "
                               "(implies --stream)")
    scenario.add_argument("--checkpoint", default=None, metavar="FILE",
                          help="snapshot file for --checkpoint-every "
                               "(default: .repro_cache/<version>/checkpoints/"
                               "<name>.ckpt.json)")
    scenario.add_argument("--resume", default=None, metavar="FILE",
                          help="resume a checkpointed streaming run from "
                               "FILE and continue it to completion "
                               "(bit-identical to the uninterrupted run)")
    scenario.add_argument("--progress", action="store_true",
                          help="print a heartbeat line to stderr while a "
                               "streaming run executes (slots done, "
                               "slots/sec, ETA; implies --stream)")
    scenario.add_argument("--progress-every", type=int, default=1,
                          metavar="N",
                          help="chunks between --progress heartbeats "
                               "(default: 1, every chunk)")
    scenario.add_argument("--record", default=None, metavar="FILE",
                          help="save the run's (arrival, request) trace to FILE")
    scenario.add_argument("--trace-format", choices=["binary", "ndjson"],
                          default="binary",
                          help="on-disk format for --record (default: binary)")
    scenario.add_argument("--replay", default=None, metavar="FILE",
                          help="drive the scenario's buffer with a trace "
                               "previously saved with --record, instead of "
                               "its own generators")
    scenario.add_argument("--from-spec", default=None, metavar="FILE",
                          help="compile a YAML sweep document (kind: "
                               "scenario) with grid expansion and run every "
                               "job through the sweep runner; replaces NAME")
    scenario.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                          help="worker processes for --from-spec sweeps "
                               "(0 = one per CPU; default: 1, serial)")
    scenario.add_argument("--dry-run", action="store_true",
                          help="with --from-spec: print the expanded jobs, "
                               "compute nothing")
    scenario.add_argument("-o", "--output", default=None, metavar="FILE",
                          help="write the report to FILE instead of stdout")

    switch = subparsers.add_parser(
        SWITCH, parents=[obs, robust],
        help="run one named multi-port switch scenario",
        description=("Run a switch scenario from the switch registry (see "
                     "--list): N per-port buffers behind a crossbar fabric, "
                     "ports sharded across worker processes.  The merged "
                     "report is identical for every --jobs value."))
    switch.add_argument("name", nargs="?", metavar="NAME",
                        help="switch scenario name (see --list)")
    switch.add_argument("--list", action="store_true", dest="list_switches",
                        help="list the registered switch scenarios and exit")
    switch.add_argument("--ports", type=int, default=None, metavar="N",
                        help="override the scenario's port count")
    switch.add_argument("--slots", type=int, default=None, metavar="N",
                        help="override the scenario's arrival-slot count")
    switch.add_argument("--engine", default=None, metavar="NAME",
                        help="simulation core for the port stage: reference, "
                             "batched, array, or numpy (default: array; all "
                             "engines are bit-identical)")
    switch.add_argument("--fabric", choices=["islip", "random", "priority"],
                        default=None,
                        help="override the scenario's fabric arbiter "
                             "(default parameters)")
    switch.add_argument("--stream", action="store_true",
                        help="stream the fabric's per-egress traces "
                             "straight into in-process port sessions "
                             "(bounded memory; bit-identical to the "
                             "sharded path; --jobs is ignored)")
    switch.add_argument("--chunk-slots", type=int, default=None, metavar="N",
                        help="streaming chunk size in slots for --stream "
                             "(default: 65536)")
    switch.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the port stage (0 = one "
                             "per CPU; default: 1, serial)")
    switch.add_argument("--from-spec", default=None, metavar="FILE",
                        help="compile a YAML sweep document (kind: switch) "
                             "with grid expansion and run every job through "
                             "the sweep runner; replaces NAME")
    switch.add_argument("--dry-run", action="store_true",
                        help="with --from-spec: print the expanded jobs, "
                             "compute nothing")
    switch.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="write the report to FILE instead of stdout")

    fuzz = subparsers.add_parser(
        FUZZ, parents=[obs],
        help="differentially fuzz random specs across every engine",
        description=("Draw seeded random scenario/switch specs "
                     "(repro.workloads.fuzz) and run each on all three "
                     "engines, monolithic and streamed, asserting "
                     "bit-identical reports.  Diverging specs are dumped as "
                     "replayable JSON artifacts."))
    fuzz.add_argument("--seeds", type=int, default=25, metavar="N",
                      help="number of fuzz cases to draw (default: 25, the "
                           "PR-path budget; the nightly job runs 200)")
    fuzz.add_argument("--master-seed", type=int, default=None, metavar="S",
                      help="master seed the whole run derives from "
                           "(default: the frozen CI seed)")
    fuzz.add_argument("--stream", action="store_true",
                      help="add the expensive streamed legs: warmup offsets, "
                           "checkpoint/resume, and all-engine switch "
                           "streaming")
    fuzz.add_argument("--faults", action="store_true",
                      help="add the chaos legs: re-run each case under "
                           "seeded fault injection (worker kills, transient "
                           "errors, corrupt cache entries, torn "
                           "checkpoints) and assert the reports stay "
                           "bit-identical to the fault-free run")
    fuzz.add_argument("--artifact-dir", default=None, metavar="DIR",
                      help="write each diverging case as a replayable JSON "
                           "artifact under DIR")
    fuzz.add_argument("--replay", default=None, metavar="FILE",
                      help="re-run one dumped divergence artifact instead "
                           "of drawing new cases")
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress the per-case progress lines on stderr")
    fuzz.add_argument("-o", "--output", default=None, metavar="FILE",
                      help="write the closing summary to FILE instead of "
                           "stdout")

    bench = subparsers.add_parser(
        BENCH, parents=[obs],
        help="run the perf-trajectory benchmark suite",
        description=("Time the fixed benchmark suite (scenario loops on "
                     "every engine, the wide-queue stressor, the MMA "
                     "ablation) and write per-benchmark medians to a JSON "
                     "snapshot for cross-PR comparison.  --compare diffs "
                     "against a committed baseline; --fail-on-regression "
                     "turns the diff into an exit-1 gate on the derived "
                     "ratios."))
    bench.add_argument("--quick", action="store_true",
                       help="reduced slot counts (the CI perf-smoke mode)")
    bench.add_argument("--repeats", type=int, default=None, metavar="N",
                       help="timing repetitions per benchmark "
                            "(default: 5, or 3 with --quick)")
    bench.add_argument("--filter", default=None, metavar="SUBSTR",
                       dest="name_filter",
                       help="only run benchmarks whose name contains SUBSTR")
    bench.add_argument("--list", action="store_true", dest="list_benchmarks",
                       help="list the suite's benchmarks and exit")
    bench.add_argument("--profile", action="store_true",
                       help="run every benchmark once more under cProfile "
                            "(after the timed repeats) and record the "
                            "hottest frames in the snapshot")
    bench.add_argument("--profile-top", type=int, default=None, metavar="N",
                       help="frames recorded per profiled benchmark "
                            "(default: 10)")
    bench.add_argument("--compare", default=None, metavar="BASELINE.json",
                       help="diff the fresh results (or --against CURRENT) "
                            "against this committed snapshot")
    bench.add_argument("--against", default=None, metavar="CURRENT.json",
                       help="with --compare: diff two existing snapshots "
                            "without running the suite")
    bench.add_argument("--fail-on-regression", type=float, default=None,
                       metavar="PCT", dest="fail_on_regression",
                       help="exit 1 when any gated derived ratio regressed "
                            "by more than PCT percent (requires --compare)")
    bench.add_argument("--ratios", default=None, metavar="NAME[,NAME...]",
                       help="restrict the regression gate to these derived "
                            "ratios (default: every ratio both snapshots "
                            "share)")
    bench.add_argument("--compare-json", default=None, metavar="FILE",
                       help="also write the compare report as JSON to FILE "
                            "(the CI artifact)")
    bench.add_argument("-o", "--output", default=None, metavar="FILE",
                       help="JSON snapshot path (default: BENCH_9.json; "
                            "'-' to skip writing the file)")

    trace = subparsers.add_parser(
        TRACE, help="inspect an NDJSON run trace written with --trace-out",
        description=("Summarize a structured run trace: event histogram, "
                     "chunk throughput, checkpoint latencies, cache "
                     "hit/miss counts, fuzz divergences."))
    trace.add_argument("action", choices=["summarize"],
                       help="what to do with the trace file")
    trace.add_argument("file", metavar="TRACE.ndjson",
                       help="the NDJSON trace file to read")
    trace.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the summary as JSON instead of text")
    trace.add_argument("-o", "--output", default=None, metavar="FILE",
                       help="write the summary to FILE instead of stdout")

    from repro.lint.cli import add_lint_arguments

    lint = subparsers.add_parser(
        LINT, help="check the tree against the project's written invariants",
        description=("AST-based static analysis enforcing the contracts "
                     "ordinary linters cannot see: determinism, checkpoint "
                     "purity of the span cores, the repro.errors taxonomy, "
                     "and span-granular observability.  Exit 0 when clean, "
                     "1 on findings."))
    add_lint_arguments(lint)
    return parser


def _runner_options(args: argparse.Namespace) -> dict:
    """The failure-handling knobs every CLI-built runner shares."""
    return {
        "timeout": getattr(args, "timeout", None),
        "retries": getattr(args, "retries", 2),
        "strict": getattr(args, "strict", False),
    }


def _run_from_spec(parser: argparse.ArgumentParser, args: argparse.Namespace,
                   kind: str) -> int:
    """Handle ``--from-spec sweep.yaml`` for either subcommand."""
    from repro.workloads.spec_yaml import (
        compile_jobs,
        load_yaml_document,
        render_sweep_results,
    )

    try:
        document = load_yaml_document(args.from_spec)
        if document.kind != kind:
            print(f"error: {args.from_spec}: document kind "
                  f"{document.kind!r} does not match the {kind!r} "
                  "subcommand", file=sys.stderr)
            return 1
        points, spec_jobs = compile_jobs(document)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.dry_run:
        lines = [f"{document.name}: {len(points)} jobs"]
        lines.extend(f"  {point.describe()}" for point in points)
        return _emit("\n".join(lines), args.output)
    try:
        runner = SweepRunner(jobs=args.jobs, **_runner_options(args))
        results = runner.run(spec_jobs)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    title = f"{document.name} ({len(points)} jobs)"
    return _emit(render_sweep_results(points, results, title=title),
                 args.output)


def _progress_printer():
    """The ``--progress`` heartbeat: one stderr line per report interval."""
    def emit(info) -> None:
        total = info["num_slots"]
        if total:
            done_text = (f"slot {info['slot']}/{total} "
                         f"({info['slot'] / total * 100:5.1f}%)")
        else:
            done_text = f"slot {info['slot']}"
        rate = info["slots_per_s"]
        eta = info["eta_s"]
        eta_text = f", eta {eta:.0f}s" if eta is not None else ""
        print(f"[stream] {done_text}, {rate / 1e3:.1f} kslots/s"
              f"{eta_text}", file=sys.stderr)

    return emit


def _run_scenario_command(parser: argparse.ArgumentParser,
                          args: argparse.Namespace) -> int:
    """Handle ``python -m repro scenario ...``."""
    from repro.analysis.report import format_table, render_scenario_run
    from repro.sim.engine import ClosedLoopSimulation
    from repro.traffic.arbiters import TraceArbiter
    from repro.traffic.arrivals import TraceArrivals
    from repro.workloads.registry import all_scenarios, get_scenario
    from repro.workloads.traceio import load_trace, save_trace

    if args.from_spec is not None:
        if args.name is not None:
            parser.error("--from-spec replaces NAME; give one or the other")
        return _run_from_spec(parser, args, kind=SCENARIO)
    if args.list_scenarios:
        table = format_table(
            ["name", "scheme", "slots", "tags", "description"],
            [[s.name, s.scheme, s.num_slots, ",".join(s.tags), s.description]
             for s in all_scenarios()],
            title="Registered workload scenarios")
        return _emit(table, args.output)
    if args.name is None:
        parser.error("scenario: a NAME is required (or use --list)")

    if (args.legacy_loop and args.engine is not None
            and args.engine != "reference"):
        parser.error("--legacy-loop selects the reference loop and "
                     f"conflicts with --engine {args.engine}")
    streaming = (args.stream or args.warmup > 0
                 or args.checkpoint_every is not None
                 or args.checkpoint is not None
                 or args.chunk_slots is not None
                 or args.resume is not None
                 or args.progress)
    if args.warmup < 0:
        parser.error("--warmup must be non-negative")
    if args.progress_every < 1:
        parser.error("--progress-every must be at least 1")
    progress = _progress_printer() if args.progress else None
    if (args.checkpoint is not None and args.checkpoint_every is None
            and args.resume is None):
        # Without a cadence no snapshot would ever be written; failing loudly
        # beats a user believing their long run is crash-resumable.
        parser.error("--checkpoint needs --checkpoint-every K to set the "
                     "snapshot cadence (or --resume to override where a "
                     "resumed run keeps checkpointing)")
    if streaming and args.replay is not None:
        parser.error("streaming flags do not combine with --replay")
    if streaming and args.record is not None:
        parser.error("streaming flags do not combine with --record (trace "
                     "recording is O(slots) memory)")
    try:
        scenario = get_scenario(args.name)
        engine = args.engine
        if engine is None:
            engine = "reference" if args.legacy_loop else "batched"
        if args.resume is not None:
            from repro.sim.streaming import read_checkpoint, resume_stream

            # The snapshot carries the complete run configuration, so flags
            # that would conflict with it are rejected rather than silently
            # ignored (--checkpoint-every/--checkpoint remain overridable).
            if (args.slots is not None or args.engine is not None
                    or args.warmup or args.chunk_slots is not None
                    or args.stream or args.legacy_loop):
                parser.error("--resume restores the run's own configuration; "
                             "it conflicts with --slots/--engine/"
                             "--legacy-loop/--warmup/--chunk-slots/--stream")
            meta = read_checkpoint(args.resume)
            if meta.get("label") is not None and meta["label"] != args.name:
                print(f"error: {args.resume} is a checkpoint of scenario "
                      f"{meta['label']!r}, not {args.name!r}",
                      file=sys.stderr)
                return 1
            report = resume_stream(args.resume,
                                   checkpoint_every=args.checkpoint_every,
                                   checkpoint_path=args.checkpoint,
                                   progress=progress,
                                   progress_every=args.progress_every)
            text = render_scenario_run(scenario.name, scenario.scheme, report)
            text += (f"\nresumed from {args.resume} at slot {meta['slot']} "
                     f"of {meta['num_slots']} ({meta['engine']} engine)")
            return _emit(text, args.output)
        if streaming:
            checkpoint_path = args.checkpoint
            if args.checkpoint_every is not None and checkpoint_path is None:
                cache = ResultCache()
                checkpoint_path = str(cache.artifact_dir("checkpoints")
                                      / f"{scenario.name}.ckpt.json")
            report = scenario.run_stream(
                num_slots=args.slots, engine=engine,
                chunk_slots=args.chunk_slots, warmup_slots=args.warmup,
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=checkpoint_path,
                progress=progress,
                progress_every=args.progress_every)
            text = render_scenario_run(scenario.name, scenario.scheme, report)
            if args.warmup:
                text += f"\nwarmup: first {args.warmup} slots discarded"
            if args.checkpoint_every is not None:
                text += (f"\ncheckpoints every {args.checkpoint_every} slots "
                         f"-> {checkpoint_path}")
            return _emit(text, args.output)
        record = args.record is not None
        if args.replay is not None:
            trace, _metadata = load_trace(args.replay)
            buffer = scenario.build_buffer()
            num_queues = buffer.config.num_queues
            top = max((q for event in trace.events for q in event
                       if q is not None), default=-1)
            if top >= num_queues:
                raise ConfigurationError(
                    f"trace {args.replay} uses queue {top} but scenario "
                    f"{scenario.name!r} has only {num_queues} queues")
            sim = ClosedLoopSimulation(buffer,
                                       TraceArrivals(trace.arrivals()),
                                       TraceArbiter(trace.requests()),
                                       record_trace=record)
            num_slots = len(trace) if args.slots is None else args.slots
            report = sim.run(num_slots, engine=engine)
        else:
            report = scenario.run(num_slots=args.slots, engine=engine,
                                  record_trace=record)
        if record:
            save_trace(report.trace, args.record, format=args.trace_format,
                       metadata={"scenario": scenario.name,
                                 "scheme": scenario.scheme,
                                 "num_queues": scenario.buffer["num_queues"],
                                 "seed": scenario.seed,
                                 "replayed_from": args.replay})
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot access trace file: {exc}", file=sys.stderr)
        return 1
    text = render_scenario_run(scenario.name, scenario.scheme, report)
    if record:
        text += f"\ntrace saved to {args.record} ({args.trace_format})"
    return _emit(text, args.output)


def _run_switch_command(parser: argparse.ArgumentParser,
                        args: argparse.Namespace) -> int:
    """Handle ``python -m repro switch ...``."""
    from repro.analysis.report import format_table, render_switch_run
    from repro.switch.model import DEFAULT_ENGINE, SwitchModel
    from repro.switch.registry import all_switch_scenarios, get_switch_scenario

    if args.from_spec is not None:
        if args.name is not None:
            parser.error("--from-spec replaces NAME; give one or the other")
        return _run_from_spec(parser, args, kind=SWITCH)
    if args.list_switches:
        table = format_table(
            ["name", "ports", "slots", "fabric", "tags", "description"],
            [[s.name, s.num_ports, s.num_slots, s.fabric["type"],
              ",".join(s.tags), s.description]
             for s in all_switch_scenarios()],
            title="Registered switch scenarios")
        return _emit(table, args.output)
    if args.name is None:
        parser.error("switch: a NAME is required (or use --list)")
    if args.ports is not None and args.ports <= 0:
        parser.error("--ports must be positive")

    try:
        scenario = get_switch_scenario(args.name).with_overrides(
            num_ports=args.ports, num_slots=args.slots)
        if args.fabric is not None:
            import dataclasses

            scenario = dataclasses.replace(
                scenario, fabric={"type": args.fabric, "params": {}})
        engine = args.engine if args.engine is not None else DEFAULT_ENGINE
        if args.stream or args.chunk_slots is not None:
            report = SwitchModel(scenario).run_stream(
                engine=engine, chunk_slots=args.chunk_slots)
        else:
            runner = SweepRunner(jobs=args.jobs, **_runner_options(args))
            report = SwitchModel(scenario).run(engine=engine, jobs=args.jobs,
                                               runner=runner)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return _emit(render_switch_run(report), args.output)


def _run_fuzz_command(parser: argparse.ArgumentParser,
                      args: argparse.Namespace) -> int:
    """Handle ``python -m repro fuzz ...``."""
    from repro.workloads.fuzz import (
        DEFAULT_MASTER_SEED,
        FuzzSummary,
        dump_artifact,
        fuzz_many,
        load_artifact,
        render_summary,
        run_case,
    )

    master_seed = (DEFAULT_MASTER_SEED if args.master_seed is None
                   else args.master_seed)
    try:
        if args.replay is not None:
            case = load_artifact(args.replay)
            divergences = run_case(case, stream=args.stream,
                                   faults=args.faults)
            summary = FuzzSummary(
                cases=1, switch_cases=int(case.kind == "switch"))
            if divergences:
                summary.failures.append((case, divergences))
                if args.artifact_dir is not None:
                    summary.artifacts.append(
                        dump_artifact(case, divergences, args.artifact_dir,
                                      args.stream, faults=args.faults))
        else:
            if args.seeds < 1:
                parser.error("--seeds must be at least 1")
            progress = (None if args.quiet
                        else lambda line: print(line, file=sys.stderr))
            summary = fuzz_many(args.seeds, master_seed=master_seed,
                                stream=args.stream, faults=args.faults,
                                artifact_dir=args.artifact_dir,
                                progress=progress)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    code = _emit(render_summary(summary, stream=args.stream,
                                faults=args.faults), args.output)
    if code != 0:
        return code
    return 0 if summary.ok else 1


def _run_bench_command(parser: argparse.ArgumentParser,
                       args: argparse.Namespace) -> int:
    """Handle ``python -m repro bench ...``."""
    import json

    from repro.analysis.report import format_table
    from repro.bench import (
        DEFAULT_OUTPUT,
        SUITE,
        render_results,
        run_suite,
        write_results,
    )
    from repro.obs.compare import (
        compare_documents,
        load_bench_document,
        ratio_regressions,
        render_compare,
    )

    if args.list_benchmarks:
        table = format_table(
            ["name", "description"],
            [[case.name, case.description] for case in SUITE],
            title="Perf-trajectory benchmark suite")
        print(table)
        return 0
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be at least 1")
    if args.profile_top is not None and args.profile_top < 1:
        parser.error("--profile-top must be at least 1")
    if args.against is not None and args.compare is None:
        parser.error("--against needs --compare BASELINE.json to diff "
                     "against")
    if args.fail_on_regression is not None and args.compare is None:
        parser.error("--fail-on-regression needs --compare BASELINE.json")
    if args.ratios is not None and args.compare is None:
        parser.error("--ratios needs --compare BASELINE.json")
    ratio_names = ([name.strip() for name in args.ratios.split(",")
                    if name.strip()] if args.ratios is not None else None)
    if args.ratios is not None and not ratio_names:
        parser.error("--ratios got an empty list")

    try:
        baseline = (load_bench_document(args.compare)
                    if args.compare is not None else None)
        if args.against is not None:
            # Pure snapshot diff: nothing is run.
            document = load_bench_document(args.against)
        else:
            document = run_suite(quick=args.quick, repeats=args.repeats,
                                 name_filter=args.name_filter,
                                 profile=args.profile,
                                 profile_top=args.profile_top)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not document["benchmarks"]:
        print(f"error: no benchmark matches --filter {args.name_filter!r}",
              file=sys.stderr)
        return 1

    blocks: List[str] = []
    if args.against is None:
        blocks.append(render_results(document))
        output = args.output if args.output is not None else DEFAULT_OUTPUT
        if output != "-":
            try:
                write_results(document, output)
            except OSError as exc:
                print(f"error: cannot write {output}: {exc}",
                      file=sys.stderr)
                return 1
            blocks.append(f"results written to {output}")

    failed = False
    if baseline is not None:
        try:
            report = compare_documents(baseline, document)
            threshold = args.fail_on_regression
            failures = (ratio_regressions(report, threshold, ratio_names)
                        if threshold is not None else None)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        failed = bool(failures)
        blocks.append(render_compare(report, threshold_pct=threshold,
                                     ratio_names=ratio_names,
                                     failures=failures))
        if args.compare_json is not None:
            try:
                with open(args.compare_json, "w",
                          encoding="utf-8") as handle:
                    json.dump(report, handle, indent=2, sort_keys=False)
                    handle.write("\n")
            except OSError as exc:
                print(f"error: cannot write {args.compare_json}: {exc}",
                      file=sys.stderr)
                return 1
            blocks.append(f"compare report written to {args.compare_json}")
    print("\n\n".join(blocks))
    return 1 if failed else 0


def _run_trace_command(parser: argparse.ArgumentParser,
                       args: argparse.Namespace) -> int:
    """Handle ``python -m repro trace summarize ...``."""
    import json

    from repro.obs.trace import render_trace_summary, summarize_trace

    try:
        summary = summarize_trace(args.file)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        return _emit(json.dumps(summary, indent=2, sort_keys=False),
                     args.output)
    return _emit(render_trace_summary(summary), args.output)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment is None:
        parser.print_help()
        return 2
    if args.experiment == TRACE:
        # The inspector only reads a trace; no observability setup needed.
        return _run_trace_command(parser, args)
    if args.experiment == LINT:
        # Static analysis never simulates; skip observability setup too.
        from repro.lint.cli import run_lint_command

        return run_lint_command(parser, args)

    # --metrics / --trace-out: install the observability layer around the
    # whole command.  Recording is after-the-fact only, so the report of an
    # instrumented run is bit-identical to an unobserved one.
    from repro.obs.metrics import render_metrics, using_metrics
    from repro.obs.trace import TraceWriter, using_trace

    trace_out = getattr(args, "trace_out", None)
    registry = None
    with contextlib.ExitStack() as stack:
        if getattr(args, "metrics", False):
            registry = stack.enter_context(using_metrics())
        if trace_out:
            try:
                writer = stack.enter_context(TraceWriter(trace_out))
            except OSError as exc:
                print(f"error: cannot open trace file {trace_out!r}: {exc}",
                      file=sys.stderr)
                return 1
            stack.enter_context(using_trace(writer))
        try:
            code = _dispatch(parser, args)
        except KeyboardInterrupt:
            # The sweep runner has already torn its workers down and swept
            # partial temp files (see SweepRunner.run); exit the way shells
            # expect an interrupted process to — one line, code 128+SIGINT,
            # no multiprocessing traceback spew.
            print("interrupted", file=sys.stderr)
            return 130
    if registry is not None:
        print(render_metrics(registry.snapshot(), "run metrics"),
              file=sys.stderr)
    if trace_out:
        print(f"trace written to {trace_out}", file=sys.stderr)
    return code


def _dispatch(parser: argparse.ArgumentParser,
              args: argparse.Namespace) -> int:
    """Route to the subcommand handler (observability already installed)."""
    if args.experiment == SCENARIO:
        return _run_scenario_command(parser, args)
    if args.experiment == SWITCH:
        return _run_switch_command(parser, args)
    if args.experiment == BENCH:
        return _run_bench_command(parser, args)
    if args.experiment == FUZZ:
        return _run_fuzz_command(parser, args)

    names = list(EXPERIMENTS) if args.experiment == ALL else [args.experiment]
    specs = [get_experiment(name) for name in names]

    if args.dry_run:
        lines: List[str] = []
        for spec in specs:
            jobs = spec.build_jobs()
            lines.append(f"{spec.name}: {len(jobs)} jobs")
            lines.extend(f"  {job.describe()}" for job in jobs)
        return _emit("\n".join(lines), args.output)

    cache = (None if args.no_cache
             else ResultCache(root=args.cache_dir, verbose=args.verbose))
    try:
        runner = SweepRunner(jobs=args.jobs, cache=cache,
                             **_runner_options(args))
    except ReproError as exc:
        parser.error(str(exc))

    from repro.runner.sweep import JobFailure
    from repro.workloads.spec_yaml import render_job_failures

    blocks: List[str] = []
    started = time.perf_counter()
    total_failed = 0
    for spec in specs:
        jobs = spec.build_jobs()
        try:
            results = runner.run(jobs)
        except ReproError as exc:
            print(f"error while running {spec.name}: {exc}", file=sys.stderr)
            return 1
        # A non-strict runner quarantines poisoned jobs as JobFailure
        # entries.  Renderers consume (result, job) pairs, so both lists are
        # filtered in lockstep and the failures reported below the exhibit.
        failures = [r for r in results if isinstance(r, JobFailure)]
        if failures:
            total_failed += len(failures)
            survivors = [(r, j) for r, j in zip(results, jobs)
                         if not isinstance(r, JobFailure)]
            results = [r for r, _ in survivors]
            jobs = [j for _, j in survivors]
        block = f"== {spec.title} ==\n\n{spec.render(results, jobs)}"
        if failures:
            block += "\n\n" + render_job_failures(failures)
        blocks.append(block)
    elapsed = time.perf_counter() - started

    hits = cache.hits if cache is not None else 0
    failed_note = f", {total_failed} job(s) FAILED" if total_failed else ""
    blocks.append(f"[runner] {runner.executed} jobs executed, {hits} cache "
                  f"hits, {runner.jobs} worker(s), {elapsed:.2f} s"
                  f"{failed_note}")
    return _emit("\n\n".join(blocks), args.output)


def _emit(text: str, output: Optional[str]) -> int:
    if output is None:
        try:
            print(text)
        except BrokenPipeError:
            # Downstream pipe (e.g. `| head`) closed early; not an error.
            sys.stderr.close()
        return 0
    try:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    except OSError as exc:
        print(f"error: cannot write {output}: {exc}", file=sys.stderr)
        return 1
    return 0
