"""On-disk result cache for experiment jobs.

Results live as JSON files under ``.repro_cache/<code-version>/<key>.json``.
The key is a SHA-256 over the job's canonical signature (function path plus
sorted kwargs) and the code version, so a cache entry is invalidated by
changing *either* the experiment configuration *or* the package version —
re-running a figure after an upgrade never serves stale numbers.  The
version-stamped directory also means ``repro cache --clear`` style cleanups
can simply delete old version directories.

Writes are atomic (temp file + :func:`os.replace`) so a parallel sweep whose
workers finish while the parent is writing, or two concurrent CLI invocations,
never leave a truncated entry behind; a corrupted or unreadable entry is
treated as a miss and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path
from typing import Any, Optional

import repro
from repro.errors import CacheIntegrityError, ReproError
from repro.faults import get_injector
from repro.obs.metrics import get_metrics
from repro.obs.trace import emit as trace_emit
from repro.runner.jobs import Job
from repro.runner.serialize import from_jsonable, to_jsonable

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_ROOT = ".repro_cache"

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS = object()


class ResultCache:
    """A version-stamped JSON store of job results.

    Args:
        root: cache root directory (created on first write).
        version: code version folded into every key and used as the
            subdirectory name; defaults to :data:`repro.__version__`.
        verbose: print a one-line note to stderr whenever a cached result
            is served (the CLI wires ``--verbose`` here).
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 version: Optional[str] = None,
                 verbose: bool = False) -> None:
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_ROOT)
        self.version = version if version is not None else repro.__version__
        self.verbose = verbose
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The version-stamped directory entries live in."""
        return self.root / self.version

    def artifact_dir(self, kind: str) -> Path:
        """A version-stamped directory for auxiliary run artifacts.

        Streaming checkpoints (``kind="checkpoints"``) live here so they are
        invalidated together with the results they would resume into; the
        startup temp-file sweep covers these directories too.
        """
        path = self.directory / kind
        path.mkdir(parents=True, exist_ok=True)
        return path

    def key(self, job: Job) -> str:
        """Stable hex digest identifying ``job`` under the current version."""
        payload = {"version": self.version, "job": job.signature()}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path(self, job: Job) -> Path:
        return self.directory / f"{self.key(job)}.json"

    # ------------------------------------------------------------------ #
    def get(self, job: Job) -> Any:
        """Return the cached result for ``job``, or :data:`MISS`.

        A corrupt entry — truncated JSON, wrong key, a result that no longer
        deserialises — is *quarantined* (renamed to ``<entry>.json.bad``) so
        the recompute's fresh ``put`` cannot race the broken file and the
        evidence survives for a post-mortem, then reported as a miss.
        """
        path = self.path(job)
        entry_exists = False
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry_exists = True
                entry = json.load(handle)
            if not isinstance(entry, dict) or entry.get("key") != self.key(job):
                # Hash collision or hand-edited file: treat as a miss.
                raise CacheIntegrityError("cache entry key mismatch")
            result = from_jsonable(entry["result"])
        except (OSError, ValueError, KeyError, TypeError, ReproError) as exc:
            # Unreadable, corrupted, or no-longer-deserialisable (e.g. a
            # result class was renamed without a version bump): recompute.
            if entry_exists:
                self._quarantine(path, job, exc)
            self.misses += 1
            obs = get_metrics()
            if obs is not None:
                obs.inc("cache.misses")
            return MISS
        self.hits += 1
        obs = get_metrics()
        if obs is not None:
            obs.inc("cache.hits")
        if self.verbose:
            tag = f" [{job.tag}]" if job.tag else ""
            print(f"repro: cache hit{tag} {job.func} "
                  f"({self.key(job)[:12]})", file=sys.stderr)
        return result

    def _quarantine(self, path: Path, job: Job, reason: BaseException) -> None:
        """Move a corrupt entry aside (``*.json.bad``) so it cannot be read
        again, cannot race the recompute's fresh write, and stays available
        as evidence."""
        try:
            os.replace(path, path.with_name(path.name + ".bad"))
        except OSError:
            return
        self.quarantined += 1
        obs = get_metrics()
        if obs is not None:
            obs.inc("cache.quarantined")
        trace_emit("cache_quarantined", key=path.stem, tag=job.tag,
                   func=job.func, error=f"{type(reason).__name__}: {reason}")
        if self.verbose:
            tag = f" [{job.tag}]" if job.tag else ""
            print(f"repro: cache entry quarantined{tag} {job.func} "
                  f"({path.stem[:12]}): {type(reason).__name__}: {reason}",
                  file=sys.stderr)

    def put(self, job: Job, result: Any) -> None:
        """Store ``result`` for ``job`` atomically."""
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": self.key(job),
            "version": self.version,
            "func": job.func,
            "kwargs": dict(job.kwargs),
            "result": to_jsonable(result),
        }
        path = self.path(job)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
            injector = get_injector()
            if injector is not None:
                # Chaos harness: a fault plan may corrupt the entry we just
                # wrote (simulating a torn write or media rot); the next
                # ``get`` must quarantine it and recompute.
                injector.corrupt_file(path, f"cache-put:{entry['key']}")
        except BaseException:
            # Never leave the temp file behind on a failed write (a full
            # disk, an unserialisable result, a KeyboardInterrupt...).
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Delete every entry of the current version; returns the count.

        Stale ``*.json.tmp.<pid>`` files (left by a worker that died between
        writing the temp file and the atomic :func:`os.replace`) are removed
        too, but not counted as entries.
        """
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.json.bad"):
                try:
                    path.unlink()
                except OSError:
                    pass
            for path in self.directory.rglob("*.tmp.*"):
                self._unlink_if_stale(path)
        return removed

    def sweep_stale_tmp(self) -> int:
        """Remove orphaned ``*.json.tmp.<pid>`` files under every version.

        A worker killed between writing its temp file and the atomic rename
        leaks the temp file forever; this sweep (run at
        :class:`~repro.runner.sweep.SweepRunner` startup) deletes any temp
        file whose writer process no longer exists.  Temp files of live
        writers — a concurrent sweep mid-``put`` — are left alone.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.rglob("*.tmp.*"):
            if self._unlink_if_stale(path):
                removed += 1
        if removed:
            obs = get_metrics()
            if obs is not None:
                obs.inc("cache.stale_tmp_removed", removed)
        return removed

    @staticmethod
    def _unlink_if_stale(path: Path) -> bool:
        """Remove a ``*.tmp.<pid>`` file unless its writer is still alive.

        A live foreign pid means a concurrent ``put`` is mid-write between
        creating the temp file and the atomic rename — deleting it would
        crash that worker's ``os.replace``.  (A file with *our* pid cannot
        be in flight: ``put`` is synchronous, so it was leaked by a previous
        process that had the same pid.)
        """
        pid_text = path.name.rsplit(".", 1)[-1]
        try:
            pid = int(pid_text)
        except ValueError:
            pid = None
        if pid is not None and pid != os.getpid() and _pid_alive(pid):
            return False
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


def _pid_alive(pid: int) -> bool:
    """True if a process with ``pid`` currently exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    except OSError:  # pragma: no cover - conservative default
        return True
    return True
