"""The sweep runner: cached, fault-tolerant, optionally parallel execution.

Every analysis module expresses its parameter sweep as a list of
:class:`~repro.runner.jobs.Job` and hands it to a :class:`SweepRunner`.  The
runner fills what it can from the :class:`~repro.runner.cache.ResultCache`,
fans the remaining jobs out over supervised worker processes, and returns
results **in job order** regardless of which worker finished first — so a
parallel run is byte-identical to a serial one.

Execution is *supervised*, not a bare ``pool.map``: every job is dispatched
individually, each worker announces which job it is starting, and the parent
therefore knows exactly which job a dead or hung worker was running.  That
buys the failure semantics a long-lived sweep service needs:

* **per-job wall-clock timeouts** (``timeout=``) — a hung job's worker is
  killed and the job retried or quarantined, instead of hanging the sweep;
* **bounded retries with exponential backoff** (``retries=``,
  ``backoff_s=``) for transient failures — a job raising
  :class:`~repro.faults.TransientJobError` (or losing its worker) is retried
  with deterministic jitter, so a replayed sweep waits the same schedule;
* **dead-worker detection with fleet respawn** — a worker that disappears
  (OOM kill, segfault, injected ``worker_kill`` fault) costs one attempt for
  the job it was running; every other in-flight job is re-dispatched to a
  fresh fleet unpenalised;
* **poison-job quarantine** — a job that keeps failing becomes a structured
  :class:`JobFailure` *in the results list* (``strict=False``) instead of
  aborting the sweep, and completed sibling results are written to the cache
  as they finish, so a rerun resumes from cache.  With ``strict=True`` (the
  library default, preserving historical behaviour) the first permanent
  failure re-raises the original exception — or a
  :class:`~repro.errors.SweepFailure` for timeouts and worker deaths, which
  have no exception object.

A module-level *current runner* lets the CLI (or a test) reconfigure how the
high-level analysis entry points (``figure8(...)``, ``table2(...)``, ...)
execute without threading a runner argument through every signature.  The
default is serial and uncached, which preserves the library's historical
behaviour exactly.
"""

from __future__ import annotations

import collections
import contextlib
import hashlib
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, ReproError, SweepFailure
from repro.faults import (FaultInjector, FaultPlan, TransientJobError,
                          get_injector, set_injector)
from repro.obs.metrics import get_metrics
from repro.obs.trace import emit as trace_emit
from repro.runner.cache import MISS, ResultCache
from repro.runner.jobs import Job, run_job

#: Supervisor poll period while waiting for worker messages (seconds).  Only
#: latency of *detecting* deaths and timeouts depends on it; results are
#: handled the moment they arrive.
_POLL_S = 0.05

#: Placeholder for a result slot that has not been produced yet.
_PENDING = object()


def available_cpus() -> int:
    """CPUs this process may actually run on (container/affinity aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` / auto mode."""
    return available_cpus()


@dataclass(frozen=True)
class JobFailure:
    """A job that permanently failed, as a value in the results list.

    Produced by non-strict sweeps in place of the failed job's result, so a
    single poison job can never discard its siblings' finished work.  Plain
    strings and ints only: a ``JobFailure`` serialises through the result
    cache machinery (it is never *cached*, but it may ride inside a larger
    report, e.g. a partial ``SwitchReport``).

    Attributes:
        tag: the failed job's tag (presentation label).
        func: the failed job's function path.
        kind: ``"error"`` (the job raised), ``"timeout"`` (exceeded the
            per-job wall clock) or ``"worker-death"`` (its worker process
            disappeared mid-job).
        attempts: how many times the job was tried before quarantine.
        error: ``"Type: message"`` of the last failure (empty for kinds
            without an exception).
        traceback: the last attempt's traceback text, when one exists.
    """

    tag: str
    func: str
    kind: str
    attempts: int
    error: str = ""
    traceback: str = ""

    def brief(self) -> str:
        """One-line provenance for reports and logs."""
        name = self.tag or self.func
        detail = f": {self.error}" if self.error else ""
        return (f"{name}: {self.kind} after {self.attempts} "
                f"attempt(s){detail}")


def _job_site(job: Job, position: int) -> str:
    """The fault-injection site naming one job's dispatch slot."""
    return f"job:{job.tag or job.func}#{position}"


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _attempt_job(job: Job, position: int, attempt: int,
                 injector: Optional[FaultInjector]) -> Any:
    """Run one job attempt, applying any planned fault first."""
    if injector is not None:
        injector.apply_job_fault(_job_site(job, position), attempt)
    return run_job(job)


def _worker_main(task_queue, result_queue, plan_document) -> None:
    """Worker process loop: pull ``(position, job, attempt)`` tasks until the
    ``None`` sentinel.

    Each task is acknowledged with a ``("start", position, pid)`` message
    *before* the job body runs — that acknowledgement is what lets the
    supervisor attribute a worker death or a timeout to exactly one job.
    The fault plan (when given) applies only to the dispatched job itself;
    it is deliberately not installed globally, so a job body that runs a
    nested sweep (e.g. a switch's port stage) is not re-faulted with reset
    attempt numbers on every outer retry.  A fork start method can leak the
    parent's *active* injector into the worker, which would break exactly
    that — nested sites would fire a real ``os._exit`` on every retry, the
    nested attempt counter restarting each time — so it is cleared first.
    """
    set_injector(None)
    injector = (FaultInjector(FaultPlan.from_json(plan_document))
                if plan_document is not None else None)
    while True:
        try:
            message = task_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message is None:
            return
        position, job, attempt = message
        try:
            result_queue.put(("start", position, os.getpid()))
        except Exception:
            return
        try:
            value = _attempt_job(job, position, attempt, injector)
        except KeyboardInterrupt:
            return
        except Exception as exc:
            transient = isinstance(exc, TransientJobError)
            text = traceback_module.format_exc()
            try:
                result_queue.put(("err", position, exc, text, transient))
            except Exception as put_exc:
                fallback = ReproError(
                    f"worker could not return the failure of job "
                    f"{job.tag or job.func!r}: {put_exc}")
                result_queue.put(("err", position, fallback, text, transient))
        else:
            try:
                result_queue.put(("ok", position, value))
            except Exception as exc:
                text = traceback_module.format_exc()
                fallback = ReproError(
                    f"result of job {job.tag or job.func!r} could not be "
                    f"returned from the worker: {exc}")
                result_queue.put(("err", position, fallback, text, False))


class SweepRunner:
    """Executes job lists with caching, parallelism and failure isolation.

    Args:
        jobs: number of worker processes; ``1`` runs in-process (no pool),
            ``0`` selects :func:`default_jobs`.  The effective fleet size is
            additionally capped at the job count and at
            :func:`available_cpus` — simulation jobs are CPU-bound, so
            extra workers could only add overhead.  (With a ``timeout`` the
            CPU cap is waived: timeout enforcement needs a worker process
            the supervisor can kill, so ``jobs >= 2`` guarantees one even on
            a single-CPU machine.)
        cache: result cache, or ``None`` to recompute everything.  Completed
            results are written as they finish, so an aborted sweep resumes
            from cache on rerun.
        chunksize: retained for API compatibility; dispatch is per-job under
            supervision, so chunked hand-off no longer applies.
        timeout: per-job wall-clock seconds measured from the moment a
            worker starts the job.  ``None`` (default) never times out.
            Only enforceable when worker processes exist (``jobs >= 2``);
            the in-process path ignores it.
        retries: how many times a *transiently* failed job is re-attempted
            (:class:`~repro.faults.TransientJobError`, a worker death, or a
            timeout).  Any other exception is permanent on first strike.
        backoff_s: base of the exponential retry backoff; retry ``k`` waits
            ``backoff_s * 2**(k-1)`` scaled by a deterministic jitter in
            ``[1, 1.5)`` derived from the job site — reproducible, yet
            de-synchronised across jobs.
        strict: with ``True`` (default) the first permanent failure
            re-raises (fail-fast, the historical behaviour); with ``False``
            it becomes a :class:`JobFailure` entry in the results list and
            the sweep carries on.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 chunksize: int = 1, *,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 backoff_s: float = 0.05,
                 strict: bool = True) -> None:
        if jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
        if chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {backoff_s}")
        self.jobs = jobs if jobs != 0 else default_jobs()
        self.cache = cache
        if cache is not None:
            # Startup sweep: reclaim temp files leaked by workers that died
            # between writing and the atomic rename (see ResultCache.put).
            cache.sweep_stale_tmp()
        self.chunksize = chunksize
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.strict = strict
        #: Number of jobs actually executed (cache misses) over this runner's
        #: lifetime; cache hits are visible via ``cache.hits``.
        self.executed = 0

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[Job]) -> List[Any]:
        """Execute ``jobs`` and return their results in the same order.

        Permanently failed jobs appear as :class:`JobFailure` entries when
        ``strict=False``; with ``strict=True`` the first one raises.  Either
        way ``runner.sweep_s`` is observed and completed results are already
        in the cache — an aborted sweep is resumable, never lost.
        """
        jobs = list(jobs)
        results: List[Any] = [MISS] * len(jobs)
        started = time.perf_counter()
        trace_emit("sweep_start", jobs=len(jobs), workers=self.jobs,
                   cached_runner=self.cache is not None)

        pending: List[int] = []
        try:
            if self.cache is not None:
                for index, job in enumerate(jobs):
                    cached = self.cache.get(job)
                    if cached is MISS:
                        pending.append(index)
                    else:
                        results[index] = cached
                        trace_emit("job_cached", index=index, tag=job.tag,
                                   func=job.func)
            else:
                pending = list(range(len(jobs)))

            if pending:
                for index in pending:
                    trace_emit("job_dispatched", index=index,
                               tag=jobs[index].tag, func=jobs[index].func)

                def on_result(position: int, value: Any) -> None:
                    index = pending[position]
                    results[index] = value
                    if (self.cache is not None
                            and not isinstance(value, JobFailure)):
                        self.cache.put(jobs[index], value)

                self._execute([jobs[i] for i in pending], on_result)
                self.executed += len(pending)
        except BaseException as exc:
            # The timing metric and an abort event must survive the raise:
            # a sweep that died is exactly the one worth being able to see.
            duration = time.perf_counter() - started
            obs = get_metrics()
            if obs is not None:
                obs.observe("runner.sweep_s", duration)
            failure = getattr(exc, "failure", None)
            tag = (getattr(exc, "repro_job_tag", None)
                   or getattr(failure, "tag", None))
            trace_emit("sweep_abort", tag=tag, error=_describe_error(exc),
                       duration_s=round(duration, 6))
            if isinstance(exc, KeyboardInterrupt) and self.cache is not None:
                # Workers are already terminated (the supervisor's cleanup
                # runs first); their orphaned cache temp files are stale now.
                self.cache.sweep_stale_tmp()
            raise
        duration = time.perf_counter() - started
        failed = sum(1 for value in results if isinstance(value, JobFailure))
        obs = get_metrics()
        if obs is not None:
            obs.inc("runner.sweeps")
            obs.inc("runner.jobs", len(jobs))
            obs.inc("runner.jobs_executed", len(pending))
            obs.inc("runner.jobs_cached", len(jobs) - len(pending))
            obs.observe("runner.sweep_s", duration)
        trace_emit("sweep_end", jobs=len(jobs), executed=len(pending),
                   cached=len(jobs) - len(pending), failed=failed,
                   duration_s=round(duration, 6))
        return results

    def run_one(self, job: Job) -> Any:
        """Convenience wrapper for a single job."""
        return self.run([job])[0]

    # ------------------------------------------------------------------ #
    # Execution paths
    # ------------------------------------------------------------------ #
    def _execute(self, jobs: List[Job],
                 on_result: Optional[Callable[[int, Any], None]] = None,
                 ) -> List[Any]:
        # Never spawn more workers than there are jobs *or* CPUs this
        # process may run on: the jobs are pure CPU-bound simulation, so an
        # oversubscribed pool can only add fork/IPC overhead, never speed.
        # A timeout waives the CPU cap — and forces the fleet path even for
        # a single job — because enforcing it requires a worker process the
        # supervisor can kill, even on a one-CPU machine.
        if self.timeout is not None:
            workers = max(1, min(self.jobs, len(jobs)))
        else:
            workers = min(self.jobs, len(jobs), available_cpus())
        obs = get_metrics()
        if workers <= 1 and self.timeout is None:
            if obs is not None:
                obs.gauge("runner.workers", 1)
            return self._execute_serial(jobs, on_result)
        if obs is not None:
            obs.inc("runner.pools_started")
            obs.gauge("runner.workers", workers)
        return self._execute_fleet(jobs, workers, on_result)

    def _retry_delay(self, job: Job, position: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): exponential, scaled
        by a deterministic jitter so replays wait the identical schedule."""
        if self.backoff_s == 0:
            return 0.0
        site = f"{_job_site(job, position)}@retry{attempt}"
        digest = hashlib.sha256(site.encode("utf-8")).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return self.backoff_s * (2.0 ** (attempt - 1)) * (1.0 + 0.5 * jitter)

    def _note_retry(self, job: Job, kind: str, attempt: int,
                    delay: float) -> None:
        obs = get_metrics()
        if obs is not None:
            obs.inc("runner.retries")
        trace_emit("job_retry", tag=job.tag, func=job.func, kind=kind,
                   attempt=attempt, delay_s=round(delay, 6))

    def _finalize_failure(self, failure: JobFailure,
                          original: Optional[BaseException]) -> JobFailure:
        """Record a permanent failure; raises when the runner is strict."""
        obs = get_metrics()
        if obs is not None:
            obs.inc("runner.jobs_failed")
        trace_emit("job_failed", tag=failure.tag, func=failure.func,
                   kind=failure.kind, attempts=failure.attempts,
                   error=failure.error)
        if self.strict:
            if original is not None:
                # Fail fast with the job's own exception — exactly what a
                # bare pool.map would have raised — annotated with the tag
                # so the abort trace can name the culprit.
                with contextlib.suppress(Exception):
                    original.repro_job_tag = failure.tag  # type: ignore
                raise original
            raise SweepFailure(failure)
        return failure

    # -- serial ---------------------------------------------------------- #
    def _execute_serial(self, jobs: List[Job],
                        on_result: Optional[Callable[[int, Any], None]],
                        ) -> List[Any]:
        injector = get_injector()
        results: List[Any] = []
        for position, job in enumerate(jobs):
            attempt = 0
            while True:
                try:
                    value = _attempt_job(job, position, attempt, injector)
                except Exception as exc:
                    if (isinstance(exc, TransientJobError)
                            and attempt < self.retries):
                        attempt += 1
                        delay = self._retry_delay(job, position, attempt)
                        self._note_retry(job, "error", attempt, delay)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    value = self._finalize_failure(
                        JobFailure(tag=job.tag, func=job.func, kind="error",
                                   attempts=attempt + 1,
                                   error=_describe_error(exc),
                                   traceback=traceback_module.format_exc()),
                        original=exc)
                results.append(value)
                if on_result is not None:
                    on_result(position, value)
                break
        return results

    # -- supervised worker fleet ----------------------------------------- #
    def _execute_fleet(self, jobs: List[Job], workers: int,
                       on_result: Optional[Callable[[int, Any], None]],
                       ) -> List[Any]:
        injector = get_injector()
        plan_document = (injector.plan.to_json()
                         if injector is not None else None)
        context = multiprocessing.get_context()
        n = len(jobs)
        results: List[Any] = [_PENDING] * n
        attempts = [0] * n
        remaining: Set[int] = set(range(n))
        ready: collections.deque = collections.deque(range(n))
        delayed: List[Tuple[float, int]] = []  # (ready_at_monotonic, pos)
        dispatched: Set[int] = set()

        fleet: Dict[int, Any] = {}  # pid -> Process
        running: Dict[int, Tuple[int, float]] = {}  # pid -> (pos, started_at)
        task_queue = None
        result_queue = None

        def spawn_fleet() -> None:
            nonlocal task_queue, result_queue
            task_queue = context.SimpleQueue()
            result_queue = context.SimpleQueue()
            for _ in range(workers):
                process = context.Process(
                    target=_worker_main,
                    args=(task_queue, result_queue, plan_document),
                    daemon=True)
                process.start()
                fleet[process.pid] = process
            trace_emit("pool_start", workers=workers, jobs=len(remaining),
                       chunksize=self.chunksize)

        def terminate_fleet() -> None:
            """Tear the whole fleet down (kills may have poisoned the
            queues' shared locks, so they are discarded with it)."""
            nonlocal task_queue, result_queue
            for process in fleet.values():
                if process.is_alive():
                    process.terminate()
            for process in fleet.values():
                process.join(timeout=1.0)
                if process.is_alive():  # pragma: no cover - stuck SIGTERM
                    process.kill()
                    process.join(timeout=1.0)
            fleet.clear()
            running.clear()
            task_queue = None
            result_queue = None

        def drain_results() -> None:
            """Handle every complete message already in the result queue."""
            while result_queue is not None and result_queue._reader.poll(0):
                handle_message(result_queue.get())

        def penalize(position: int, kind: str) -> None:
            """One attempt failed without an exception object (a worker
            death or a timeout): retry with backoff or quarantine."""
            job = jobs[position]
            obs = get_metrics()
            if obs is not None:
                obs.inc("runner.timeouts" if kind == "timeout"
                        else "runner.worker_deaths")
            if attempts[position] < self.retries:
                attempts[position] += 1
                delay = self._retry_delay(job, position, attempts[position])
                self._note_retry(job, kind, attempts[position], delay)
                delayed.append((time.monotonic() + delay, position))
                dispatched.discard(position)
                return
            failure = self._finalize_failure(
                JobFailure(tag=job.tag, func=job.func, kind=kind,
                           attempts=attempts[position] + 1),
                original=None)
            finish(position, failure)

        def finish(position: int, value: Any) -> None:
            results[position] = value
            remaining.discard(position)
            dispatched.discard(position)
            for pid, (running_pos, _started) in list(running.items()):
                if running_pos == position:
                    del running[pid]
            if on_result is not None:
                on_result(position, value)

        def handle_message(message) -> None:
            kind = message[0]
            if kind == "start":
                _kind, position, pid = message
                running[pid] = (position, time.monotonic())
                return
            if kind == "ok":
                _kind, position, value = message
                if position in remaining:
                    finish(position, value)
                return
            # ("err", position, exception, traceback_text, transient)
            _kind, position, exc, text, transient = message
            if position not in remaining:
                return
            for pid, (running_pos, _started) in list(running.items()):
                if running_pos == position:
                    del running[pid]
            job = jobs[position]
            if transient and attempts[position] < self.retries:
                attempts[position] += 1
                delay = self._retry_delay(job, position, attempts[position])
                self._note_retry(job, "error", attempts[position], delay)
                delayed.append((time.monotonic() + delay, position))
                dispatched.discard(position)
                return
            failure = self._finalize_failure(
                JobFailure(tag=job.tag, func=job.func, kind="error",
                           attempts=attempts[position] + 1,
                           error=_describe_error(exc), traceback=text),
                original=exc)
            finish(position, failure)

        def check_workers() -> None:
            """Dead-worker detection: attribute, penalise, respawn."""
            dead = [pid for pid, process in fleet.items()
                    if not process.is_alive()]
            if not dead:
                return
            drain_results()
            casualties = []
            for pid in dead:
                assignment = running.pop(pid, None)
                if assignment is not None and assignment[0] in remaining:
                    casualties.append(assignment[0])
                exit_code = fleet[pid].exitcode
                trace_emit("worker_death", pid=pid, exitcode=exit_code,
                           tag=(jobs[casualties[-1]].tag if assignment
                                and casualties else None))
            # A SIGKILLed worker may have died holding a queue lock, so the
            # whole fleet (and its queues) is rebuilt, not patched: every
            # unfinished dispatched job goes back to the ready set, and only
            # the attributed casualties pay an attempt.
            terminate_fleet()
            for position in casualties:
                penalize(position, "worker-death")
            for position in sorted(dispatched & remaining):
                ready.append(position)
            dispatched.clear()

        def check_timeouts() -> None:
            if self.timeout is None:
                return
            now = time.monotonic()
            expired = [(pid, position)
                       for pid, (position, started_at) in running.items()
                       if now - started_at > self.timeout]
            if not expired:
                return
            # Collect everything already delivered before killing anything:
            # a job finishing in the detection window must win its race.
            drain_results()
            victims = [(pid, position) for pid, position in expired
                       if running.get(pid, (None,))[0] == position
                       and position in remaining]
            if not victims:
                return
            for pid, position in victims:
                trace_emit("job_timeout", pid=pid, tag=jobs[position].tag,
                           timeout_s=self.timeout)
                with contextlib.suppress(OSError):
                    os.kill(pid, 9)
                running.pop(pid, None)
            terminate_fleet()
            for _pid, position in victims:
                penalize(position, "timeout")
            for position in sorted(dispatched & remaining):
                ready.append(position)
            dispatched.clear()

        try:
            while remaining:
                now = time.monotonic()
                if delayed:
                    due = [pos for ready_at, pos in delayed if ready_at <= now]
                    if due:
                        delayed[:] = [(ready_at, pos)
                                      for ready_at, pos in delayed
                                      if ready_at > now]
                        ready.extend(due)
                if (ready or dispatched) and not fleet:
                    spawn_fleet()
                while ready:
                    position = ready.popleft()
                    if position not in remaining:
                        continue
                    task_queue.put((position, jobs[position],
                                    attempts[position]))
                    dispatched.add(position)
                if not remaining:
                    break
                if not fleet:
                    # Nothing dispatched and nothing ready: only backoff
                    # waits remain.
                    if delayed:
                        time.sleep(min(_POLL_S,
                                       max(0.0, min(ready_at for ready_at, _
                                                    in delayed) - now)))
                    continue
                if multiprocessing.connection.wait(
                        [result_queue._reader], timeout=_POLL_S):
                    handle_message(result_queue.get())
                else:
                    check_workers()
                    check_timeouts()
        finally:
            if fleet:
                # Normal completion: let idle workers exit over the sentinel;
                # anything else (an exception, an interrupt) tears them down.
                if not remaining and task_queue is not None:
                    for _ in range(len(fleet)):
                        with contextlib.suppress(Exception):
                            task_queue.put(None)
                    for process in fleet.values():
                        process.join(timeout=1.0)
                terminate_fleet()
        return list(results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cached = "cached" if self.cache is not None else "uncached"
        return f"SweepRunner(jobs={self.jobs}, {cached})"


# --------------------------------------------------------------------- #
# The current runner used by the analysis entry points.

_DEFAULT_RUNNER = SweepRunner(jobs=1, cache=None)
_current_runner: SweepRunner = _DEFAULT_RUNNER


def get_runner() -> SweepRunner:
    """The runner the analysis entry points currently execute through."""
    return _current_runner


def set_runner(runner: Optional[SweepRunner]) -> SweepRunner:
    """Install ``runner`` globally (``None`` restores the serial default)."""
    global _current_runner
    _current_runner = runner if runner is not None else _DEFAULT_RUNNER
    return _current_runner


@contextlib.contextmanager
def using_runner(runner: SweepRunner) -> Iterator[SweepRunner]:
    """Temporarily install ``runner`` (context manager)."""
    previous = get_runner()
    set_runner(runner)
    try:
        yield runner
    finally:
        set_runner(previous)
