"""The sweep runner: cached, optionally parallel execution of job lists.

Every analysis module expresses its parameter sweep as a list of
:class:`~repro.runner.jobs.Job` and hands it to a :class:`SweepRunner`.  The
runner fills what it can from the :class:`~repro.runner.cache.ResultCache`,
fans the remaining jobs out over a :mod:`multiprocessing` pool, and returns
results **in job order** regardless of which worker finished first — so a
parallel run is byte-identical to a serial one.

A module-level *current runner* lets the CLI (or a test) reconfigure how the
high-level analysis entry points (``figure8(...)``, ``table2(...)``, ...)
execute without threading a runner argument through every signature.  The
default is serial and uncached, which preserves the library's historical
behaviour exactly.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from typing import Any, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.metrics import get_metrics
from repro.obs.trace import emit as trace_emit
from repro.runner.cache import MISS, ResultCache
from repro.runner.jobs import Job, run_job


def available_cpus() -> int:
    """CPUs this process may actually run on (container/affinity aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` / auto mode."""
    return available_cpus()


class SweepRunner:
    """Executes job lists with optional caching and process parallelism.

    Args:
        jobs: number of worker processes; ``1`` runs in-process (no pool),
            ``0`` selects :func:`default_jobs`.  The effective pool size is
            additionally capped at the job count and at
            :func:`available_cpus` — simulation jobs are CPU-bound, so
            extra workers could only add overhead.
        cache: result cache, or ``None`` to recompute everything.
        chunksize: jobs handed to a worker at a time; larger values amortise
            IPC for very cheap jobs.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 chunksize: int = 1) -> None:
        if jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
        if chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs if jobs != 0 else default_jobs()
        self.cache = cache
        if cache is not None:
            # Startup sweep: reclaim temp files leaked by workers that died
            # between writing and the atomic rename (see ResultCache.put).
            cache.sweep_stale_tmp()
        self.chunksize = chunksize
        #: Number of jobs actually executed (cache misses) over this runner's
        #: lifetime; cache hits are visible via ``cache.hits``.
        self.executed = 0

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[Job]) -> List[Any]:
        """Execute ``jobs`` and return their results in the same order."""
        jobs = list(jobs)
        results: List[Any] = [MISS] * len(jobs)
        started = time.perf_counter()
        trace_emit("sweep_start", jobs=len(jobs), workers=self.jobs,
                   cached_runner=self.cache is not None)

        pending: List[int] = []
        if self.cache is not None:
            for index, job in enumerate(jobs):
                cached = self.cache.get(job)
                if cached is MISS:
                    pending.append(index)
                else:
                    results[index] = cached
                    trace_emit("job_cached", index=index, tag=job.tag,
                               func=job.func)
        else:
            pending = list(range(len(jobs)))

        if pending:
            for index in pending:
                trace_emit("job_dispatched", index=index, tag=jobs[index].tag,
                           func=jobs[index].func)
            computed = self._execute([jobs[i] for i in pending])
            for index, value in zip(pending, computed):
                results[index] = value
                if self.cache is not None:
                    self.cache.put(jobs[index], value)
            self.executed += len(pending)
        duration = time.perf_counter() - started
        obs = get_metrics()
        if obs is not None:
            obs.inc("runner.sweeps")
            obs.inc("runner.jobs", len(jobs))
            obs.inc("runner.jobs_executed", len(pending))
            obs.inc("runner.jobs_cached", len(jobs) - len(pending))
            obs.observe("runner.sweep_s", duration)
        trace_emit("sweep_end", jobs=len(jobs), executed=len(pending),
                   cached=len(jobs) - len(pending),
                   duration_s=round(duration, 6))
        return results

    def run_one(self, job: Job) -> Any:
        """Convenience wrapper for a single job."""
        return self.run([job])[0]

    # ------------------------------------------------------------------ #
    def _execute(self, jobs: List[Job]) -> List[Any]:
        # Never spawn more workers than there are jobs *or* CPUs this
        # process may run on: the jobs are pure CPU-bound simulation, so an
        # oversubscribed pool can only add fork/IPC overhead, never speed.
        # On a single-CPU machine every --jobs value therefore runs
        # in-process (and byte-identically, since results are returned in
        # job order either way).
        workers = min(self.jobs, len(jobs), available_cpus())
        obs = get_metrics()
        if workers == 1:
            if obs is not None:
                obs.gauge("runner.workers", 1)
            return [run_job(job) for job in jobs]
        if obs is not None:
            obs.inc("runner.pools_started")
            obs.gauge("runner.workers", workers)
        trace_emit("pool_start", workers=workers, jobs=len(jobs),
                   chunksize=self.chunksize)
        with multiprocessing.Pool(processes=workers) as pool:
            # Pool.map preserves input order, which is what makes the
            # parallel path deterministic.
            return pool.map(run_job, jobs, chunksize=self.chunksize)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cached = "cached" if self.cache is not None else "uncached"
        return f"SweepRunner(jobs={self.jobs}, {cached})"


# --------------------------------------------------------------------- #
# The current runner used by the analysis entry points.

_DEFAULT_RUNNER = SweepRunner(jobs=1, cache=None)
_current_runner: SweepRunner = _DEFAULT_RUNNER


def get_runner() -> SweepRunner:
    """The runner the analysis entry points currently execute through."""
    return _current_runner


def set_runner(runner: Optional[SweepRunner]) -> SweepRunner:
    """Install ``runner`` globally (``None`` restores the serial default)."""
    global _current_runner
    _current_runner = runner if runner is not None else _DEFAULT_RUNNER
    return _current_runner


@contextlib.contextmanager
def using_runner(runner: SweepRunner) -> Iterator[SweepRunner]:
    """Temporarily install ``runner`` (context manager)."""
    previous = get_runner()
    set_runner(runner)
    try:
        yield runner
    finally:
        set_runner(previous)
