"""The named experiments ``python -m repro`` can reproduce.

Each :class:`ExperimentSpec` pairs a job-list builder with a renderer: the
builder declares the sweep (so ``--dry-run`` can print it and the cache can
key on it), the renderer turns the runner's results into the text report the
CLI prints.  The specs deliberately contain no execution logic — serial
versus parallel versus cached is entirely the
:class:`~repro.runner.sweep.SweepRunner`'s business.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.analysis.figure8 import figure8_jobs, figure8_summary_from_points
from repro.analysis.figure10 import figure10_jobs, figure10_summary_from_points
from repro.analysis.figure11 import figure11_jobs, figure11_summary_from_points
from repro.analysis.intro_dram import dram_family_jobs, intro_dram_jobs
from repro.analysis.report import (
    format_table,
    render_figure8,
    render_figure10,
    render_figure11,
    render_intro_dram,
    render_scaling,
    render_scenarios,
    render_switch_suite,
    render_table2,
)
from repro.analysis.scaling import (
    granularity_roadmap_jobs,
    years_until_rads_suffices,
)
from repro.analysis.table2 import table2_jobs
from repro.errors import ConfigurationError
from repro.runner.jobs import Job
from repro.switch.registry import all_switch_scenarios
from repro.workloads.registry import all_scenarios

#: The OC-3072 scaling study's queue count (the paper's Q for that rate).
SCALING_NUM_QUEUES = 512


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible exhibit: a sweep plus its report."""

    name: str
    title: str
    description: str
    build_jobs: Callable[[], List[Job]]
    render: Callable[[List[Any], List[Job]], str]


# --------------------------------------------------------------------- #
# Job builders.

def _intro_dram_jobs() -> List[Job]:
    return list(intro_dram_jobs()) + list(dram_family_jobs())


def _figure8_jobs() -> List[Job]:
    return list(figure8_jobs("OC-768")) + list(figure8_jobs("OC-3072"))


def _table2_jobs() -> List[Job]:
    return list(table2_jobs("OC-768")) + list(table2_jobs("OC-3072"))


def _scaling_jobs() -> List[Job]:
    return granularity_roadmap_jobs("OC-3072", SCALING_NUM_QUEUES)


def _scenario_jobs() -> List[Job]:
    return [Job(func="repro.workloads.scenario:run_scenario_spec",
                kwargs={"spec": scenario.to_spec()},
                tag=scenario.name)
            for scenario in all_scenarios()]


def _switch_suite_jobs() -> List[Job]:
    # One job per registered switch scenario; the port stage runs serially
    # inside the worker because this sweep already parallelises across
    # scenarios (nested pools are both illegal and pointless here).
    return [Job(func="repro.switch.model:run_switch_spec",
                kwargs={"spec": scenario.to_spec(), "engine": "array",
                        "jobs": 1},
                tag=scenario.name)
            for scenario in all_switch_scenarios()]


def _worstcase_jobs() -> List[Job]:
    # Parameters are spelled out (not left to the callees' defaults) so the
    # cache key captures the actual configuration and --dry-run shows it.
    return [
        Job(func="repro.sim.worstcase:run_rads_worst_case",
            kwargs={"num_queues": 32, "granularity": 8, "slots": 20_000},
            tag="RADS"),
        Job(func="repro.sim.worstcase:run_cfds_worst_case",
            kwargs={"num_queues": 32, "dram_access_slots": 8,
                    "granularity": 2, "num_banks": 64, "slots": 20_000},
            tag="CFDS"),
    ]


# --------------------------------------------------------------------- #
# Renderers.

def _render_intro_dram(results: List[Any], jobs: List[Job]) -> str:
    widening = [row for row, job in zip(results, jobs) if job.tag != "family"]
    family = [row for row, job in zip(results, jobs) if job.tag == "family"]
    return render_intro_dram(widening, family)


def _render_figure8(results: List[Any], jobs: List[Job]) -> str:
    text = render_figure8(results)
    for oc_name in dict.fromkeys(p.oc_name for p in results):
        panel = [p for p in results if p.oc_name == oc_name]
        summary = figure8_summary_from_points(panel)
        text += (f"\n{oc_name}: h-SRAM from "
                 f"{summary['sram_kbytes_min_lookahead']:.0f} kB (min lookahead) "
                 f"down to {summary['sram_kbytes_max_lookahead']:.0f} kB "
                 f"(max lookahead)")
    return text


def _render_table2(results: List[Any], jobs: List[Job]) -> str:
    return render_table2(results)


def _render_figure10(results: List[Any], jobs: List[Job]) -> str:
    points = [p for curve in results for p in curve]
    summary = figure10_summary_from_points(points)
    text = render_figure10(points)
    if summary["cfds_compliant_exists"]:
        text += (f"\nbest compliant CFDS: b={summary['best_cfds_granularity']}"
                 f" at {summary['best_cfds_delay_us']:.1f} us, "
                 f"{summary['best_cfds_area_cm2']:.2f} cm^2; "
                 f"best RADS access {summary['best_rads_access_ns']:.2f} ns "
                 f"(budget {summary['budget_ns']:g} ns)")
    return text


def _render_figure11(results: List[Any], jobs: List[Job]) -> str:
    summary = figure11_summary_from_points(results)
    return (render_figure11(results) +
            f"\nCFDS sustains {summary['cfds_max_queues']} queues at "
            f"b={summary['cfds_best_granularity']} versus "
            f"{summary['rads_max_queues']} for RADS "
            f"({summary['improvement_ratio']:.1f}x)")


def _render_scaling(results: List[Any], jobs: List[Job]) -> str:
    years = years_until_rads_suffices("OC-3072", SCALING_NUM_QUEUES)
    return render_scaling(results, years)


def _render_worstcase(results: List[Any], jobs: List[Job]) -> str:
    return format_table(
        ["scheme", "slots", "cells out", "misses", "conflicts",
         "peak SRAM", "SRAM bound", "peak RR", "RR bound", "extra delay"],
        [[r.scheme, r.slots, r.cells_out, r.miss_count, r.bank_conflicts,
          r.max_head_sram_occupancy, r.head_sram_bound,
          r.max_request_register_occupancy, r.request_register_bound,
          r.extra_latency_slots] for r in results],
        title="Section 5 — worst-case round-robin adversary, RADS vs CFDS")


# --------------------------------------------------------------------- #

EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec for spec in [
        ExperimentSpec(
            name="intro-dram",
            title="Introduction: DRAM-only guaranteed bandwidth",
            description="Why DRAM alone cannot buffer at line rate.",
            build_jobs=_intro_dram_jobs,
            render=_render_intro_dram),
        ExperimentSpec(
            name="figure8",
            title="Figure 8: RADS h-SRAM vs lookahead",
            description="RADS SRAM access time and area, OC-768 and OC-3072.",
            build_jobs=_figure8_jobs,
            render=_render_figure8),
        ExperimentSpec(
            name="table2",
            title="Table 2: Requests Register sizes and scheduling times",
            description="CFDS scheduler feasibility across granularities.",
            build_jobs=_table2_jobs,
            render=_render_table2),
        ExperimentSpec(
            name="figure10",
            title="Figure 10: SRAM vs delay, RADS vs CFDS",
            description="Access time and area against total delay at OC-3072.",
            build_jobs=figure10_jobs,
            render=_render_figure10),
        ExperimentSpec(
            name="figure11",
            title="Figure 11: maximum sustainable queues",
            description="Largest queue count meeting the OC-3072 budget.",
            build_jobs=figure11_jobs,
            render=_render_figure11),
        ExperimentSpec(
            name="scaling",
            title="Extension: DRAM technology scaling vs CFDS",
            description="How long DRAM scaling alone would take to rescue RADS.",
            build_jobs=_scaling_jobs,
            render=_render_scaling),
        ExperimentSpec(
            name="worstcase",
            title="Section 5: worst-case adversary simulations",
            description="Slot-accurate zero-miss runs of RADS and CFDS.",
            build_jobs=_worstcase_jobs,
            render=_render_worstcase),
        ExperimentSpec(
            name="scenarios",
            title="Workload suite: every registered scenario",
            description="Closed-loop statistics across the scenario registry.",
            build_jobs=_scenario_jobs,
            render=lambda results, jobs: render_scenarios(results)),
        ExperimentSpec(
            name="switch-suite",
            title="Switch suite: every registered switch scenario",
            description="Multi-port switch statistics (fabric + merged ports).",
            build_jobs=_switch_suite_jobs,
            render=lambda results, jobs: render_switch_suite(results)),
    ]
}


def get_experiment(name: str) -> ExperimentSpec:
    """Look up one experiment by CLI name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(f"unknown experiment {name!r} (known: {known})")
