"""repro — a reproduction of "Design and Implementation of High-Performance
Memory Systems for Future Packet Buffers" (Garcia, Corbal, Cerda, Valero,
MICRO-36, 2003).

The library implements the paper's hybrid SRAM/DRAM packet-buffer designs —
the RADS baseline and the CFDS contribution (bank-group interleaving plus an
issue-queue-like DRAM scheduler plus queue renaming) — together with the
substrates they need (banked DRAM timing, shared SRAM organisations, MMAs,
traffic generation) and the technology models used to reproduce every table
and figure of the evaluation.

Quick start::

    from repro import CFDSConfig, CFDSPacketBuffer

    config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2,
                        num_banks=32)
    buffer = CFDSPacketBuffer(config)
    buffer.step(arrival=3, request=None)   # one slot: a cell arrives for VOQ 3

See ``examples/`` for complete scenarios and ``benchmarks/`` for the code that
regenerates the paper's exhibits.
"""

from repro.constants import (
    CELL_SIZE_BYTES,
    OC_LINE_RATES_BPS,
    rads_granularity,
    slot_time_ns,
)
from repro.errors import (
    BankConflictError,
    BufferOverflowError,
    CacheMissError,
    ConfigurationError,
    QueueEmptyError,
    RenamingError,
    ReproError,
    SchedulingError,
)
from repro.types import Cell, CellRequest, ReplenishRequest, SimulationResult, TransferDirection

from repro.rads import (
    RADSConfig,
    RADSHeadBuffer,
    RADSPacketBuffer,
    RADSTailBuffer,
    ecqf_max_lookahead,
    ecqf_min_sram_cells,
    rads_sram_size,
)
from repro.core import (
    CFDSBankMapping,
    CFDSConfig,
    CFDSHeadBuffer,
    CFDSPacketBuffer,
    CFDSTailBuffer,
    DRAMSchedulerSubsystem,
    LatencyRegister,
    OngoingRequestsRegister,
    RenamingTable,
    RequestRegister,
)
from repro.mma import ECQF, MDQF, OccupancyCounters, ShiftRegister, ThresholdTailMMA
from repro.runner import Job, ResultCache, SweepRunner, get_runner, set_runner, using_runner
from repro.sim import ClosedLoopSimulation, SimulationReport
from repro.tech import (
    CactiModel,
    GlobalCAMDesign,
    IssueLogicModel,
    LineRate,
    TechnologyProcess,
    UnifiedLinkedListDesign,
)
from repro.traffic import (
    Arbiter,
    ArrivalProcess,
    BernoulliArrivals,
    BurstyArrivals,
    HotspotArrivals,
    LongestQueueArbiter,
    MarkovOnOffArrivals,
    Packet,
    ParetoBurstArrivals,
    RandomArbiter,
    Reassembler,
    RoundRobinAdversary,
    Segmenter,
    StridedAdversary,
    TrafficTrace,
    ZipfArrivals,
)
from repro.workloads import (
    Scenario,
    ScenarioResult,
    get_scenario,
    load_trace,
    register_scenario,
    run_scenario_spec,
    save_trace,
    scenario_names,
)

# Minor bump for PR 4: ScenarioResult grew latency_histogram (a cache
# schema change — the version-keyed result cache must not serve pre-PR-4
# entries whose histogram would deserialise empty).
__version__ = "1.2.0"

__all__ = [
    "__version__",
    # constants & common types
    "CELL_SIZE_BYTES",
    "OC_LINE_RATES_BPS",
    "rads_granularity",
    "slot_time_ns",
    "Cell",
    "CellRequest",
    "ReplenishRequest",
    "SimulationResult",
    "TransferDirection",
    # errors
    "ReproError",
    "ConfigurationError",
    "CacheMissError",
    "BankConflictError",
    "BufferOverflowError",
    "QueueEmptyError",
    "RenamingError",
    "SchedulingError",
    # RADS baseline
    "RADSConfig",
    "RADSHeadBuffer",
    "RADSTailBuffer",
    "RADSPacketBuffer",
    "ecqf_max_lookahead",
    "ecqf_min_sram_cells",
    "rads_sram_size",
    # CFDS core
    "CFDSConfig",
    "CFDSBankMapping",
    "CFDSHeadBuffer",
    "CFDSTailBuffer",
    "CFDSPacketBuffer",
    "DRAMSchedulerSubsystem",
    "RequestRegister",
    "OngoingRequestsRegister",
    "LatencyRegister",
    "RenamingTable",
    # MMAs
    "ECQF",
    "MDQF",
    "ThresholdTailMMA",
    "OccupancyCounters",
    "ShiftRegister",
    # simulation harness
    "ClosedLoopSimulation",
    "SimulationReport",
    # experiment runner
    "Job",
    "ResultCache",
    "SweepRunner",
    "get_runner",
    "set_runner",
    "using_runner",
    # technology models
    "TechnologyProcess",
    "CactiModel",
    "GlobalCAMDesign",
    "UnifiedLinkedListDesign",
    "LineRate",
    "IssueLogicModel",
    # traffic
    "Packet",
    "Segmenter",
    "Reassembler",
    "ArrivalProcess",
    "BernoulliArrivals",
    "BurstyArrivals",
    "HotspotArrivals",
    "MarkovOnOffArrivals",
    "ParetoBurstArrivals",
    "ZipfArrivals",
    "Arbiter",
    "RoundRobinAdversary",
    "StridedAdversary",
    "RandomArbiter",
    "LongestQueueArbiter",
    "TrafficTrace",
    # workloads
    "Scenario",
    "ScenarioResult",
    "get_scenario",
    "register_scenario",
    "run_scenario_spec",
    "scenario_names",
    "load_trace",
    "save_trace",
]
