"""Exception hierarchy for the packet-buffer reproduction library.

Every failure mode the simulators can detect maps to a dedicated exception so
tests (and users) can assert on the precise guarantee that was violated:

* :class:`CacheMissError` — the head SRAM did not contain a cell the arbiter
  requested.  RADS/CFDS are designed so this can *never* happen; raising it
  in a simulation means the configuration (SRAM size, lookahead, latency) is
  under-dimensioned or the algorithm is broken.
* :class:`BankConflictError` — a DRAM bank was asked to start a new access
  while a previous access was still in flight.  CFDS's scheduler exists to
  make this impossible.
* :class:`BufferOverflowError` — an SRAM or DRAM structure exceeded its
  configured capacity.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent."""


class ValidationError(ConfigurationError, ValueError):
    """A single parameter value is out of its documented range.

    Doubly inherits ``ValueError`` so seed-era callers (and tests) that
    catch the builtin keep working, while the error-taxonomy contract —
    library code raises only :class:`ReproError` subclasses, enforced by
    ``python -m repro lint`` — is satisfied.
    """


class TraceFormatError(ReproError, ValueError):
    """An NDJSON run-trace file contains a line that is not a trace event.

    Subclasses ``ValueError`` for backwards compatibility with callers that
    treated malformed traces as generic value errors.
    """


class CacheIntegrityError(ReproError):
    """A result-cache entry failed its integrity check (key mismatch after a
    hash collision or a hand-edited file).  Raised and consumed inside
    :class:`~repro.runner.cache.ResultCache`, which quarantines the entry
    and reports a miss."""


class CacheMissError(ReproError):
    """The head SRAM missed: a requested cell was not resident when needed."""

    def __init__(self, queue: int, slot: int, message: str = "") -> None:
        detail = message or (
            f"head SRAM miss for queue {queue} at slot {slot}: "
            "the requested cell was not resident"
        )
        super().__init__(detail)
        self.queue = queue
        self.slot = slot


class BankConflictError(ReproError):
    """A DRAM bank received a new access while still busy with a previous one."""

    def __init__(self, bank: int, slot: int, busy_until: int) -> None:
        super().__init__(
            f"bank conflict: bank {bank} asked to start an access at slot {slot} "
            f"but it is busy until slot {busy_until}"
        )
        self.bank = bank
        self.slot = slot
        self.busy_until = busy_until


class BufferOverflowError(ReproError):
    """A bounded structure (SRAM, register, DRAM queue) exceeded its capacity."""

    def __init__(self, structure: str, capacity: int, occupancy: int) -> None:
        super().__init__(
            f"{structure} overflow: occupancy {occupancy} exceeds capacity {capacity}"
        )
        self.structure = structure
        self.capacity = capacity
        self.occupancy = occupancy


class QueueEmptyError(ReproError):
    """A cell was requested from a queue that holds no cells."""

    def __init__(self, queue: int, message: str = "") -> None:
        super().__init__(message or f"queue {queue} is empty")
        self.queue = queue


class ArbiterContractError(ReproError):
    """An arbiter returned something other than ``None`` or a valid queue index.

    The engine contract is that ``next_request`` returns ``None`` (stay idle)
    or a plain ``int`` in ``[0, num_queues)``.  Every simulation engine
    enforces this identically, so a misbehaving custom arbiter fails loudly
    and in the same way on the reference, batched and array paths instead of
    crashing with an ``IndexError`` on one and silently diverging on another.
    """

    def __init__(self, request: object, num_queues: int, slot: int) -> None:
        super().__init__(
            f"arbiter returned {request!r} at slot {slot}, but a request must "
            f"be None or an int in [0, {num_queues})"
        )
        self.request = request
        self.num_queues = num_queues
        self.slot = slot


class StaleSimulationError(ReproError):
    """A simulation that has already run (or been stepped) was run again.

    The array engine replays a run from slot 0 on its own state arrays, so it
    requires a freshly built simulation; re-running one would silently
    produce a wrong report.
    """


class CheckpointError(ReproError):
    """A streaming checkpoint file is missing, corrupt, or incompatible."""


class SpecError(ConfigurationError):
    """A declarative scenario/sweep spec document failed to parse or validate.

    Raised by the YAML front end (:mod:`repro.workloads.spec_yaml`) with the
    document path *inside the spec* (``spec.arrivals.params``, ``grid``, ...)
    and the offending key, so an authoring mistake points at the exact YAML
    line to fix rather than at the Python that tripped over it.
    """


class SweepFailure(ReproError):
    """A strict sweep aborted on a job failure with no exception to re-raise.

    Raised by :class:`~repro.runner.sweep.SweepRunner` in ``strict`` mode
    when a job was quarantined for a *timeout* or a *worker death* — failure
    modes that leave no original exception object.  (A job that raised keeps
    fail-fast semantics: its own exception propagates instead.)  Carries the
    structured :class:`~repro.runner.sweep.JobFailure` as ``failure``.
    """

    def __init__(self, failure: object) -> None:
        super().__init__(getattr(failure, "brief", lambda: str(failure))())
        self.failure = failure


class RenamingError(ReproError):
    """The renaming subsystem ran out of physical queues or violated FIFO order."""


class SchedulingError(ReproError):
    """The DRAM scheduler could not find a conflict-free request to issue."""
