"""Tests for a single DRAM bank's busy tracking and conflict detection."""

import pytest

from repro.dram.bank import DRAMBank
from repro.errors import BankConflictError


class TestBusyTracking:
    def test_idle_initially(self):
        bank = DRAMBank(index=0, random_access_slots=8)
        assert not bank.is_busy(0)
        assert bank.busy_until() == 0

    def test_access_makes_bank_busy_for_access_time(self):
        bank = DRAMBank(index=0, random_access_slots=8)
        finish = bank.begin_access(10)
        assert finish == 18
        assert bank.is_busy(10)
        assert bank.is_busy(17)
        assert not bank.is_busy(18)

    def test_back_to_back_accesses_allowed_at_boundary(self):
        bank = DRAMBank(index=0, random_access_slots=4)
        bank.begin_access(0)
        finish = bank.begin_access(4)
        assert finish == 8
        assert bank.conflict_count == 0

    def test_access_count(self):
        bank = DRAMBank(index=1, random_access_slots=2)
        bank.begin_access(0)
        bank.begin_access(2)
        bank.begin_access(4)
        assert bank.access_count == 3


class TestConflicts:
    def test_overlapping_access_raises_in_strict_mode(self):
        bank = DRAMBank(index=0, random_access_slots=8)
        bank.begin_access(0)
        with pytest.raises(BankConflictError) as info:
            bank.begin_access(5)
        assert info.value.bank == 0
        assert info.value.busy_until == 8

    def test_overlapping_access_serialises_in_relaxed_mode(self):
        bank = DRAMBank(index=0, random_access_slots=8)
        bank.begin_access(0)
        finish = bank.begin_access(5, strict=False)
        assert finish == 16  # queued behind the first access
        assert bank.conflict_count == 1

    def test_reset_clears_everything(self):
        bank = DRAMBank(index=0, random_access_slots=8)
        bank.begin_access(0)
        bank.begin_access(3, strict=False)
        bank.reset()
        assert not bank.is_busy(0)
        assert bank.access_count == 0
        assert bank.conflict_count == 0
